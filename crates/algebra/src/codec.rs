//! The MQP wire format: plans serialized as XML (paper §2, Figure 2:
//! "An MQP arrives at a server encoded in XML. The server parses the
//! plan into an in-memory graph…").
//!
//! Element vocabulary:
//!
//! ```text
//! <display target="host:port"> input </display>
//! <select pred="price &lt; 10"> input </select>
//! <project fields="name,price"> input </project>
//! <join left="song/title" right="track/title"> left right </join>
//! <union> inputs… </union>
//! <or> <alt staleness="30"> plan </alt> <alt> plan </alt> </or>
//! <agg func="count" path="price"> input </agg>
//! <topn n="10" key="price" order="asc"> input </topn>
//! <data cardinality="2"> verbatim items… </data>
//! <url href="http://10.1.2.3:9020/" collection="/data[@id='245']"/>
//! <urn name="urn:ForSale:Portland-CDs"/>
//! ```
//!
//! Leaf annotations (§5.1) ride as extra attributes on `data`/`url`/
//! `urn`; the attribute names `href`, `collection`, `name`, and
//! `cardinality` (on `data` it is stored in meta too) are reserved by
//! the format.

use std::fmt;

use mqp_namespace::Urn;
use mqp_xml::serialize::escape_into;
use mqp_xml::xpath::Path;
use mqp_xml::{serialize_into, Element, Node};

use crate::plan::{Annotations, JoinCond, OrAlt, Plan, UrlRef, UrnRef};
use crate::predicate::{AggFunc, Predicate};

/// Errors decoding a plan from XML.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The XML text itself did not parse.
    Xml(mqp_xml::ParseError),
    /// The XML parsed but is not a valid plan.
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Xml(e) => write!(f, "plan XML: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed plan: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<mqp_xml::ParseError> for CodecError {
    fn from(e: mqp_xml::ParseError) -> Self {
        CodecError::Xml(e)
    }
}

fn malformed(msg: impl Into<String>) -> CodecError {
    CodecError::Malformed(msg.into())
}

/// Serializes a plan to its XML element form.
pub fn plan_to_xml(plan: &Plan) -> Element {
    match plan {
        Plan::Data { items, meta } => {
            let mut e = Element::new("data");
            write_meta(&mut e, meta);
            for item in items {
                e.push_child(Node::Element(item.clone()));
            }
            e
        }
        Plan::Url(u) => {
            let mut e = Element::new("url").attr("href", &u.href);
            if let Some(c) = &u.collection {
                e.set_attr("collection", c.to_string());
            }
            write_meta(&mut e, &u.meta);
            e
        }
        Plan::Urn(u) => {
            let mut e = Element::new("urn").attr("name", u.urn.to_string());
            write_meta(&mut e, &u.meta);
            e
        }
        Plan::Select { pred, input } => Element::new("select")
            .attr("pred", pred.to_string())
            .child(plan_to_xml(input)),
        Plan::Project { fields, input } => Element::new("project")
            .attr("fields", fields.join(","))
            .child(plan_to_xml(input)),
        Plan::Join { on, left, right } => Element::new("join")
            .attr("left", on.left_path.to_string())
            .attr("right", on.right_path.to_string())
            .child(plan_to_xml(left))
            .child(plan_to_xml(right)),
        Plan::Union(inputs) => {
            let mut e = Element::new("union");
            for i in inputs {
                e.push_child(Node::Element(plan_to_xml(i)));
            }
            e
        }
        Plan::Or(alts) => {
            let mut e = Element::new("or");
            for a in alts {
                let mut alt = Element::new("alt");
                if let Some(m) = a.staleness {
                    alt.set_attr("staleness", m.to_string());
                }
                alt.push_child(Node::Element(plan_to_xml(&a.plan)));
                e.push_child(Node::Element(alt));
            }
            e
        }
        Plan::Aggregate { func, path, input } => {
            let mut e = Element::new("agg").attr("func", func.name());
            if let Some(p) = path {
                e.set_attr("path", p.to_string());
            }
            e.push_child(Node::Element(plan_to_xml(input)));
            e
        }
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => Element::new("topn")
            .attr("n", n.to_string())
            .attr("key", key.to_string())
            .attr("order", if *ascending { "asc" } else { "desc" })
            .child(plan_to_xml(input)),
        Plan::Display { target, input } => Element::new("display")
            .attr("target", target)
            .child(plan_to_xml(input)),
    }
}

fn write_meta(e: &mut Element, meta: &Annotations) {
    for (k, v) in meta.iter() {
        // Reserved attribute names never appear as meta keys (decode
        // filters them), but guard anyway to keep encode total.
        if !is_reserved_attr(e.name(), k) {
            e.set_attr(k, v);
        }
    }
}

fn is_reserved_attr(elem: &str, key: &str) -> bool {
    matches!(
        (elem, key),
        ("url", "href") | ("url", "collection") | ("urn", "name")
    )
}

// ----------------------------------------------------------------------
// Direct serialization: plan → wire bytes without an intermediate
// Element tree.
// ----------------------------------------------------------------------

/// Serializes `plan` straight into `out`, byte-identical to
/// `mqp_xml::serialize(&plan_to_xml(plan))` (property-tested in
/// `proptests.rs`). This is the hot-path serializer: it never clones
/// data items and never materializes the XML tree, so a hop that ships
/// a plan onward pays only for the output bytes.
pub fn write_plan(plan: &Plan, out: &mut String) {
    match plan {
        Plan::Data { items, meta } => {
            out.push_str("<data");
            write_meta_attrs(out, "data", meta);
            if items.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for item in items {
                    serialize_into(item, out);
                }
                out.push_str("</data>");
            }
        }
        Plan::Url(u) => {
            out.push_str("<url");
            push_attr(out, "href", &u.href);
            if let Some(c) = &u.collection {
                push_attr(out, "collection", &c.to_string());
            }
            write_meta_attrs(out, "url", &u.meta);
            out.push_str("/>");
        }
        Plan::Urn(u) => {
            out.push_str("<urn");
            push_attr(out, "name", &u.urn.to_string());
            write_meta_attrs(out, "urn", &u.meta);
            out.push_str("/>");
        }
        Plan::Select { pred, input } => {
            out.push_str("<select");
            push_attr(out, "pred", &pred.to_string());
            out.push('>');
            write_plan(input, out);
            out.push_str("</select>");
        }
        Plan::Project { fields, input } => {
            out.push_str("<project");
            push_attr(out, "fields", &fields.join(","));
            out.push('>');
            write_plan(input, out);
            out.push_str("</project>");
        }
        Plan::Join { on, left, right } => {
            out.push_str("<join");
            push_attr(out, "left", &on.left_path.to_string());
            push_attr(out, "right", &on.right_path.to_string());
            out.push('>');
            write_plan(left, out);
            write_plan(right, out);
            out.push_str("</join>");
        }
        Plan::Union(inputs) => {
            if inputs.is_empty() {
                out.push_str("<union/>");
            } else {
                out.push_str("<union>");
                for i in inputs {
                    write_plan(i, out);
                }
                out.push_str("</union>");
            }
        }
        Plan::Or(alts) => {
            if alts.is_empty() {
                out.push_str("<or/>");
            } else {
                out.push_str("<or>");
                for a in alts {
                    out.push_str("<alt");
                    if let Some(m) = a.staleness {
                        push_attr(out, "staleness", &m.to_string());
                    }
                    out.push('>');
                    write_plan(&a.plan, out);
                    out.push_str("</alt>");
                }
                out.push_str("</or>");
            }
        }
        Plan::Aggregate { func, path, input } => {
            out.push_str("<agg");
            push_attr(out, "func", func.name());
            if let Some(p) = path {
                push_attr(out, "path", &p.to_string());
            }
            out.push('>');
            write_plan(input, out);
            out.push_str("</agg>");
        }
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => {
            out.push_str("<topn");
            push_attr(out, "n", &n.to_string());
            push_attr(out, "key", &key.to_string());
            push_attr(out, "order", if *ascending { "asc" } else { "desc" });
            out.push('>');
            write_plan(input, out);
            out.push_str("</topn>");
        }
        Plan::Display { target, input } => {
            out.push_str("<display");
            push_attr(out, "target", target);
            out.push('>');
            write_plan(input, out);
            out.push_str("</display>");
        }
    }
}

fn push_attr(out: &mut String, name: &str, value: &str) {
    out.push(' ');
    out.push_str(name);
    out.push_str("=\"");
    escape_into(value, true, out);
    out.push('"');
}

fn write_meta_attrs(out: &mut String, elem: &str, meta: &Annotations) {
    for (k, v) in meta.iter() {
        if !is_reserved_attr(elem, k) {
            push_attr(out, k, v);
        }
    }
}

/// Decodes a plan from its XML element form.
pub fn plan_from_xml(e: &Element) -> Result<Plan, CodecError> {
    match e.name() {
        "data" => {
            let mut meta = Annotations::new();
            for (k, v) in e.attrs() {
                meta.set(k.clone(), v.clone());
            }
            let items: mqp_xml::Batch = e.child_elements().cloned().collect();
            Ok(Plan::Data { items, meta })
        }
        "url" => {
            let href = e
                .get_attr("href")
                .ok_or_else(|| malformed("url missing href"))?
                .to_owned();
            let collection = match e.get_attr("collection") {
                Some(c) => Some(
                    Path::parse(c).map_err(|err| malformed(format!("url collection: {err}")))?,
                ),
                None => None,
            };
            let mut meta = Annotations::new();
            for (k, v) in e.attrs() {
                if k != "href" && k != "collection" {
                    meta.set(k.clone(), v.clone());
                }
            }
            Ok(Plan::Url(UrlRef {
                href,
                collection,
                meta,
            }))
        }
        "urn" => {
            let name = e
                .get_attr("name")
                .ok_or_else(|| malformed("urn missing name"))?;
            let urn = Urn::parse(name).map_err(|err| malformed(format!("urn: {err}")))?;
            let mut meta = Annotations::new();
            for (k, v) in e.attrs() {
                if k != "name" {
                    meta.set(k.clone(), v.clone());
                }
            }
            Ok(Plan::Urn(UrnRef { urn, meta }))
        }
        "select" => {
            let pred = Predicate::parse(
                e.get_attr("pred")
                    .ok_or_else(|| malformed("select missing pred"))?,
            )
            .map_err(|err| malformed(format!("select pred: {err}")))?;
            Ok(Plan::Select {
                pred,
                input: Box::new(only_child(e)?),
            })
        }
        "project" => {
            let fields: Vec<String> = e
                .get_attr("fields")
                .ok_or_else(|| malformed("project missing fields"))?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
            Ok(Plan::Project {
                fields,
                input: Box::new(only_child(e)?),
            })
        }
        "join" => {
            let on = JoinCond {
                left_path: parse_path_attr(e, "left")?,
                right_path: parse_path_attr(e, "right")?,
            };
            let kids: Vec<&Element> = e.child_elements().collect();
            if kids.len() != 2 {
                return Err(malformed(format!(
                    "join needs 2 inputs, got {}",
                    kids.len()
                )));
            }
            Ok(Plan::Join {
                on,
                left: Box::new(plan_from_xml(kids[0])?),
                right: Box::new(plan_from_xml(kids[1])?),
            })
        }
        "union" => {
            let inputs: Result<Vec<Plan>, CodecError> =
                e.child_elements().map(plan_from_xml).collect();
            Ok(Plan::Union(inputs?))
        }
        "or" => {
            let mut alts = Vec::new();
            for alt in e.child_elements() {
                if alt.name() != "alt" {
                    return Err(malformed(format!(
                        "or child must be alt, got {}",
                        alt.name()
                    )));
                }
                let staleness = match alt.get_attr("staleness") {
                    Some(s) => Some(
                        s.parse()
                            .map_err(|_| malformed(format!("bad staleness {s:?}")))?,
                    ),
                    None => None,
                };
                let plan = only_child(alt)?;
                alts.push(OrAlt { plan, staleness });
            }
            if alts.is_empty() {
                return Err(malformed("or needs at least one alternative"));
            }
            Ok(Plan::Or(alts))
        }
        "agg" => {
            let func = AggFunc::parse(
                e.get_attr("func")
                    .ok_or_else(|| malformed("agg missing func"))?,
            )
            .ok_or_else(|| malformed("unknown agg func"))?;
            let path = match e.get_attr("path") {
                Some(p) => {
                    Some(Path::parse(p).map_err(|err| malformed(format!("agg path: {err}")))?)
                }
                None => None,
            };
            Ok(Plan::Aggregate {
                func,
                path,
                input: Box::new(only_child(e)?),
            })
        }
        "topn" => {
            let n: usize = e
                .get_attr("n")
                .ok_or_else(|| malformed("topn missing n"))?
                .parse()
                .map_err(|_| malformed("topn n not a number"))?;
            let key = parse_path_attr(e, "key")?;
            let ascending = match e.get_attr("order").unwrap_or("asc") {
                "asc" => true,
                "desc" => false,
                other => return Err(malformed(format!("bad topn order {other:?}"))),
            };
            Ok(Plan::TopN {
                n,
                key,
                ascending,
                input: Box::new(only_child(e)?),
            })
        }
        "display" => {
            let target = e
                .get_attr("target")
                .ok_or_else(|| malformed("display missing target"))?
                .to_owned();
            Ok(Plan::Display {
                target,
                input: Box::new(only_child(e)?),
            })
        }
        other => Err(malformed(format!("unknown operator <{other}>"))),
    }
}

fn parse_path_attr(e: &Element, attr: &str) -> Result<Path, CodecError> {
    let raw = e
        .get_attr(attr)
        .ok_or_else(|| malformed(format!("{} missing {attr}", e.name())))?;
    Path::parse(raw).map_err(|err| malformed(format!("{attr}: {err}")))
}

fn only_child(e: &Element) -> Result<Plan, CodecError> {
    let kids: Vec<&Element> = e.child_elements().collect();
    if kids.len() != 1 {
        return Err(malformed(format!(
            "<{}> needs exactly one input, got {}",
            e.name(),
            kids.len()
        )));
    }
    plan_from_xml(kids[0])
}

/// Serializes a plan to the compact XML wire string (via
/// [`write_plan`], so no intermediate tree is built).
pub fn to_wire(plan: &Plan) -> String {
    let mut out = String::with_capacity(128);
    write_plan(plan, &mut out);
    out
}

/// Parses a plan from the XML wire string.
///
/// Fast path: canonical wire bytes (everything [`to_wire`] produced,
/// i.e. the entire hop-to-hop path) decode straight from the zero-copy
/// tokenizer into a [`Plan`] — no intermediate XML tree for operator
/// nodes and no deep-cloning data items out of one. Anything else falls
/// back to [`from_wire_tree`], which also produces the real error for
/// malformed input.
pub fn from_wire(s: &str) -> Result<Plan, CodecError> {
    if let Some(plan) = plan_from_canonical(s) {
        return Ok(plan);
    }
    from_wire_tree(s)
}

/// The tree-building decode path: lenient parse, whitespace trim, then
/// [`plan_from_xml`]. Kept callable on its own as the fallback for
/// non-canonical input and as the pre-zero-copy baseline that
/// `bench_report` measures speedups against.
pub fn from_wire_tree(s: &str) -> Result<Plan, CodecError> {
    let mut root = mqp_xml::parse_document(s)?;
    // Pretty-printed plans carry inter-element whitespace; it is not
    // data (verbatim items keep their own text intact because trimming
    // only removes whitespace-only nodes... which *could* matter inside
    // data items, so only trim operator levels).
    trim_operator_whitespace(&mut root);
    plan_from_xml(&root)
}

/// What [`plan_from_tokens`] should do with verbatim data items: build
/// them as XML trees, or validate-and-skip them. `Skip` makes the
/// decoder a *validator* — it accepts exactly the same inputs (the
/// skip/build equivalence is property-tested in `mqp-xml`) while doing
/// none of the item allocation, which is how the envelope layer
/// validates its `<original>` section without materializing it.
pub enum ItemSink<'a> {
    /// Materialize items through this builder.
    Build(&'a mut mqp_xml::TreeBuilder),
    /// Validate items but build nothing (data leaves decode with empty
    /// item lists — use only when the decoded plan is discarded).
    Skip,
}

impl ItemSink<'_> {
    fn item(
        &mut self,
        tok: &mut mqp_xml::Tokenizer<'_>,
        name: &str,
        out: &mut mqp_xml::Batch,
    ) -> Result<(), mqp_xml::NotCanonical> {
        match self {
            ItemSink::Build(tb) => out.push_item(tb.build(tok, name)?),
            ItemSink::Skip => mqp_xml::skip_subtree(tok, name)?,
        }
        Ok(())
    }
}

/// Decodes a whole canonical document as a plan, or `None` to fall
/// back (non-canonical bytes *or* anything the token decoder cannot
/// express an error for — the fallback rediscovers the precise error).
pub fn plan_from_canonical(s: &str) -> Option<Plan> {
    let mut tok = mqp_xml::Tokenizer::new(s);
    let Ok(Some(mqp_xml::Token::Open(name))) = tok.next_token() else {
        return None;
    };
    let mut tb = mqp_xml::TreeBuilder::new();
    let plan = plan_from_tokens(&mut tok, &mut ItemSink::Build(&mut tb), name).ok()?;
    matches!(tok.next_token(), Ok(None)).then_some(plan)
}

/// Decodes the operator element whose `Open(name)` token was just
/// consumed. Mirrors [`plan_from_xml`] exactly — same attribute
/// handling, same tolerance for stray text at operator level (ignored),
/// same verbatim treatment of data items (routed through `items`) —
/// but any problem at all yields `Err` so the caller can fall back to
/// the tree path for diagnosis.
pub fn plan_from_tokens(
    tok: &mut mqp_xml::Tokenizer<'_>,
    items: &mut ItemSink<'_>,
    name: &str,
) -> Result<Plan, mqp_xml::NotCanonical> {
    use mqp_xml::{NotCanonical, Token};

    // Attributes arrive before we know the children.
    let mut attrs: Vec<(&str, std::borrow::Cow<'_, str>)> = Vec::new();
    let self_closed = loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Attr { name, value } => {
                if attrs.iter().any(|(n, _)| *n == name) {
                    return Err(NotCanonical);
                }
                attrs.push((name, value));
            }
            Token::OpenEnd => break false,
            Token::SelfClose => break true,
            _ => return Err(NotCanonical),
        }
    };
    let attr = |key: &str| {
        attrs
            .iter()
            .find(|(n, _)| *n == key)
            .map(|(_, v)| v.as_ref())
    };

    // Leaves first: they own their children loops.
    match name {
        "data" => {
            let mut meta = Annotations::new();
            for (k, v) in &attrs {
                meta.set(*k, v.clone());
            }
            let mut out = mqp_xml::Batch::new();
            if !self_closed {
                loop {
                    match tok.next_token()?.ok_or(NotCanonical)? {
                        Token::Open(n) => items.item(tok, n, &mut out)?,
                        Token::Text(_) => {} // formatting; ignored like plan_from_xml
                        Token::Close("data") => break,
                        _ => return Err(NotCanonical),
                    }
                }
            }
            return Ok(Plan::Data { items: out, meta });
        }
        "url" => {
            let href = attr("href").ok_or(NotCanonical)?.to_owned();
            let collection = match attr("collection") {
                Some(c) => Some(Path::parse(c).map_err(|_| NotCanonical)?),
                None => None,
            };
            let mut meta = Annotations::new();
            for (k, v) in &attrs {
                if *k != "href" && *k != "collection" {
                    meta.set(*k, v.clone());
                }
            }
            let plan = Plan::Url(UrlRef {
                href,
                collection,
                meta,
            });
            return finish_leaf(tok, name, self_closed, plan);
        }
        "urn" => {
            let urn = Urn::parse(attr("name").ok_or(NotCanonical)?).map_err(|_| NotCanonical)?;
            let mut meta = Annotations::new();
            for (k, v) in &attrs {
                if *k != "name" {
                    meta.set(*k, v.clone());
                }
            }
            let plan = Plan::Urn(UrnRef { urn, meta });
            return finish_leaf(tok, name, self_closed, plan);
        }
        _ => {}
    }

    // Interior operators: decode the element-children plans, ignoring
    // stray text (plan_from_xml never looks at it either).
    let mut kids: Vec<Plan> = Vec::new();
    let mut or_alts: Vec<OrAlt> = Vec::new();
    let is_or = name == "or";
    if !self_closed {
        loop {
            match tok.next_token()?.ok_or(NotCanonical)? {
                Token::Open(n) => {
                    if is_or {
                        or_alts.push(alt_from_tokens(tok, items, n)?);
                    } else {
                        kids.push(plan_from_tokens(tok, items, n)?);
                    }
                }
                Token::Text(_) => {}
                Token::Close(c) if c == name => break,
                _ => return Err(NotCanonical),
            }
        }
    }
    fn only_one(kids: Vec<Plan>) -> Result<Box<Plan>, mqp_xml::NotCanonical> {
        let mut it = kids.into_iter();
        let first = it.next().ok_or(mqp_xml::NotCanonical)?;
        if it.next().is_some() {
            return Err(mqp_xml::NotCanonical);
        }
        Ok(Box::new(first))
    }
    match name {
        "select" => Ok(Plan::Select {
            pred: Predicate::parse(attr("pred").ok_or(NotCanonical)?).map_err(|_| NotCanonical)?,
            input: only_one(kids)?,
        }),
        "project" => Ok(Plan::Project {
            fields: attr("fields")
                .ok_or(NotCanonical)?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect(),
            input: only_one(kids)?,
        }),
        "join" => {
            let on = JoinCond {
                left_path: Path::parse(attr("left").ok_or(NotCanonical)?)
                    .map_err(|_| NotCanonical)?,
                right_path: Path::parse(attr("right").ok_or(NotCanonical)?)
                    .map_err(|_| NotCanonical)?,
            };
            if kids.len() != 2 {
                return Err(NotCanonical);
            }
            let mut it = kids.into_iter();
            let left = Box::new(it.next().expect("len checked"));
            let right = Box::new(it.next().expect("len checked"));
            Ok(Plan::Join { on, left, right })
        }
        "union" => Ok(Plan::Union(kids)),
        "or" => {
            if or_alts.is_empty() {
                return Err(NotCanonical);
            }
            Ok(Plan::Or(or_alts))
        }
        "agg" => Ok(Plan::Aggregate {
            func: AggFunc::parse(attr("func").ok_or(NotCanonical)?).ok_or(NotCanonical)?,
            path: match attr("path") {
                Some(p) => Some(Path::parse(p).map_err(|_| NotCanonical)?),
                None => None,
            },
            input: only_one(kids)?,
        }),
        "topn" => Ok(Plan::TopN {
            n: attr("n")
                .ok_or(NotCanonical)?
                .parse()
                .map_err(|_| NotCanonical)?,
            key: Path::parse(attr("key").ok_or(NotCanonical)?).map_err(|_| NotCanonical)?,
            ascending: match attr("order").unwrap_or("asc") {
                "asc" => true,
                "desc" => false,
                _ => return Err(NotCanonical),
            },
            input: only_one(kids)?,
        }),
        "display" => Ok(Plan::Display {
            target: attr("target").ok_or(NotCanonical)?.to_owned(),
            input: only_one(kids)?,
        }),
        _ => Err(NotCanonical),
    }
}

/// Consumes the closing tag of a childless leaf; a leaf written long
/// form is not canonical output, so fall back rather than guess.
fn finish_leaf(
    tok: &mut mqp_xml::Tokenizer<'_>,
    name: &str,
    self_closed: bool,
    plan: Plan,
) -> Result<Plan, mqp_xml::NotCanonical> {
    use mqp_xml::{NotCanonical, Token};
    if self_closed {
        return Ok(plan);
    }
    loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Text(_) => {}
            Token::Close(c) if c == name => return Ok(plan),
            _ => return Err(NotCanonical),
        }
    }
}

fn alt_from_tokens(
    tok: &mut mqp_xml::Tokenizer<'_>,
    items: &mut ItemSink<'_>,
    name: &str,
) -> Result<OrAlt, mqp_xml::NotCanonical> {
    use mqp_xml::{NotCanonical, Token};
    if name != "alt" {
        return Err(NotCanonical);
    }
    let mut staleness = None;
    let mut plan = None;
    let self_closed = loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Attr {
                name: "staleness",
                value,
            } => {
                if staleness.is_some() {
                    return Err(NotCanonical);
                }
                staleness = Some(value.parse().map_err(|_| NotCanonical)?);
            }
            Token::Attr { .. } => return Err(NotCanonical), // foreign attr: fall back
            Token::OpenEnd => break false,
            Token::SelfClose => break true,
            _ => return Err(NotCanonical),
        }
    };
    if !self_closed {
        loop {
            match tok.next_token()?.ok_or(NotCanonical)? {
                Token::Open(n) => {
                    if plan.is_some() {
                        return Err(NotCanonical);
                    }
                    plan = Some(plan_from_tokens(tok, items, n)?);
                }
                Token::Text(_) => {}
                Token::Close("alt") => break,
                _ => return Err(NotCanonical),
            }
        }
    }
    Ok(OrAlt {
        plan: plan.ok_or(NotCanonical)?,
        staleness,
    })
}

/// Removes whitespace-only text nodes from operator elements (not from
/// verbatim data items, whose text is payload).
fn trim_operator_whitespace(e: &mut Element) {
    const OPERATORS: [&str; 11] = [
        "data", "url", "urn", "select", "project", "join", "union", "or", "alt", "agg", "topn",
    ];
    let is_op = OPERATORS.contains(&e.name()) || e.name() == "display";
    if !is_op {
        return; // inside verbatim data — leave untouched
    }
    if e.name() == "data" {
        // Whitespace directly under <data> is formatting; items keep
        // their insides untouched.
        e.children_mut().retain(|c| !c.is_whitespace());
        return;
    }
    e.children_mut().retain(|c| !c.is_whitespace());
    for c in e.children_mut() {
        if let Node::Element(el) = c {
            trim_operator_whitespace(el);
        }
    }
}

/// Exact byte size of the plan on the wire — what the network simulator
/// charges when a server ships a mutated plan onward (§2: "We have to
/// transfer these partial results over the network; their size
/// matters"). Serializes directly (no tree, no item clones), so it is
/// cheaper than the old build-the-tree-and-measure path despite
/// materializing the string.
pub fn wire_size(plan: &Plan) -> usize {
    to_wire(plan).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_xml::parse;

    fn roundtrip(p: &Plan) -> Plan {
        let wire = to_wire(p);
        from_wire(&wire).unwrap_or_else(|e| panic!("{wire}: {e}"))
    }

    fn figure3_plan() -> Plan {
        let favorites = Plan::data([
            parse("<song><title>Alabama Song</title></song>").unwrap(),
            parse("<song><title>Kashmir</title></song>").unwrap(),
        ]);
        let inner = Plan::join(
            JoinCond::on("song/title", "track/title"),
            favorites,
            Plan::urn("urn:CD:TrackListings"),
        );
        let outer = Plan::join(
            JoinCond::on("tuple/track/album", "item/title"),
            inner,
            Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
        );
        Plan::display("129.95.50.105:9020", outer)
    }

    #[test]
    fn figure3_roundtrips() {
        let p = figure3_plan();
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn wire_format_shape() {
        let wire = to_wire(&figure3_plan());
        assert!(
            wire.starts_with("<display target=\"129.95.50.105:9020\">"),
            "{wire}"
        );
        assert!(
            wire.contains("<urn name=\"urn:ForSale:Portland-CDs\"/>"),
            "{wire}"
        );
        assert!(wire.contains("pred=\"price &lt; 10\""), "{wire}");
    }

    #[test]
    fn all_operators_roundtrip() {
        let item = parse("<item><price>5</price></item>").unwrap();
        let plans = vec![
            Plan::data([item.clone()]),
            Plan::url("http://10.1.2.3:9020/"),
            Plan::Url(UrlRef::with_collection(
                "http://10.3.4.5/",
                "/data[@id='245']",
            )),
            Plan::urn("urn:InterestArea:(USA.OR.Portland,Music.CDs)"),
            Plan::select("price < 10 and name != 'junk'", Plan::data([item.clone()])),
            Plan::project(["name", "price"], Plan::data([item.clone()])),
            Plan::join(
                JoinCond::on("a/b", "c/d"),
                Plan::data([item.clone()]),
                Plan::url("http://x/"),
            ),
            Plan::union([
                Plan::url("http://a/"),
                Plan::url("http://b/"),
                Plan::data([]),
            ]),
            Plan::Or(vec![
                OrAlt::stale(Plan::url("http://r/"), 30),
                OrAlt::new(Plan::union([
                    Plan::url("http://r/"),
                    Plan::url("http://s/"),
                ])),
            ]),
            Plan::aggregate(AggFunc::Count, None, Plan::data([item.clone()])),
            Plan::aggregate(AggFunc::Sum, Some("price"), Plan::data([item.clone()])),
            Plan::top_n(5, "price", false, Plan::data([item.clone()])),
            Plan::display("h:1", Plan::data([item])),
        ];
        for p in plans {
            assert_eq!(roundtrip(&p), p);
        }
    }

    #[test]
    fn annotations_roundtrip() {
        let mut url = UrlRef::new("http://10.1.2.3/");
        url.meta.set_cardinality(1_000_000);
        url.meta.set("distinct", "5000");
        let p = Plan::Url(url);
        let back = roundtrip(&p);
        match back {
            Plan::Url(u) => {
                assert_eq!(u.meta.cardinality(), Some(1_000_000));
                assert_eq!(u.meta.distinct(), Some(5000));
            }
            _ => panic!("expected url"),
        }
    }

    #[test]
    fn data_preserves_item_text_exactly() {
        let item = parse("<note>  spaced  text &amp; entity </note>").unwrap();
        let p = Plan::data([item.clone()]);
        let back = roundtrip(&p);
        assert_eq!(back.as_data().unwrap()[0], item);
    }

    #[test]
    fn pretty_printed_plan_reparses() {
        // Pretty printing is for humans: it indents inside verbatim data
        // items too, so reparsing recovers the plan modulo whitespace in
        // item text. Normalize both sides before comparing.
        fn normalize(p: &mut Plan) {
            if let Plan::Data { items, .. } = p {
                for i in items.iter_mut() {
                    i.trim_whitespace();
                }
            }
            for c in p.children_mut() {
                normalize(c);
            }
        }
        let p = figure3_plan();
        let pretty = mqp_xml::serialize_pretty(&plan_to_xml(&p));
        let mut back = from_wire(&pretty).unwrap();
        let mut expect = p;
        normalize(&mut back);
        normalize(&mut expect);
        assert_eq!(back, expect);
    }

    #[test]
    fn malformed_plans_rejected() {
        for bad in [
            "<mystery/>",
            "<select><data/></select>",                     // missing pred
            "<select pred=\"price &lt;\"><data/></select>", // bad pred
            "<join left=\"a\" right=\"b\"><data/></join>",  // one input
            "<url/>",                                       // missing href
            "<urn name=\"not-a-urn\"/>",
            "<or/>",            // no alternatives
            "<or><data/></or>", // child not alt
            "<topn n=\"x\" key=\"a\"><data/></topn>",
            "<agg func=\"median\"><data/></agg>",
            "<display><data/></display>", // missing target
        ] {
            assert!(from_wire(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn wire_size_matches_string_length() {
        let p = figure3_plan();
        assert_eq!(wire_size(&p), to_wire(&p).len());
    }

    #[test]
    fn data_cardinality_attr_on_wire() {
        let wire = to_wire(&Plan::data([parse("<i/>").unwrap()]));
        assert!(wire.contains("cardinality=\"1\""), "{wire}");
    }
}
