//! # mqp-algebra — the mutant-query-plan algebra (paper §2, Figures 3–4)
//!
//! A mutant query plan is "an algebraic query plan graph, encoded in XML,
//! that may also include verbatim XML-encoded data, references to
//! resource locations (URLs), and references to abstract resource names
//! (URNs)". This crate defines that algebra:
//!
//! * [`Plan`] — the operator tree: `Select`, `Project`, `Join`, `Union`,
//!   the `Or` conjoint union of §4.2, `Aggregate`, `TopN`, and the
//!   `Display` pseudo-operator carrying the plan's `target`. Leaves are
//!   [`Plan::Data`] (verbatim XML), [`Plan::Url`], and [`Plan::Urn`].
//! * [`Predicate`] — the selection language (comparisons over XPath
//!   field paths, `and`/`or`/`not`), with a parser for the compact text
//!   form used in plan XML attributes.
//! * [`codec`] — the XML wire format: `Plan ↔ Element` both ways
//!   (property-tested round trip).
//! * [`render`] — the parseable pipeline pretty-printer (`mqp-lang`'s
//!   concrete syntax), used in error messages and golden traces.
//! * Structural utilities: node addressing ([`NodePath`]), substitution
//!   (how servers splice results over evaluated sub-plans), leaf
//!   collection, and size accounting.
//!
//! Evaluation lives in `mqp-engine`; mutation policy in `mqp-core`.

pub mod codec;
pub mod plan;
pub mod predicate;
pub mod render;

pub use codec::{plan_from_xml, plan_to_xml, CodecError};
pub use plan::{Annotations, JoinCond, NodePath, Plan, UrlRef, UrnRef};
pub use predicate::{AggFunc, Predicate};

#[cfg(test)]
mod proptests;
