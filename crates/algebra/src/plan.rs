//! The plan tree: operators, leaves, annotations, and structural
//! utilities (addressing, substitution, traversal).

use std::collections::BTreeMap;
use std::fmt;

use mqp_namespace::Urn;
use mqp_xml::xpath::Path;
use mqp_xml::{Batch, Element};

use crate::predicate::{AggFunc, Predicate};

/// Key/value annotations carried on plan leaves (paper §5.1:
/// "S could annotate B with its cardinality, the unique cardinality of
/// the join column, or even a histogram"). Stored sorted so the XML wire
/// form is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Annotations(BTreeMap<String, String>);

impl Annotations {
    /// Empty annotation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a string annotation.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    /// Gets a string annotation.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// All annotations in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// True if no annotations are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Declared cardinality of the underlying collection, if announced.
    pub fn cardinality(&self) -> Option<u64> {
        self.get("cardinality")?.parse().ok()
    }

    /// Announces the cardinality (§5.1).
    pub fn set_cardinality(&mut self, n: u64) {
        self.set("cardinality", n.to_string());
    }

    /// Declared unique cardinality of the join column, if announced.
    pub fn distinct(&self) -> Option<u64> {
        self.get("distinct")?.parse().ok()
    }

    /// Declared serialized byte size, if announced.
    pub fn byte_size(&self) -> Option<u64> {
        self.get("bytes")?.parse().ok()
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for Annotations {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Annotations(
            iter.into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }
}

/// A resource location: the paper's `(http://10.3.4.5, /data[id=245])`
/// pairs — a server address plus an XPath collection identifier (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct UrlRef {
    /// Server address, e.g. `http://10.1.2.3:9020/`.
    pub href: String,
    /// Collection identifier at that server, e.g. `/data[@id='245']`.
    /// `None` means the server's default collection.
    pub collection: Option<Path>,
    /// Statistics annotations (§5.1).
    pub meta: Annotations,
}

impl UrlRef {
    /// A URL leaf with the default collection.
    pub fn new(href: impl Into<String>) -> Self {
        UrlRef {
            href: href.into(),
            collection: None,
            meta: Annotations::new(),
        }
    }

    /// A URL leaf naming a specific collection.
    pub fn with_collection(href: impl Into<String>, path: &str) -> Self {
        UrlRef {
            href: href.into(),
            collection: Some(Path::parse(path).expect("malformed collection path")),
            meta: Annotations::new(),
        }
    }
}

/// An abstract resource name plus annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct UrnRef {
    /// The parsed URN.
    pub urn: Urn,
    /// Statistics / routing annotations.
    pub meta: Annotations,
}

impl UrnRef {
    /// Wraps a URN.
    pub fn new(urn: Urn) -> Self {
        UrnRef {
            urn,
            meta: Annotations::new(),
        }
    }
}

/// Equi-join condition: items pair up when the values under `left_path`
/// and `right_path` compare equal (numeric-aware, like predicates).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCond {
    /// Field path into left items.
    pub left_path: Path,
    /// Field path into right items.
    pub right_path: Path,
}

impl JoinCond {
    /// Builds a join condition from path literals; panics on malformed
    /// paths (intended for statically known paths).
    pub fn on(left: &str, right: &str) -> Self {
        JoinCond {
            left_path: Path::parse(left).expect("malformed join path"),
            right_path: Path::parse(right).expect("malformed join path"),
        }
    }
}

/// One alternative of an `Or` (conjoint union, §4.2), optionally tagged
/// with a staleness bound in minutes (§4.3: `…@R{30}`).
#[derive(Debug, Clone, PartialEq)]
pub struct OrAlt {
    /// The alternative sub-plan.
    pub plan: Plan,
    /// Upper bound on how out-of-date this alternative may be, in
    /// minutes; `None` when unknown/unstated, `Some(0)` means current.
    pub staleness: Option<u32>,
}

impl OrAlt {
    /// Alternative with no staleness statement.
    pub fn new(plan: Plan) -> Self {
        OrAlt {
            plan,
            staleness: None,
        }
    }

    /// Alternative with a staleness bound.
    pub fn stale(plan: Plan, minutes: u32) -> Self {
        OrAlt {
            plan,
            staleness: Some(minutes),
        }
    }
}

/// A mutant query plan tree.
///
/// The paper calls plans "graphs"; common sub-expressions are expressed
/// here by repeating the subtree (value semantics), which keeps
/// substitution and the XML codec simple and is how the prototype's XML
/// serialization behaves anyway (XML is a tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Verbatim XML data: a constant collection of items, held as a
    /// shared [`Batch`] so substitution, evaluation, and forwarding
    /// shuffle `Arc` handles instead of deep-copying trees.
    Data {
        /// The items.
        items: Batch,
        /// Statistics annotations.
        meta: Annotations,
    },
    /// A resource location.
    Url(UrlRef),
    /// An abstract resource name.
    Urn(UrnRef),
    /// Selection.
    Select {
        /// Filter predicate.
        pred: Predicate,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Projection onto a set of direct child fields.
    Project {
        /// Child-element names to keep.
        fields: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Equi-join; output items are `<tuple>` elements containing the two
    /// matched items.
    Join {
        /// Join condition.
        on: JoinCond,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Bag union of any number of inputs.
    Union(Vec<Plan>),
    /// Conjoint union (§4.2): *either* alternative holds the necessary
    /// data; a server may rewrite `A | B` to `A` or to `B`.
    Or(Vec<OrAlt>),
    /// Aggregation to a single item.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Field path aggregated over (ignored by `count`).
        path: Option<Path>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Keep the `n` smallest/largest items by `key`.
    TopN {
        /// How many items to keep.
        n: usize,
        /// Sort key path.
        key: Path,
        /// Sort direction.
        ascending: bool,
        /// Input plan.
        input: Box<Plan>,
    },
    /// The display pseudo-operator: tags the plan with the network
    /// address that should receive the final result (§2).
    Display {
        /// Result destination, e.g. `129.95.50.105:9020`.
        target: String,
        /// The query proper.
        input: Box<Plan>,
    },
}

impl Plan {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Constant data leaf from owned items (wraps each in an `Arc`).
    pub fn data(items: impl IntoIterator<Item = Element>) -> Plan {
        Plan::data_shared(items.into_iter().collect())
    }

    /// Constant data leaf from an already-shared batch — the clone-free
    /// path the reduce step uses to feed evaluation results straight
    /// back into the plan.
    pub fn data_shared(items: Batch) -> Plan {
        let mut meta = Annotations::new();
        meta.set_cardinality(items.len() as u64);
        Plan::Data { items, meta }
    }

    /// URL leaf.
    pub fn url(href: impl Into<String>) -> Plan {
        Plan::Url(UrlRef::new(href))
    }

    /// URN leaf from its text form; panics on a malformed URN literal.
    pub fn urn(urn: &str) -> Plan {
        Plan::Urn(UrnRef::new(Urn::parse(urn).expect("malformed URN literal")))
    }

    /// Selection; `pred` is the compact predicate text. Panics on a
    /// malformed literal.
    pub fn select(pred: &str, input: Plan) -> Plan {
        Plan::Select {
            pred: Predicate::parse(pred).expect("malformed predicate literal"),
            input: Box::new(input),
        }
    }

    /// Projection.
    pub fn project<S: Into<String>>(fields: impl IntoIterator<Item = S>, input: Plan) -> Plan {
        Plan::Project {
            fields: fields.into_iter().map(Into::into).collect(),
            input: Box::new(input),
        }
    }

    /// Equi-join.
    pub fn join(on: JoinCond, left: Plan, right: Plan) -> Plan {
        Plan::Join {
            on,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Bag union.
    pub fn union(inputs: impl IntoIterator<Item = Plan>) -> Plan {
        Plan::Union(inputs.into_iter().collect())
    }

    /// Conjoint union of plain alternatives.
    pub fn or(alts: impl IntoIterator<Item = Plan>) -> Plan {
        Plan::Or(alts.into_iter().map(OrAlt::new).collect())
    }

    /// Aggregate.
    pub fn aggregate(func: AggFunc, path: Option<&str>, input: Plan) -> Plan {
        Plan::Aggregate {
            func,
            path: path.map(|p| Path::parse(p).expect("malformed aggregate path")),
            input: Box::new(input),
        }
    }

    /// Top-n by key.
    pub fn top_n(n: usize, key: &str, ascending: bool, input: Plan) -> Plan {
        Plan::TopN {
            n,
            key: Path::parse(key).expect("malformed key path"),
            ascending,
            input: Box::new(input),
        }
    }

    /// Display wrapper.
    pub fn display(target: impl Into<String>, input: Plan) -> Plan {
        Plan::Display {
            target: target.into(),
            input: Box::new(input),
        }
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Immediate children, in a stable order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Data { .. } | Plan::Url(_) | Plan::Urn(_) => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Display { input, .. } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::Union(inputs) => inputs.iter().collect(),
            Plan::Or(alts) => alts.iter().map(|a| &a.plan).collect(),
        }
    }

    /// Mutable immediate children, same order as [`Plan::children`].
    pub fn children_mut(&mut self) -> Vec<&mut Plan> {
        match self {
            Plan::Data { .. } | Plan::Url(_) | Plan::Urn(_) => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Display { input, .. } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::Union(inputs) => inputs.iter_mut().collect(),
            Plan::Or(alts) => alts.iter_mut().map(|a| &mut a.plan).collect(),
        }
    }

    /// Operator name (used by the codec and displays).
    pub fn op_name(&self) -> &'static str {
        match self {
            Plan::Data { .. } => "data",
            Plan::Url(_) => "url",
            Plan::Urn(_) => "urn",
            Plan::Select { .. } => "select",
            Plan::Project { .. } => "project",
            Plan::Join { .. } => "join",
            Plan::Union(_) => "union",
            Plan::Or(_) => "or",
            Plan::Aggregate { .. } => "agg",
            Plan::TopN { .. } => "topn",
            Plan::Display { .. } => "display",
        }
    }

    /// Total node count of the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Plan)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// All URN leaves in the plan.
    pub fn urns(&self) -> Vec<&UrnRef> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let Plan::Urn(u) = p {
                out.push(u);
            }
        });
        out
    }

    /// All URL leaves in the plan.
    pub fn urls(&self) -> Vec<&UrlRef> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let Plan::Url(u) = p {
                out.push(u);
            }
        });
        out
    }

    /// True when the plan (ignoring a `Display` wrapper) has been reduced
    /// to a constant piece of XML data — the termination condition of
    /// mutant query evaluation (§2).
    pub fn is_fully_evaluated(&self) -> bool {
        match self {
            Plan::Display { input, .. } => matches!(**input, Plan::Data { .. }),
            Plan::Data { .. } => true,
            _ => false,
        }
    }

    /// The display target, if the plan carries one at its root.
    pub fn target(&self) -> Option<&str> {
        match self {
            Plan::Display { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Sub-plan at `path` (empty path = the plan itself).
    pub fn get(&self, path: &NodePath) -> Option<&Plan> {
        let mut cur = self;
        for &i in &path.0 {
            cur = *cur.children().get(i)?;
        }
        Some(cur)
    }

    /// Replaces the sub-plan at `path`, returning the old sub-plan.
    /// Returns `Err(new)` (giving the replacement back) when the path
    /// does not exist.
    pub fn replace(&mut self, path: &NodePath, new: Plan) -> Result<Plan, Plan> {
        let mut cur: &mut Plan = self;
        for &i in &path.0 {
            let kids = cur.children_mut();
            let Some(slot) = kids.into_iter().nth(i) else {
                return Err(new);
            };
            cur = slot;
        }
        Ok(std::mem::replace(cur, new))
    }

    /// Paths of every node matching `pred`, in pre-order.
    pub fn find_all(&self, pred: &impl Fn(&Plan) -> bool) -> Vec<NodePath> {
        let mut out = Vec::new();
        fn rec(
            plan: &Plan,
            pred: &impl Fn(&Plan) -> bool,
            prefix: &mut Vec<usize>,
            out: &mut Vec<NodePath>,
        ) {
            if pred(plan) {
                out.push(NodePath(prefix.clone()));
            }
            for (i, c) in plan.children().into_iter().enumerate() {
                prefix.push(i);
                rec(c, pred, prefix, out);
                prefix.pop();
            }
        }
        rec(self, pred, &mut Vec::new(), &mut out);
        out
    }

    /// The constant items, if this node is a `Data` leaf.
    pub fn as_data(&self) -> Option<&Batch> {
        match self {
            Plan::Data { items, .. } => Some(items),
            _ => None,
        }
    }

    /// Renders the plan as an indented operator tree for logs/examples.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Plan::Data { items, .. } => {
                out.push_str(&format!("data ({} items)\n", items.len()));
            }
            Plan::Url(u) => {
                out.push_str(&format!(
                    "url {}{}\n",
                    u.href,
                    u.collection
                        .as_ref()
                        .map(|p| format!(" {p}"))
                        .unwrap_or_default()
                ));
            }
            Plan::Urn(u) => out.push_str(&format!("urn {}\n", u.urn)),
            Plan::Select { pred, .. } => out.push_str(&format!("select {pred}\n")),
            Plan::Project { fields, .. } => {
                out.push_str(&format!("project {}\n", fields.join(",")));
            }
            Plan::Join { on, .. } => {
                out.push_str(&format!("join {} = {}\n", on.left_path, on.right_path));
            }
            Plan::Union(_) => out.push_str("union\n"),
            Plan::Or(alts) => {
                let tags: Vec<String> = alts
                    .iter()
                    .map(|a| match a.staleness {
                        Some(m) => format!("{{{m}}}"),
                        None => "{}".to_owned(),
                    })
                    .collect();
                out.push_str(&format!("or {}\n", tags.join(" | ")));
            }
            Plan::Aggregate { func, path, .. } => {
                let p = path.as_ref().map(|p| format!(" {p}")).unwrap_or_default();
                out.push_str(&format!("agg {func}{p}\n"));
            }
            Plan::TopN {
                n, key, ascending, ..
            } => {
                let dir = if *ascending { "asc" } else { "desc" };
                out.push_str(&format!("topn {n} by {key} {dir}\n"));
            }
            Plan::Display { target, .. } => out.push_str(&format!("display -> {target}\n")),
        }
        for c in self.children() {
            c.render_into(depth + 1, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_tree().trim_end())
    }
}

/// Address of a node inside a plan: the child indices on the way down
/// from the root. Empty = the root.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct NodePath(pub Vec<usize>);

impl NodePath {
    /// The root address.
    pub fn root() -> Self {
        NodePath(Vec::new())
    }

    /// Extends the address by one child index.
    pub fn then(&self, i: usize) -> NodePath {
        let mut v = self.0.clone();
        v.push(i);
        NodePath(v)
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn is_prefix_of(&self, other: &NodePath) -> bool {
        self.0.len() <= other.0.len() && self.0[..] == other.0[..self.0.len()]
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for i in &self.0 {
            write!(f, "/{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_xml::parse;

    /// The plan of Figure 3: CD search joining favorite songs with track
    /// listings and Portland for-sale lists.
    pub(crate) fn figure3_plan() -> Plan {
        let favorites = Plan::data([
            parse("<song><title>Alabama Song</title></song>").unwrap(),
            parse("<song><title>Kashmir</title></song>").unwrap(),
        ]);
        let listings = Plan::urn("urn:CD:TrackListings");
        let forsale = Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs"));
        let inner = Plan::join(
            JoinCond::on("song/title", "track/title"),
            favorites,
            listings,
        );
        let outer = Plan::join(
            JoinCond::on("tuple/track/album", "item/title"),
            inner,
            forsale,
        );
        Plan::display("129.95.50.105:9020", outer)
    }

    #[test]
    fn figure3_structure() {
        let p = figure3_plan();
        assert_eq!(p.op_name(), "display");
        assert_eq!(p.target(), Some("129.95.50.105:9020"));
        assert_eq!(p.urns().len(), 2);
        assert_eq!(p.node_count(), 7);
        assert!(!p.is_fully_evaluated());
    }

    #[test]
    fn node_path_addressing() {
        let p = figure3_plan();
        let root = p.get(&NodePath::root()).unwrap();
        assert_eq!(root.op_name(), "display");
        let outer = p.get(&NodePath(vec![0])).unwrap();
        assert_eq!(outer.op_name(), "join");
        let favorites = p.get(&NodePath(vec![0, 0, 0])).unwrap();
        assert_eq!(favorites.op_name(), "data");
        assert!(p.get(&NodePath(vec![0, 9])).is_none());
    }

    #[test]
    fn replace_substitutes_subplan() {
        let mut p = figure3_plan();
        // Resolve the ForSale URN (under select) to a union of two URLs,
        // as in Figure 4(a).
        let path = NodePath(vec![0, 1, 0]);
        assert_eq!(p.get(&path).unwrap().op_name(), "urn");
        let union = Plan::union([
            Plan::url("http://10.1.2.3:9020/"),
            Plan::url("http://10.2.3.4:9020/"),
        ]);
        let old = p.replace(&path, union).unwrap();
        assert_eq!(old.op_name(), "urn");
        assert_eq!(p.get(&path).unwrap().op_name(), "union");
        assert_eq!(p.urns().len(), 1);
        assert_eq!(p.urls().len(), 2);
    }

    #[test]
    fn replace_bad_path_returns_new_back() {
        let mut p = Plan::data([]);
        let res = p.replace(&NodePath(vec![3]), Plan::url("http://x/"));
        assert!(res.is_err());
    }

    #[test]
    fn find_all_urns_in_preorder() {
        let p = figure3_plan();
        let urn_paths = p.find_all(&|n| matches!(n, Plan::Urn(_)));
        assert_eq!(urn_paths.len(), 2);
        assert_eq!(urn_paths[0], NodePath(vec![0, 0, 1]));
        assert_eq!(urn_paths[1], NodePath(vec![0, 1, 0]));
    }

    #[test]
    fn fully_evaluated_detection() {
        assert!(Plan::data([]).is_fully_evaluated());
        assert!(Plan::display("c:1", Plan::data([])).is_fully_evaluated());
        assert!(!Plan::display("c:1", Plan::url("http://x/")).is_fully_evaluated());
        assert!(!Plan::union([Plan::data([])]).is_fully_evaluated());
    }

    #[test]
    fn data_constructor_sets_cardinality() {
        let p = Plan::data([parse("<i/>").unwrap(), parse("<i/>").unwrap()]);
        match &p {
            Plan::Data { meta, .. } => assert_eq!(meta.cardinality(), Some(2)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn or_alt_staleness() {
        let or = Plan::Or(vec![
            OrAlt::stale(Plan::url("http://r/"), 30),
            OrAlt::new(Plan::union([
                Plan::url("http://r/"),
                Plan::url("http://s/"),
            ])),
        ]);
        match &or {
            Plan::Or(alts) => {
                assert_eq!(alts[0].staleness, Some(30));
                assert_eq!(alts[1].staleness, None);
            }
            _ => unreachable!(),
        }
        assert_eq!(or.children().len(), 2);
    }

    #[test]
    fn render_tree_readable() {
        let s = figure3_plan().render_tree();
        assert!(s.contains("display -> 129.95.50.105:9020"), "{s}");
        assert!(s.contains("select price < 10"), "{s}");
        assert!(s.contains("urn urn:ForSale:Portland-CDs"), "{s}");
        // Indentation reflects depth.
        assert!(s.lines().any(|l| l.starts_with("      ")), "{s}");
    }

    #[test]
    fn node_path_prefix() {
        let a = NodePath(vec![0, 1]);
        let b = NodePath(vec![0, 1, 2]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(NodePath::root().is_prefix_of(&a));
        assert_eq!(b.to_string(), "/0/1/2");
        assert_eq!(NodePath::root().to_string(), "/");
    }

    #[test]
    fn annotations_typed_accessors() {
        let mut m = Annotations::new();
        m.set_cardinality(42);
        m.set("distinct", "7");
        m.set("bytes", "1000");
        assert_eq!(m.cardinality(), Some(42));
        assert_eq!(m.distinct(), Some(7));
        assert_eq!(m.byte_size(), Some(1000));
        assert_eq!(m.get("histogram"), None);
    }
}
