//! Selection predicates and aggregate functions.
//!
//! Predicates appear in plan XML as compact text, e.g.
//! `price < 10 and name = 'CD'`. The left side of a comparison is an
//! XPath-subset path evaluated relative to each item; the right side is a
//! literal. Comparison is numeric when both sides parse as numbers
//! (see [`mqp_xml::xpath::Op::apply`]).

use std::fmt;
use std::str::FromStr;

use mqp_xml::xpath::{Op, Path};
use mqp_xml::Element;

/// A selection predicate over one item.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan).
    True,
    /// `path op literal`, e.g. `price < 10`.
    Cmp {
        /// Field path, relative to the item element.
        path: Path,
        /// Comparison operator.
        op: Op,
        /// Literal right-hand side.
        value: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds a comparison predicate; panics on a malformed path literal
    /// (intended for statically known paths).
    pub fn cmp(path: &str, op: Op, value: impl Into<String>) -> Predicate {
        Predicate::Cmp {
            path: Path::parse(path).expect("malformed predicate path"),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the predicate against one item. A comparison holds if
    /// *any* value selected by the path satisfies it (XPath existential
    /// semantics).
    pub fn eval(&self, item: &Element) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { path, op, value } => {
                path.any_value(item, &mut |v| op.apply(v.trim(), value))
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(item)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(item)),
            Predicate::Not(p) => !p.eval(item),
        }
    }

    /// One-time compile pass: pre-parses each comparison literal so the
    /// per-item test skips the literal re-parse [`Op::apply`] would do,
    /// and shares the (already interned-name) paths. Compiling is cheap
    /// — a handful of nodes per predicate — and the result is reused
    /// across every item of a batch, and across hops via the per-peer
    /// compile cache.
    pub fn compile(&self) -> CompiledPredicate {
        match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::Cmp { path, op, value } => CompiledPredicate::Cmp {
                path: path.clone(),
                op: *op,
                value: value.clone(),
                num: value.trim().parse::<f64>().ok(),
            },
            Predicate::And(ps) => {
                CompiledPredicate::And(ps.iter().map(Predicate::compile).collect())
            }
            Predicate::Or(ps) => CompiledPredicate::Or(ps.iter().map(Predicate::compile).collect()),
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile())),
        }
    }

    /// A crude selectivity estimate used by the cost model when no
    /// statistics are available (System R defaults: 1/3 for comparisons,
    /// 1/10 for equality).
    pub fn default_selectivity(&self) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Cmp { op, .. } => match op {
                Op::Eq => 0.1,
                Op::Ne => 0.9,
                _ => 1.0 / 3.0,
            },
            Predicate::And(ps) => ps.iter().map(|p| p.default_selectivity()).product(),
            Predicate::Or(ps) => {
                let none: f64 = ps.iter().map(|p| 1.0 - p.default_selectivity()).product();
                1.0 - none
            }
            Predicate::Not(p) => 1.0 - p.default_selectivity(),
        }
    }

    /// Parses the compact text form. Grammar:
    ///
    /// ```text
    /// pred    := orexpr
    /// orexpr  := andexpr ('or' andexpr)*
    /// andexpr := unary ('and' unary)*
    /// unary   := 'not' unary | '(' pred ')' | 'true' | cmp
    /// cmp     := PATH op literal
    /// literal := '…' | "…" | bare-number
    /// ```
    pub fn parse(input: &str) -> Result<Predicate, String> {
        let mut p = PredParser { input, pos: 0 };
        let pred = p.parse_or()?;
        p.skip_ws();
        if p.pos != input.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(pred)
    }
}

impl FromStr for Predicate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Predicate::parse(s)
    }
}

/// The compiled form of a [`Predicate`] (see [`Predicate::compile`]):
/// interned-name path matchers plus pre-parsed numeric literals. Built
/// once per plan, applied per item with no allocation — value
/// extraction goes through [`Path::any_value`], which borrows
/// single-text fields instead of collecting a `Vec<String>`.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    /// Always true (scan).
    True,
    /// `path op literal` with the literal's numeric parse memoized.
    Cmp {
        /// Field path, relative to the item element.
        path: Path,
        /// Comparison operator.
        op: Op,
        /// Literal right-hand side (string form, for the lexicographic
        /// arm).
        value: String,
        /// `value.trim().parse::<f64>()`, computed once at compile time.
        num: Option<f64>,
    },
    /// Conjunction.
    And(Vec<CompiledPredicate>),
    /// Disjunction.
    Or(Vec<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluates against one item; behaviorally identical to
    /// [`Predicate::eval`] on the source predicate (property-tested in
    /// `mqp-engine`).
    pub fn eval(&self, item: &Element) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Cmp {
                path,
                op,
                value,
                num,
            } => path.any_value(item, &mut |v| {
                let t = v.trim();
                // Numeric iff both sides parse (Op::apply's rule), with
                // the literal side already parsed.
                match (num, t.parse::<f64>()) {
                    (Some(r), Ok(l)) => op.apply_num(l, *r),
                    _ => op.apply_str(t, value),
                }
            }),
            CompiledPredicate::And(ps) => ps.iter().all(|p| p.eval(item)),
            CompiledPredicate::Or(ps) => ps.iter().any(|p| p.eval(item)),
            CompiledPredicate::Not(p) => !p.eval(item),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp { path, op, value } => {
                if value.parse::<f64>().is_ok() {
                    write!(f, "{path} {op} {value}")
                } else {
                    write!(f, "{path} {op} '{value}'")
                }
            }
            Predicate::And(ps) => write_joined(f, ps, "and"),
            Predicate::Or(ps) => write_joined(f, ps, "or"),
            Predicate::Not(p) => write!(f, "not ({p})"),
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, ps: &[Predicate], word: &str) -> fmt::Result {
    if ps.is_empty() {
        // Empty conjunction is true; empty disjunction is false — encode
        // both explicitly so round-trips are exact.
        return match word {
            "and" => write!(f, "true"),
            _ => write!(f, "not (true)"),
        };
    }
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            write!(f, " {word} ")?;
        }
        // Parenthesize nested connectives to keep precedence explicit.
        match p {
            Predicate::And(_) | Predicate::Or(_) => write!(f, "({p})")?,
            _ => write!(f, "{p}")?,
        }
    }
    Ok(())
}

struct PredParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> PredParser<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Consumes a keyword followed by a non-word boundary.
    fn eat_word(&mut self, w: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(w) {
            let after = &self.rest()[w.len()..];
            if after.is_empty() || after.starts_with(|c: char| !c.is_alphanumeric() && c != '_') {
                self.pos += w.len();
                return true;
            }
        }
        false
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Predicate, String> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_word("or") {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Predicate::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Predicate, String> {
        let mut parts = vec![self.parse_unary()?];
        while self.eat_word("and") {
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Predicate::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Predicate, String> {
        if self.eat_word("not") {
            return Ok(Predicate::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat("(") {
            let inner = self.parse_or()?;
            if !self.eat(")") {
                return Err(format!("expected ')' at byte {}", self.pos));
            }
            return Ok(inner);
        }
        if self.eat_word("true") {
            return Ok(Predicate::True);
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Predicate, String> {
        self.skip_ws();
        // Path: a run of path characters (no spaces). Comparison
        // operators end the token only outside XPath predicate brackets
        // and string literals, so `disc[@format='CD']/title = 'X'`
        // scans the whole path.
        let start = self.pos;
        let mut depth = 0usize;
        let mut quote: Option<char> = None;
        for (i, c) in self.rest().char_indices() {
            if let Some(q) = quote {
                if c == q {
                    quote = None;
                }
                continue;
            }
            match c {
                '\'' | '"' => quote = Some(c),
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '<' | '>' | '=' | '!' if depth == 0 => {
                    self.pos = start + i;
                    break;
                }
                c if c.is_alphanumeric() || "_-./*()@:<>=!".contains(c) => {}
                _ => {
                    self.pos = start + i;
                    break;
                }
            }
            self.pos = start + i + c.len_utf8();
        }
        if self.pos == start {
            return Err(format!("expected path at byte {}", self.pos));
        }
        let path_src = self.input[start..self.pos].trim();
        let path = Path::parse(path_src).map_err(|e| format!("bad path {path_src:?}: {e}"))?;
        self.skip_ws();
        let op = if self.eat("!=") {
            Op::Ne
        } else if self.eat("<=") {
            Op::Le
        } else if self.eat(">=") {
            Op::Ge
        } else if self.eat("=") {
            Op::Eq
        } else if self.eat("<") {
            Op::Lt
        } else if self.eat(">") {
            Op::Gt
        } else {
            return Err(format!("expected comparison operator at byte {}", self.pos));
        };
        self.skip_ws();
        let value = self.parse_literal()?;
        Ok(Predicate::Cmp { path, op, value })
    }

    fn parse_literal(&mut self) -> Result<String, String> {
        for q in ['\'', '"'] {
            if self.eat(&q.to_string()) {
                let start = self.pos;
                match self.rest().find(q) {
                    Some(i) => {
                        let lit = self.input[start..start + i].to_owned();
                        self.pos = start + i + 1;
                        return Ok(lit);
                    }
                    None => return Err("unterminated string literal".to_owned()),
                }
            }
        }
        let start = self.pos;
        while self
            .rest()
            .starts_with(|c: char| c.is_ascii_digit() || ".+-eE".contains(c))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected literal at byte {}", self.pos));
        }
        let lit = &self.input[start..self.pos];
        lit.parse::<f64>()
            .map_err(|_| format!("bad numeric literal {lit:?}"))?;
        Ok(lit.to_owned())
    }
}

/// Aggregate functions (the paper uses `count` for verification queries
/// in §5.1; the rest round out a usable algebra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// Name used in the XML wire format.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parses the wire-format name.
    pub fn parse(s: &str) -> Option<AggFunc> {
        Some(match s {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_xml::parse;

    fn item(xml: &str) -> Element {
        parse(xml).unwrap()
    }

    #[test]
    fn cmp_numeric() {
        let p = Predicate::parse("price < 10").unwrap();
        assert!(p.eval(&item("<item><price>8.5</price></item>")));
        assert!(!p.eval(&item("<item><price>12</price></item>")));
        assert!(!p.eval(&item("<item><name>no price</name></item>")));
    }

    #[test]
    fn cmp_string() {
        let p = Predicate::parse("name = 'CD'").unwrap();
        assert!(p.eval(&item("<item><name>CD</name></item>")));
        assert!(!p.eval(&item("<item><name>LP</name></item>")));
    }

    #[test]
    fn connectives() {
        let p = Predicate::parse("price < 10 and not name = 'junk' or true").unwrap();
        // 'or true' makes everything pass.
        assert!(p.eval(&item("<item><price>100</price><name>junk</name></item>")));
        let q = Predicate::parse("(price < 10) and (name = 'CD' or name = 'LP')").unwrap();
        assert!(q.eval(&item("<item><price>5</price><name>LP</name></item>")));
        assert!(!q.eval(&item("<item><price>5</price><name>DVD</name></item>")));
    }

    #[test]
    fn nested_path_in_cmp() {
        let p = Predicate::parse("seller/location = 'Portland'").unwrap();
        assert!(p.eval(&item(
            "<item><seller><location>Portland</location></seller></item>"
        )));
    }

    #[test]
    fn existential_semantics_over_multiple_matches() {
        let p = Predicate::parse("tag = 'blue'").unwrap();
        assert!(p.eval(&item("<i><tag>red</tag><tag>blue</tag></i>")));
    }

    #[test]
    fn attribute_path_cmp() {
        let p = Predicate::parse("disc[@format='CD']/title = 'X'").unwrap();
        assert!(p.eval(&item("<i><disc format=\"CD\"><title>X</title></disc></i>")));
        assert!(!p.eval(&item("<i><disc format=\"LP\"><title>X</title></disc></i>")));
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "true",
            "price < 10",
            "name = 'CD'",
            "price < 10 and name != 'junk'",
            "(a = 1 or b = 2) and not c >= 3",
            "x/y/z <= 4.5",
        ] {
            let p = Predicate::parse(src).unwrap();
            let shown = p.to_string();
            let back = Predicate::parse(&shown).unwrap_or_else(|e| panic!("{src} -> {shown}: {e}"));
            assert_eq!(back, p, "{src} -> {shown}");
        }
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let p = Predicate::parse("a = 1 or b = 2 and c = 3").unwrap();
        match p {
            Predicate::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Predicate::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn bad_predicates_rejected() {
        for bad in [
            "",
            "price <",
            "< 10",
            "price ~ 10",
            "(a = 1",
            "a = 1 junk",
            "a = zz",
        ] {
            assert!(Predicate::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn selectivity_sane() {
        let eq = Predicate::parse("a = 1").unwrap();
        let rng = Predicate::parse("a < 1").unwrap();
        assert!(eq.default_selectivity() < rng.default_selectivity());
        let both = Predicate::And(vec![eq.clone(), rng.clone()]);
        assert!(both.default_selectivity() < eq.default_selectivity());
        let either = Predicate::Or(vec![eq.clone(), rng.clone()]);
        assert!(either.default_selectivity() > rng.default_selectivity());
        assert!((Predicate::True.default_selectivity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn agg_func_names_roundtrip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }
}
