//! Property tests: the plan ↔ XML codec round-trips for arbitrary
//! generated plans, and structural utilities respect their contracts.

use proptest::prelude::*;

use mqp_xml::Element;

use crate::codec::{from_wire, to_wire, wire_size};
use crate::plan::{JoinCond, NodePath, OrAlt, Plan, UrlRef};
use crate::predicate::{AggFunc, Predicate};

fn arb_item() -> impl Strategy<Value = Element> {
    // Simple data-bundle items: <item><f0>v</f0>…</item>
    proptest::collection::vec(("[a-z]{1,6}", "[ -~]{1,10}"), 0..4).prop_map(|fields| {
        let mut e = Element::new("item");
        for (n, v) in fields {
            e.push_child(mqp_xml::Node::Element(Element::new(n).text(v)));
        }
        e
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        ("[a-z]{1,5}", 0u32..100).prop_map(|(f, n)| Predicate::cmp(
            &f,
            mqp_xml::xpath::Op::Lt,
            n.to_string()
        )),
        ("[a-z]{1,5}", "[a-zA-Z ]{1,6}").prop_map(|(f, v)| Predicate::cmp(
            &f,
            mqp_xml::xpath::Op::Eq,
            v.trim().to_owned()
        )),
    ];
    // And/Or with 2+ children: a singleton `And([p])` displays as `p`
    // (semantically equal, structurally different), which would be a
    // false round-trip failure.
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let leaf = prop_oneof![
        proptest::collection::vec(arb_item(), 0..3).prop_map(Plan::data),
        "[a-z]{1,8}".prop_map(|h| Plan::url(format!("http://{h}:9020/"))),
        ("[A-Za-z]{1,6}", "[A-Za-z0-9-]{1,8}").prop_map(|(nid, nss)| Plan::Urn(
            crate::plan::UrnRef::new(mqp_namespace::Urn::named(nid, nss))
        )),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (arb_pred(), inner.clone()).prop_map(|(p, i)| Plan::Select {
                pred: p,
                input: Box::new(i)
            }),
            (proptest::collection::vec("[a-z]{1,5}", 1..3), inner.clone())
                .prop_map(|(f, i)| Plan::project(f, i)),
            ("[a-z]{1,4}", "[a-z]{1,4}", inner.clone(), inner.clone())
                .prop_map(|(l, r, a, b)| Plan::join(JoinCond::on(&l, &r), a, b)),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Plan::union),
            proptest::collection::vec((inner.clone(), proptest::option::of(0u32..120)), 1..3)
                .prop_map(|alts| Plan::Or(
                    alts.into_iter()
                        .map(|(p, s)| OrAlt {
                            plan: p,
                            staleness: s
                        })
                        .collect()
                )),
            (
                proptest::sample::select(vec![
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Min,
                    AggFunc::Max,
                    AggFunc::Avg
                ]),
                inner.clone()
            )
                .prop_map(|(f, i)| Plan::aggregate(f, Some("price"), i)),
            (1usize..20, any::<bool>(), inner.clone())
                .prop_map(|(n, asc, i)| Plan::top_n(n, "price", asc, i)),
            ("[a-z0-9.:]{1,12}", inner.clone()).prop_map(|(t, i)| Plan::display(t, i)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn codec_roundtrip(plan in arb_plan()) {
        let wire = to_wire(&plan);
        let back = from_wire(&wire).expect("wire must reparse");
        prop_assert_eq!(back, plan);
    }

    /// The direct serializer ([`crate::codec::write_plan`]) is
    /// byte-identical to serializing the intermediate Element tree —
    /// the invariant that keeps golden wire traces unchanged while the
    /// hot path skips the tree entirely.
    #[test]
    fn direct_serializer_matches_tree_serializer(plan in arb_plan()) {
        let direct = to_wire(&plan);
        let via_tree = mqp_xml::serialize(&crate::codec::plan_to_xml(&plan));
        prop_assert_eq!(direct, via_tree);
    }

    #[test]
    fn wire_size_exact(plan in arb_plan()) {
        prop_assert_eq!(wire_size(&plan), to_wire(&plan).len());
    }

    #[test]
    fn node_count_consistent_with_find_all(plan in arb_plan()) {
        let all = plan.find_all(&|_| true);
        prop_assert_eq!(all.len(), plan.node_count());
        // Every reported path must resolve.
        for p in &all {
            prop_assert!(plan.get(p).is_some());
        }
    }

    #[test]
    fn replace_then_get_returns_new(mut plan in arb_plan()) {
        let paths = plan.find_all(&|_| true);
        let target = paths.last().unwrap().clone(); // deepest-right node
        let marker = Plan::Url(UrlRef::new("http://replaced/"));
        let _old = plan.replace(&target, marker.clone()).unwrap();
        prop_assert_eq!(plan.get(&target).unwrap(), &marker);
    }

    #[test]
    fn pred_display_roundtrip(p in arb_pred()) {
        let shown = p.to_string();
        let back = Predicate::parse(&shown)
            .unwrap_or_else(|e| panic!("{shown}: {e}"));
        prop_assert_eq!(back, p);
    }

    #[test]
    fn root_path_is_identity(plan in arb_plan()) {
        prop_assert_eq!(plan.get(&NodePath::root()), Some(&plan));
    }
}
