//! The parseable plan pretty-printer: the inverse of `mqp-lang`'s query
//! parser, and the human-readable plan form used in error messages and
//! golden traces.
//!
//! [`render`] emits pipeline syntax: a source head (`urn`/`url`/`data`,
//! or an n-ary `join`/`union`/`or` over sub-queries) followed by one
//! `| <stage>` line per enclosing unary operator, innermost first:
//!
//! ```text
//! union (
//!   url "mqp://seller-0/",
//!   url "mqp://seller-1/"
//! )
//! | select "price < 10"
//! | topn 3 by "price" asc
//! ```
//!
//! The output is deterministic (annotations render in `BTreeMap` order)
//! and `mqp_lang::parse_query(render(plan))` reconstructs the plan
//! exactly — property-tested from the lang side. [`Plan::render`] is
//! the method form.
//!
//! Unlike [`Plan::render_tree`] (an indented operator log), this form
//! is concrete syntax: strings are quoted and escaped, predicate /
//! path / URN text round-trips through their own `Display` forms, and
//! data leaves embed their serialized items verbatim.

use std::fmt::Write as _;

use mqp_xml::serialize_into;

use crate::plan::{Annotations, Plan};

/// Renders `plan` as parseable pipeline text. No trailing newline.
pub fn render(plan: &Plan) -> String {
    let mut out = String::new();
    render_into(plan, 0, &mut out);
    out
}

impl Plan {
    /// Pipeline-syntax form of this plan; `mqp-lang` parses it back to
    /// an equal plan. See the [`render`](crate::render) module docs.
    pub fn render(&self) -> String {
        render(self)
    }
}

/// Escapes a string literal body: backslash, quote, and the three
/// whitespace controls. Everything else is verbatim.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn quoted(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Annotation keys render bare when they look like identifiers
/// (`[A-Za-z_][A-Za-z0-9_.-]*`); anything else is quoted. The parser
/// accepts both forms for any key.
fn ident_shaped(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

fn render_meta(meta: &Annotations, out: &mut String) {
    if meta.is_empty() {
        return;
    }
    out.push_str(" @(");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if ident_shaped(k) {
            out.push_str(k);
        } else {
            out.push_str(&quoted(k));
        }
        out.push('=');
        out.push_str(&quoted(v));
    }
    out.push(')');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Renders one sub-query at `level` (each level is two spaces). The
/// first line is already indented; embedded newlines re-indent.
fn render_into(plan: &Plan, level: usize, out: &mut String) {
    match plan {
        Plan::Data { items, meta } => {
            indent(out, level);
            let mut text = String::new();
            for item in items {
                serialize_into(item, &mut text);
            }
            out.push_str("data ");
            out.push_str(&quoted(&text));
            render_meta(meta, out);
        }
        Plan::Url(u) => {
            indent(out, level);
            out.push_str("url ");
            out.push_str(&quoted(&u.href));
            if let Some(c) = &u.collection {
                out.push_str(" collection ");
                out.push_str(&quoted(&c.to_string()));
            }
            render_meta(&u.meta, out);
        }
        Plan::Urn(u) => {
            indent(out, level);
            out.push_str("urn ");
            out.push_str(&quoted(&u.urn.to_string()));
            render_meta(&u.meta, out);
        }
        Plan::Union(subs) => {
            indent(out, level);
            out.push_str("union (\n");
            for (i, sub) in subs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                render_into(sub, level + 1, out);
            }
            out.push('\n');
            indent(out, level);
            out.push(')');
        }
        Plan::Or(alts) => {
            indent(out, level);
            out.push_str("or (\n");
            for (i, alt) in alts.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                render_into(&alt.plan, level + 1, out);
                if let Some(s) = alt.staleness {
                    let _ = write!(out, " stale {s}");
                }
            }
            out.push('\n');
            indent(out, level);
            out.push(')');
        }
        Plan::Join { on, left, right } => {
            indent(out, level);
            out.push_str("join (\n");
            render_into(left, level + 1, out);
            out.push_str(",\n");
            render_into(right, level + 1, out);
            out.push('\n');
            indent(out, level);
            let _ = write!(
                out,
                ") on {} = {}",
                quoted(&on.left_path.to_string()),
                quoted(&on.right_path.to_string())
            );
        }
        Plan::Select { pred, input } => {
            render_into(input, level, out);
            out.push('\n');
            indent(out, level);
            out.push_str("| select ");
            out.push_str(&quoted(&pred.to_string()));
        }
        Plan::Project { fields, input } => {
            render_into(input, level, out);
            out.push('\n');
            indent(out, level);
            out.push_str("| project");
            for f in fields {
                out.push(' ');
                out.push_str(&quoted(f));
            }
        }
        Plan::Aggregate { func, path, input } => {
            render_into(input, level, out);
            out.push('\n');
            indent(out, level);
            let _ = write!(out, "| agg {}", func.name());
            if let Some(p) = path {
                out.push_str(" of ");
                out.push_str(&quoted(&p.to_string()));
            }
        }
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => {
            render_into(input, level, out);
            out.push('\n');
            indent(out, level);
            let _ = write!(
                out,
                "| topn {n} by {} {}",
                quoted(&key.to_string()),
                if *ascending { "asc" } else { "desc" }
            );
        }
        Plan::Display { target, input } => {
            render_into(input, level, out);
            out.push('\n');
            indent(out, level);
            out.push_str("| display to ");
            out.push_str(&quoted(target));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinCond, OrAlt};

    #[test]
    fn pipeline_layout_reads_top_down() {
        let plan = Plan::top_n(
            3,
            "price",
            true,
            Plan::select(
                "price < 10",
                Plan::union([Plan::url("mqp://a/"), Plan::url("mqp://b/")]),
            ),
        );
        assert_eq!(
            plan.render(),
            "union (\n  url \"mqp://a/\",\n  url \"mqp://b/\"\n)\n\
             | select \"price < 10\"\n\
             | topn 3 by \"price\" asc"
        );
    }

    #[test]
    fn join_or_and_annotations_render() {
        let mut url = crate::plan::UrlRef::new("mqp://s/");
        url.meta.set("area", "x");
        url.meta.set("weird key", "q\"v");
        let plan = Plan::Join {
            on: JoinCond::on("album", "title"),
            left: Box::new(Plan::Or(vec![
                OrAlt::new(Plan::urn("urn:ForSale:pdx")),
                OrAlt::stale(Plan::Url(url), 30),
            ])),
            right: Box::new(Plan::url("mqp://t/")),
        };
        assert_eq!(
            plan.render(),
            "join (\n  or (\n    urn \"urn:ForSale:pdx\",\n    \
             url \"mqp://s/\" @(area=\"x\", \"weird key\"=\"q\\\"v\") stale 30\n  ),\n  \
             url \"mqp://t/\"\n) on \"album\" = \"title\""
        );
    }

    #[test]
    fn escapes_cover_quotes_and_controls() {
        assert_eq!(escape("a\\b\"c\nd\re\tf"), "a\\\\b\\\"c\\nd\\re\\tf");
    }

    #[test]
    fn data_leaf_embeds_serialized_items() {
        let plan = Plan::data(
            ["<item><t>A</t></item>", "<item><t>B</t></item>"].map(|s| mqp_xml::parse(s).unwrap()),
        );
        assert_eq!(
            plan.render(),
            "data \"<item><t>A</t></item><item><t>B</t></item>\" @(cardinality=\"2\")"
        );
    }
}
