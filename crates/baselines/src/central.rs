//! The "Napster" baseline: a centralized index server (paper §1).
//!
//! All publishes and queries flow through node 0. Strengths: 2-message
//! queries, perfect recall. Weakness the experiments surface: the index
//! receives *every* message — `NetStats::receive_imbalance` grows
//! linearly with population (the "bottlenecks at the centralized index"
//! of §1), and a single failure disables search entirely.

use std::collections::HashMap;

use mqp_net::{FaultPlan, NodeId, SimNet, Topology};

use crate::common::DiscoveryResult;

/// Messages of the central-index protocol.
#[derive(Debug, Clone)]
enum Msg {
    Publish { key: String },
    Query { key: String },
    Reply { holders: Vec<NodeId> },
}

fn msg_bytes(m: &Msg) -> usize {
    match m {
        Msg::Publish { key } => key.len() + 8,
        Msg::Query { key } => key.len() + 8,
        Msg::Reply { holders } => holders.len() * 8 + 8,
    }
}

/// A central-index network. Node 0 is the index; nodes `1..n` are
/// ordinary peers.
pub struct CentralIndex {
    net: SimNet<Msg>,
    index: HashMap<String, Vec<NodeId>>,
    truth: HashMap<String, Vec<NodeId>>,
}

/// The index node's id.
pub const INDEX_NODE: NodeId = 0;

impl CentralIndex {
    /// Builds a central-index deployment over the topology.
    pub fn new(topology: Topology) -> Self {
        CentralIndex {
            net: SimNet::new(topology),
            index: HashMap::new(),
            truth: HashMap::new(),
        }
    }

    /// Installs a fault plan on the underlying network. A lost publish
    /// silently un-indexes the key; a lost query or reply returns an
    /// empty answer — the client has no one else to ask (§1's single
    /// point of failure, now also a single point of loss).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.net.set_fault_plan(plan);
        self
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &mqp_net::NetStats {
        self.net.stats()
    }

    /// Fails the index node (the single point of failure).
    pub fn fail_index(&mut self) {
        self.net.fail(INDEX_NODE);
    }

    /// Publishes `key` from `node`: one message to the index.
    pub fn publish(&mut self, node: NodeId, key: &str) {
        self.truth.entry(key.to_owned()).or_default().push(node);
        let m = Msg::Publish {
            key: key.to_owned(),
        };
        let b = msg_bytes(&m);
        self.net.send(node, INDEX_NODE, b, m);
        self.drain_publishes();
    }

    fn drain_publishes(&mut self) {
        while let Some(d) = self.net.step() {
            if let Msg::Publish { key } = d.payload {
                self.index.entry(key).or_default().push(d.from);
            }
        }
    }

    /// True holders of a key (ground truth for recall).
    pub fn truth(&self, key: &str) -> Vec<NodeId> {
        self.truth.get(key).cloned().unwrap_or_default()
    }

    /// Runs one query from `client`.
    pub fn query(&mut self, client: NodeId, key: &str) -> DiscoveryResult {
        let before = self.net.stats().clone();
        let start = self.net.now();
        let q = Msg::Query {
            key: key.to_owned(),
        };
        let b = msg_bytes(&q);
        self.net.send(client, INDEX_NODE, b, q);
        let mut holders = Vec::new();
        let mut last = start;
        while let Some(d) = self.net.step() {
            last = d.at;
            match d.payload {
                Msg::Query { key } => {
                    let hs = self.index.get(&key).cloned().unwrap_or_default();
                    let reply = Msg::Reply { holders: hs };
                    let rb = msg_bytes(&reply);
                    self.net.send(INDEX_NODE, d.from, rb, reply);
                }
                Msg::Reply { holders: hs } => holders = hs,
                Msg::Publish { key } => {
                    self.index.entry(key).or_default().push(d.from);
                }
            }
        }
        let after = self.net.stats();
        DiscoveryResult {
            holders,
            messages: after.messages_sent - before.messages_sent,
            bytes: after.bytes_sent - before.bytes_sent,
            latency_us: last.saturating_sub(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> CentralIndex {
        let mut c = CentralIndex::new(Topology::uniform(n, 10_000));
        c.publish(1, "cds");
        c.publish(2, "cds");
        c.publish(3, "chairs");
        c
    }

    #[test]
    fn query_finds_all_holders_in_two_messages() {
        let mut c = world(5);
        let r = c.query(4, "cds");
        assert_eq!(r.holders, vec![1, 2]);
        assert_eq!(r.messages, 2);
        assert!((r.recall(&c.truth("cds")) - 1.0).abs() < 1e-9);
        // Round trip: 2 × 10ms.
        assert_eq!(r.latency_us, 20_000);
    }

    #[test]
    fn missing_key_returns_empty() {
        let mut c = world(5);
        let r = c.query(4, "boats");
        assert!(r.holders.is_empty());
        assert_eq!(r.messages, 2);
    }

    #[test]
    fn index_failure_kills_search() {
        let mut c = world(5);
        c.fail_index();
        let r = c.query(4, "cds");
        assert!(r.holders.is_empty());
    }

    #[test]
    fn index_is_the_hotspot() {
        let mut c = world(20);
        for client in 4..20 {
            c.query(client, "cds");
        }
        let (node, _) = c.stats().hottest_receiver().unwrap();
        assert_eq!(node, INDEX_NODE);
        assert!(c.stats().receive_imbalance() > 2.0);
    }
}
