//! A Chord-style DHT baseline (paper §6: "Systems such as CAN, Chord,
//! Pastry, and Tapestry offer a scalable hashtable interface with
//! extremely fast lookups (usually logarithmic in the number of
//! hosts)").
//!
//! We model the *stabilized* state: node identifiers are hashes of the
//! node index, finger tables are computed from the full membership (as
//! stabilization would converge to), and lookups route greedily through
//! fingers — the canonical `O(log n)` hop bound, which the tests assert.
//! Key→holder mappings are stored at the key's successor.

use std::collections::HashMap;

use mqp_net::{FaultPlan, NodeId, SimNet, Topology};

use crate::common::{fnv1a, DiscoveryResult};

const M: u32 = 64; // identifier bits

/// Lost lookup hops are retransmitted this many times before the whole
/// lookup fails — the minimal recovery a real Chord node performs.
const MAX_RETRANSMITS: u32 = 3;

/// Chord protocol messages.
#[derive(Debug, Clone)]
enum Msg {
    /// One routing hop (24 bytes on the wire: key hash + origin).
    Lookup,
    Store {
        key: String,
        holder: NodeId,
    },
    Reply {
        holders: Vec<NodeId>,
    },
}

fn msg_bytes(m: &Msg) -> usize {
    match m {
        Msg::Lookup => 24,
        Msg::Store { key, .. } => key.len() + 16,
        Msg::Reply { holders } => holders.len() * 8 + 8,
    }
}

/// A stabilized Chord ring over the topology's nodes.
pub struct Chord {
    net: SimNet<Msg>,
    /// `ring[i]` = (id-space position, node); sorted by position.
    ring: Vec<(u64, NodeId)>,
    /// Finger tables, deduplicated: the distinct successors of
    /// `pos(v) + 2^k` for k in 0..M, first occurrence first (so
    /// `fingers[v][0]` is still the immediate successor). Nearby
    /// targets share a successor, so ~log n entries survive instead of
    /// M=64 — the difference between 512 B and ~140 B per node at 100k
    /// peers. Routing is unchanged: `closest_preceding` scans the whole
    /// table and picks the best candidate, so dropping duplicates
    /// cannot change its answer.
    fingers: Vec<Vec<NodeId>>,
    /// Key storage at each node: key → holders.
    storage: Vec<HashMap<String, Vec<NodeId>>>,
    truth: HashMap<String, Vec<NodeId>>,
    positions: Vec<u64>,
}

impl Chord {
    /// Builds the ring.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        assert!(n > 0, "chord needs at least one node");
        let positions: Vec<u64> = (0..n).map(|i| fnv1a(&format!("node-{i}"))).collect();
        let mut ring: Vec<(u64, NodeId)> =
            positions.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        ring.sort_unstable();
        let fingers = (0..n)
            .map(|v| {
                let mut table: Vec<NodeId> = Vec::new();
                for k in 0..M {
                    let target = positions[v].wrapping_add(1u64.wrapping_shl(k));
                    let s = successor_of(&ring, target);
                    if !table.contains(&s) {
                        table.push(s);
                    }
                }
                table.shrink_to_fit();
                table
            })
            .collect();
        Chord {
            net: SimNet::new(topology),
            ring,
            fingers,
            storage: vec![HashMap::new(); n],
            truth: HashMap::new(),
            positions,
        }
    }

    /// Installs a fault plan on the underlying network, so resilience
    /// comparisons against the MQP harness run under identical
    /// adversarial schedules. Lookup hops retransmit on loss (up to
    /// [`MAX_RETRANSMITS`], counted in `stats().retries`); a hop whose
    /// retransmits are exhausted fails the lookup.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.net.set_fault_plan(plan);
        self
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &mqp_net::NetStats {
        self.net.stats()
    }

    /// The node responsible for a key.
    pub fn successor(&self, key: &str) -> NodeId {
        successor_of(&self.ring, fnv1a(key))
    }

    /// Publishes `key` at `holder`: routes a store to the successor,
    /// counting the messages it costs. Under faults the store can be
    /// lost (the key is simply not indexed — a recall hit the churn
    /// experiment measures).
    pub fn publish(&mut self, holder: NodeId, key: &str) -> u64 {
        self.truth.entry(key.to_owned()).or_default().push(holder);
        let before = self.net.stats().messages_sent;
        let key_hash = fnv1a(key);
        // Route like a lookup, then store at the responsible node.
        if let Some(responsible) = self.route_sync(holder, key_hash) {
            let m = Msg::Store {
                key: key.to_owned(),
                holder,
            };
            let b = msg_bytes(&m);
            self.net.send(holder, responsible, b, m);
            while let Some(d) = self.net.step() {
                if let Msg::Store { key, holder } = d.payload {
                    let holders = self.storage[d.to].entry(key).or_default();
                    if !holders.contains(&holder) {
                        holders.push(holder); // duplicate deliveries are idempotent
                    }
                }
            }
        }
        self.net.stats().messages_sent - before
    }

    /// Greedy finger routing, charging one message per hop and
    /// retransmitting lost hops. Returns the responsible node, or
    /// `None` when a hop's retransmit budget is exhausted (dead or
    /// unreachable finger). (Synchronous helper used by publish/query.)
    fn route_sync(&mut self, from: NodeId, key_hash: u64) -> Option<NodeId> {
        let mut cur = from;
        let mut hops = 0;
        while !self.is_responsible(cur, key_hash) {
            let next = self.closest_preceding(cur, key_hash);
            if next == cur {
                break;
            }
            if !self.hop(cur, next) {
                return None;
            }
            cur = next;
            hops += 1;
            assert!(hops <= self.ring.len(), "routing loop");
        }
        Some(cur)
    }

    /// One lookup hop `from → to`, retransmitting until delivered or
    /// the budget runs out. Returns whether the hop got through.
    fn hop(&mut self, from: NodeId, to: NodeId) -> bool {
        let mut attempt = 0;
        loop {
            let m = Msg::Lookup;
            let b = msg_bytes(&m);
            self.net.send(from, to, b, m);
            // Drain the hop (delivery keeps the clock moving).
            let mut delivered = false;
            while let Some(d) = self.net.step() {
                if matches!(d.payload, Msg::Lookup) && d.to == to {
                    delivered = true;
                    break;
                }
            }
            if delivered {
                return true;
            }
            if attempt == MAX_RETRANSMITS {
                return false;
            }
            attempt += 1;
            self.net.stats_mut().retries += 1;
        }
    }

    fn is_responsible(&self, node: NodeId, key_hash: u64) -> bool {
        successor_of(&self.ring, key_hash) == node
    }

    /// The finger of `node` closest to (but not past) `key_hash`, in
    /// ring order; falls back to the immediate successor finger.
    fn closest_preceding(&self, node: NodeId, key_hash: u64) -> NodeId {
        let pos = self.positions[node];
        let mut best = self.fingers[node][0];
        let mut best_dist = u64::MAX;
        for &f in &self.fingers[node] {
            if f == node {
                continue;
            }
            let fpos = self.positions[f];
            // Distance remaining from finger to key, going clockwise.
            let dist = key_hash.wrapping_sub(fpos);
            // Only fingers that don't overshoot (clockwise between node
            // and key).
            let from_node = fpos.wrapping_sub(pos);
            let to_key = key_hash.wrapping_sub(pos);
            if from_node != 0 && from_node <= to_key && dist < best_dist {
                best = f;
                best_dist = dist;
            }
        }
        best
    }

    /// True holders of a key.
    pub fn truth(&self, key: &str) -> Vec<NodeId> {
        self.truth.get(key).cloned().unwrap_or_default()
    }

    /// Looks a key up from `client`. The client only learns holders it
    /// actually receives: a failed lookup or a lost reply yields an
    /// empty answer.
    pub fn query(&mut self, client: NodeId, key: &str) -> DiscoveryResult {
        let before = self.net.stats().clone();
        let start = self.net.now();
        let key_hash = fnv1a(key);
        let mut holders: Vec<NodeId> = Vec::new();
        let mut last = start;
        if let Some(responsible) = self.route_sync(client, key_hash) {
            let known = self.storage[responsible]
                .get(key)
                .cloned()
                .unwrap_or_default();
            // Reply hop back to the client; it counts only if delivered.
            let reply = Msg::Reply {
                holders: known.clone(),
            };
            let b = msg_bytes(&reply);
            self.net.send(responsible, client, b, reply);
            while let Some(d) = self.net.step() {
                last = d.at;
                if matches!(d.payload, Msg::Reply { .. }) && d.to == client {
                    holders = known.clone();
                }
            }
        }
        holders.sort_unstable();
        holders.dedup();
        let after = self.net.stats();
        DiscoveryResult {
            holders,
            messages: after.messages_sent - before.messages_sent,
            bytes: after.bytes_sent - before.bytes_sent,
            latency_us: last.saturating_sub(start),
        }
    }
}

/// The first ring node at or after `target` (clockwise, wrapping).
fn successor_of(ring: &[(u64, NodeId)], target: u64) -> NodeId {
    match ring.binary_search_by(|(p, _)| p.cmp(&target)) {
        Ok(i) => ring[i].1,
        Err(i) if i < ring.len() => ring[i].1,
        Err(_) => ring[0].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> Chord {
        Chord::new(Topology::uniform(n, 5_000))
    }

    #[test]
    fn successor_is_consistent() {
        let c = world(32);
        for key in ["cds", "chairs", "golf"] {
            let s1 = c.successor(key);
            let s2 = c.successor(key);
            assert_eq!(s1, s2);
            assert!(s1 < 32);
        }
    }

    #[test]
    fn publish_then_query_finds_holders() {
        let mut c = world(16);
        c.publish(3, "cds");
        c.publish(7, "cds");
        let r = c.query(11, "cds");
        let mut h = r.holders.clone();
        h.sort_unstable();
        assert_eq!(h, vec![3, 7]);
        assert!((r.recall(&c.truth("cds")) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_key_empty() {
        let mut c = world(8);
        let r = c.query(0, "nothing");
        assert!(r.holders.is_empty());
    }

    #[test]
    fn lookups_are_logarithmic() {
        // Hop count (messages − 1 reply) stays within 2·log2(n) + 4.
        for &n in &[16usize, 64, 256] {
            let mut c = world(n);
            c.publish(1, "k");
            let mut worst = 0u64;
            for client in (0..n).step_by(n / 8) {
                let r = c.query(client, "k");
                worst = worst.max(r.messages.saturating_sub(1));
            }
            let bound = 2 * (n as f64).log2().ceil() as u64 + 4;
            assert!(worst <= bound, "n={n}: {worst} hops > bound {bound}");
        }
    }

    #[test]
    fn loss_triggers_retransmits_and_can_fail_lookups() {
        let run = || {
            let mut c = Chord::new(Topology::uniform(64, 5_000))
                .with_faults(FaultPlan::new(4).with_loss(0.4));
            for n in [3usize, 9, 27] {
                c.publish(n, "k");
            }
            let mut found = 0;
            for client in 0..16 {
                let r = c.query(client, "k");
                if !r.holders.is_empty() {
                    found += 1;
                }
            }
            (found, c.stats().retries, c.stats().messages_lost)
        };
        let (found, retries, lost) = run();
        assert!(lost > 0, "40% loss must lose something");
        assert!(retries > 0, "lost hops must retransmit");
        assert!(found > 0, "retransmits must save some lookups");
        assert_eq!(run(), (found, retries, lost), "deterministic under faults");
    }

    #[test]
    fn exact_match_only_no_ranges() {
        // The paper's DHT critique: "CDs" and "cds" are different keys.
        let mut c = world(16);
        c.publish(3, "CDs");
        let r = c.query(0, "cds");
        assert!(r.holders.is_empty());
    }
}
