//! Shared pieces for the baseline architectures.

use mqp_net::NodeId;

/// Result of one discovery query against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryResult {
    /// Servers reported to hold the key.
    pub holders: Vec<NodeId>,
    /// Messages the query cost (publishes excluded).
    pub messages: u64,
    /// Bytes the query cost.
    pub bytes: u64,
    /// Simulated time from issue to last answer (µs).
    pub latency_us: u64,
}

impl DiscoveryResult {
    /// Recall against the true holder set.
    pub fn recall(&self, truth: &[NodeId]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let hit = truth.iter().filter(|t| self.holders.contains(t)).count();
        hit as f64 / truth.len() as f64
    }
}

/// FNV-1a 64-bit hash — deterministic key placement for the DHT without
/// pulling in a hashing crate.
pub fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_math() {
        let r = DiscoveryResult {
            holders: vec![1, 2],
            messages: 0,
            bytes: 0,
            latency_us: 0,
        };
        assert!((r.recall(&[1, 2, 3, 4]) - 0.5).abs() < 1e-9);
        assert_eq!(r.recall(&[]), 1.0);
        assert_eq!(r.recall(&[1]), 1.0);
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
        assert_ne!(fnv1a(""), fnv1a("a"));
    }
}
