//! The "Gnutella" baseline: query flooding with a horizon (paper §1:
//! "queries are broadcast to a node's neighbors (which then broadcast
//! them to all of their neighbors, and so on, up to a fixed number of
//! steps, called the horizon)").

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use mqp_net::{FaultPlan, NodeId, SimNet, Topology};

use crate::common::DiscoveryResult;

/// Flooding protocol messages.
#[derive(Debug, Clone)]
enum Msg {
    Query {
        key: String,
        ttl: u32,
        origin: NodeId,
    },
    Hit {
        holder: NodeId,
    },
}

fn msg_bytes(m: &Msg) -> usize {
    match m {
        Msg::Query { key, .. } => key.len() + 16,
        Msg::Hit { .. } => 16,
    }
}

/// A flooding network: a random `degree`-regular-ish overlay (seeded,
/// deterministic); each node stores its own keys; queries flood up to
/// `horizon` hops and holders answer the origin directly.
pub struct Flooding {
    net: SimNet<Msg>,
    neighbors: Vec<Vec<NodeId>>,
    keys: HashMap<NodeId, HashSet<String>>,
    truth: HashMap<String, Vec<NodeId>>,
}

impl Flooding {
    /// Builds the overlay: each node links to `degree` random others
    /// (undirected union), seeded for reproducibility.
    pub fn new(topology: Topology, degree: usize, seed: u64) -> Self {
        let n = topology.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut neighbors: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
        let all: Vec<NodeId> = (0..n).collect();
        for v in 0..n {
            let mut others: Vec<NodeId> = all.iter().copied().filter(|&u| u != v).collect();
            others.shuffle(&mut rng);
            for &u in others.iter().take(degree) {
                neighbors[v].insert(u);
                neighbors[u].insert(v);
            }
        }
        let neighbors = neighbors
            .into_iter()
            .map(|s| {
                let mut v: Vec<NodeId> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        Flooding {
            net: SimNet::new(topology),
            neighbors,
            keys: HashMap::new(),
            truth: HashMap::new(),
        }
    }

    /// Builds the overlay by sampling instead of shuffling: each node
    /// draws `degree` distinct random partners by rejection, O(n·degree)
    /// total, where [`Flooding::new`]'s per-node shuffle is O(n²). The
    /// 100k–1M-node scale sweeps use this; the resulting overlay is a
    /// different (but equally valid and still seeded-deterministic)
    /// random graph, so existing experiments keep `new` and their
    /// recorded traces.
    pub fn sparse(topology: Topology, degree: usize, seed: u64) -> Self {
        let n = topology.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            let want = degree.min(n.saturating_sub(1));
            let mut picked = 0;
            // Rejection sampling with a guard: collisions are rare while
            // degree ≪ n, and the guard keeps tiny worlds terminating.
            let mut budget = 16 * degree + 64;
            while picked < want && budget > 0 {
                budget -= 1;
                let u = rng.gen_range(0..n);
                if u == v || neighbors[v].contains(&u) {
                    continue;
                }
                neighbors[v].push(u);
                neighbors[u].push(v);
                picked += 1;
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup();
        }
        Flooding {
            net: SimNet::new(topology),
            neighbors,
            keys: HashMap::new(),
            truth: HashMap::new(),
        }
    }

    /// Installs a fault plan (loss/jitter/duplication/churn) on the
    /// underlying network, so resilience comparisons against the MQP
    /// harness run under identical adversarial schedules.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.net.set_fault_plan(plan);
        self
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &mqp_net::NetStats {
        self.net.stats()
    }

    /// The overlay neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node]
    }

    /// Publishes a key at a node (local only — pure P2P keeps no
    /// remote index).
    pub fn publish(&mut self, node: NodeId, key: &str) {
        self.keys.entry(node).or_default().insert(key.to_owned());
        self.truth.entry(key.to_owned()).or_default().push(node);
    }

    /// True holders of a key.
    pub fn truth(&self, key: &str) -> Vec<NodeId> {
        self.truth.get(key).cloned().unwrap_or_default()
    }

    /// Floods a query from `client` with the given horizon (TTL).
    pub fn query(&mut self, client: NodeId, key: &str, horizon: u32) -> DiscoveryResult {
        let before = self.net.stats().clone();
        let start = self.net.now();
        let mut seen: HashSet<NodeId> = HashSet::new();
        seen.insert(client);
        // The client "receives" the query at itself, then floods.
        let mut holders = Vec::new();
        if self.keys.get(&client).is_some_and(|ks| ks.contains(key)) {
            holders.push(client);
        }
        for &nb in &self.neighbors[client].clone() {
            let m = Msg::Query {
                key: key.to_owned(),
                ttl: horizon,
                origin: client,
            };
            let b = msg_bytes(&m);
            self.net.send(client, nb, b, m);
        }
        let mut last = start;
        while let Some(d) = self.net.step() {
            last = d.at;
            match d.payload {
                Msg::Query { key, ttl, origin } => {
                    if !seen.insert(d.to) {
                        continue; // duplicate suppression
                    }
                    if self.keys.get(&d.to).is_some_and(|ks| ks.contains(&key)) {
                        let hit = Msg::Hit { holder: d.to };
                        let hb = msg_bytes(&hit);
                        self.net.send(d.to, origin, hb, hit);
                    }
                    if ttl > 1 {
                        for &nb in &self.neighbors[d.to].clone() {
                            if nb != d.from {
                                let m = Msg::Query {
                                    key: key.clone(),
                                    ttl: ttl - 1,
                                    origin,
                                };
                                let b = msg_bytes(&m);
                                self.net.send(d.to, nb, b, m);
                            }
                        }
                    }
                }
                Msg::Hit { holder } => {
                    if !holders.contains(&holder) {
                        holders.push(holder);
                    }
                }
            }
        }
        holders.sort_unstable();
        let after = self.net.stats();
        DiscoveryResult {
            holders,
            messages: after.messages_sent - before.messages_sent,
            bytes: after.bytes_sent - before.bytes_sent,
            latency_us: last.saturating_sub(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize, degree: usize) -> Flooding {
        Flooding::new(Topology::uniform(n, 5_000), degree, 42)
    }

    #[test]
    fn overlay_is_symmetric_and_connected_enough() {
        let f = world(20, 3);
        for v in 0..20 {
            assert!(f.neighbors(v).len() >= 3);
            for &u in f.neighbors(v) {
                assert!(f.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn nearby_content_found() {
        let mut f = world(10, 3);
        // Put the key on a direct neighbor of node 0.
        let nb = f.neighbors(0)[0];
        f.publish(nb, "cds");
        let r = f.query(0, "cds", 2);
        assert_eq!(r.holders, vec![nb]);
        assert!(r.messages >= 3); // flood + hit
    }

    #[test]
    fn horizon_limits_recall() {
        // A big sparse network: horizon 1 must miss most holders.
        let mut f = Flooding::new(Topology::uniform(200, 1_000), 2, 7);
        for node in (10..200).step_by(10) {
            f.publish(node, "rare");
        }
        let truth = f.truth("rare");
        let near = f.query(0, "rare", 1);
        let far = f.query(0, "rare", 8);
        assert!(near.recall(&truth) < far.recall(&truth));
        assert!(near.messages < far.messages);
    }

    #[test]
    fn message_cost_grows_with_horizon() {
        let mut f = world(100, 4);
        f.publish(50, "x");
        let m1 = f.query(0, "x", 1).messages;
        let m3 = f.query(0, "x", 3).messages;
        let m5 = f.query(0, "x", 5).messages;
        assert!(m1 < m3, "{m1} !< {m3}");
        assert!(m3 <= m5, "{m3} !<= {m5}");
    }

    #[test]
    fn client_own_content_counts() {
        let mut f = world(5, 2);
        f.publish(0, "mine");
        let r = f.query(0, "mine", 1);
        assert!(r.holders.contains(&0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut f = world(50, 3);
            f.publish(17, "k");
            f.publish(33, "k");
            let r = f.query(0, "k", 4);
            (r.holders.clone(), r.messages, r.latency_us)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sparse_overlay_symmetric_and_queries_work() {
        let mut f = Flooding::sparse(Topology::uniform(500, 1_000), 4, 11);
        for v in 0..500 {
            assert!(f.neighbors(v).len() >= 4, "node {v} under-connected");
            for &u in &f.neighbors(v).to_vec() {
                assert!(f.neighbors(u).contains(&v), "{u} !~ {v}");
            }
        }
        for node in (25..500).step_by(25) {
            f.publish(node, "k");
        }
        let r = f.query(0, "k", 6);
        assert!(r.recall(&f.truth("k")) > 0.5, "sparse overlay finds most");
        // Determinism: same seed, same overlay, same result.
        let mut g = Flooding::sparse(Topology::uniform(500, 1_000), 4, 11);
        for node in (25..500).step_by(25) {
            g.publish(node, "k");
        }
        assert_eq!(g.query(0, "k", 6).holders, r.holders);
    }

    #[test]
    fn loss_degrades_recall_deterministically() {
        let run = |loss: f64| {
            let mut f = Flooding::new(Topology::uniform(100, 1_000), 3, 7)
                .with_faults(FaultPlan::new(9).with_loss(loss));
            for node in (5..100).step_by(5) {
                f.publish(node, "k");
            }
            let r = f.query(0, "k", 6);
            (r.recall(&f.truth("k")), r.holders.clone())
        };
        let (clean, _) = run(0.0);
        let (lossy, holders_a) = run(0.5);
        let (_, holders_b) = run(0.5);
        assert!((clean - 1.0).abs() < 1e-9);
        assert!(lossy < clean, "loss must cost recall: {lossy} !< {clean}");
        assert_eq!(holders_a, holders_b, "same seed, same holders");
    }
}
