//! # mqp-baselines — comparator architectures (paper §1, §6)
//!
//! The paper positions its catalog-routed MQP design against the P2P
//! architectures of its day. To reproduce those comparisons we implement
//! all three over the same `mqp-net` simulator, answering the same
//! discovery question — *which servers hold items for this key?* — so
//! the routing benchmarks (EXPERIMENTS.md E5) measure messages, bytes,
//! latency, and recall on equal footing:
//!
//! * [`CentralIndex`] — the "Napster" (hybrid) approach: one index
//!   server; every publish and every query goes through it.
//! * [`Flooding`] — the "Gnutella" (pure) approach: queries broadcast
//!   to neighbors up to a fixed *horizon*; recall degrades with rare
//!   content beyond the horizon.
//! * [`Chord`] — a DHT baseline (§6 discusses CAN/Chord/Pastry/
//!   Tapestry): ring + finger tables, `O(log n)` lookup hops, exact
//!   key match only (the paper's point: "what about range queries, or
//!   joins?").

pub mod central;
pub mod chord;
pub mod common;
pub mod flood;

pub use central::CentralIndex;
pub use chord::Chord;
pub use common::{fnv1a, DiscoveryResult};
pub use flood::Flooding;
