//! Criterion micro-benchmarks for the Figure-2 pipeline stages and the
//! namespace algebra: the per-operation costs behind every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mqp_algebra::codec::{from_wire, to_wire};
use mqp_algebra::plan::{JoinCond, Plan};
use mqp_engine::eval_const;
use mqp_namespace::{Cell, InterestArea};
use mqp_xml::Element;

fn collection(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{:05}", i % (n / 2 + 1))))
                .child(Element::new("price").text(format!("{}.99", i % 40)))
        })
        .collect()
}

fn bench_xml(c: &mut Criterion) {
    let mut g = c.benchmark_group("xml");
    for &n in &[100usize, 1_000, 10_000] {
        let doc = Plan::data(collection(n));
        let wire = to_wire(&doc);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_with_input(BenchmarkId::new("parse_plan", n), &wire, |b, w| {
            b.iter(|| from_wire(w).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("serialize_plan", n), &doc, |b, p| {
            b.iter(|| to_wire(p));
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[100usize, 1_000, 10_000] {
        let select = Plan::select("price < 10", Plan::data(collection(n)));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("select", n), &select, |b, p| {
            b.iter(|| eval_const(p).unwrap());
        });
        let join = Plan::join(
            JoinCond::on("title", "title"),
            Plan::data(collection(n)),
            Plan::data(collection(n / 2)),
        );
        g.bench_with_input(BenchmarkId::new("hash_join", n), &join, |b, p| {
            b.iter(|| eval_const(p).unwrap());
        });
    }
    g.finish();
}

fn bench_envelope(c: &mut Criterion) {
    use mqp_core::Mqp;
    let mut g = c.benchmark_group("envelope");
    for &n in &[100usize, 1_000] {
        let plan = Plan::display(
            "client#0",
            Plan::select("price < 10", Plan::data(collection(n))),
        );
        let wire = Mqp::new(plan).to_wire();
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_with_input(BenchmarkId::new("from_wire", n), &wire, |b, w| {
            b.iter(|| Mqp::from_wire(w).unwrap());
        });
        let arrived = Mqp::from_wire(&wire).unwrap();
        g.bench_with_input(BenchmarkId::new("to_wire_spliced", n), &arrived, |b, m| {
            b.iter(|| m.to_wire());
        });
    }
    g.finish();
}

fn bench_namespace(c: &mut Criterion) {
    let mut g = c.benchmark_group("namespace");
    let areas: Vec<InterestArea> = (0..64)
        .map(|i| {
            InterestArea::of(Cell::parse([
                ["USA/OR/Portland", "USA/WA/Seattle", "France/IDF/Paris"][i % 3],
                ["Furniture/Chairs", "Music/CDs", "Electronics/TV"][(i / 3) % 3],
            ]))
        })
        .collect();
    let query = InterestArea::of(Cell::parse(["USA/OR/Portland", "Furniture/Chairs"]));
    g.bench_function("overlap_64_areas", |b| {
        b.iter(|| areas.iter().filter(|a| a.overlaps(&query)).count());
    });
    g.bench_function("urn_roundtrip", |b| {
        b.iter(|| {
            let s = mqp_namespace::urn::encode_area(&query);
            mqp_namespace::urn::decode_area(&s).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xml,
    bench_envelope,
    bench_engine,
    bench_namespace
);
criterion_main!(benches);
