//! `bench_report` — the committed wire-path performance trajectory
//! behind `BENCH_wire.json` (DESIGN.md §7).
//!
//! Measures the serialization/allocation hot path at the largest
//! Figure-2 collection size, comparing the **current** implementation
//! against the **legacy** paths this PR replaced — both still live in
//! the tree ([`mqp_xml::parse_document`] is the lenient parser,
//! `serialize(&plan_to_xml(..))` / `serialize(&mqp.to_xml())` the
//! tree-building serializers) — so the reported speedups are ratios
//! measured on the *same machine in the same run*, not absolute numbers
//! compared across hardware.
//!
//! Since the batched-execution PR it also measures the **engine** hot
//! path (`BENCH_engine.json`): the legacy materializing tree-walker
//! (preserved as [`mqp_engine::legacy`]) against the batched, compiled
//! evaluator, on the Figure-2-scale reduce workload and on hash-join
//! probe throughput — same-run ratios again.
//!
//! Since the scale PR it also measures the **capacity floors**
//! (`BENCH_scale.json`, DESIGN.md §10): peers per GB of RSS at full
//! materialization of the 100k-seller lazy world, and calendar-queue
//! events per second under the scheduler soak — absolute capacities on
//! this machine rather than same-run ratios, which is why their floors
//! sit 2–4× below the recorded values. The scale probe runs in a fresh
//! child process (the hidden `--scale-json` mode) so its RSS delta is
//! clean and its 100k-peer world never touches the allocator the ratio
//! measurements run on.
//!
//! Modes:
//!
//! * no args — print one JSON object `{"wire": …, "engine": …,
//!   "scale": …}` wrapping the reports to stdout;
//! * `--update` — rewrite `BENCH_wire.json` + `BENCH_engine.json` +
//!   `BENCH_scale.json` at the workspace root;
//! * `--check` — re-measure and fail (exit 1) unless the fresh
//!   speedups meet the committed floors (≥ 3× zero-copy parse, ≥ 2×
//!   per-hop serialize; ≥ 3× batched reduce, ≥ 2× join probe; ≥ 10
//!   MB/s mqp-lang compile throughput), the
//!   capacities meet theirs (≥ 100k peers/GB, ≥ 1M events/sec), and
//!   everything is within 20% of the committed values (the CI
//!   `perf-report` regression gate, with large values capped before
//!   the drift test). Also statically validates the committed `socket`
//!   section (see below);
//! * `--check-socket` — validate only the `socket` section of
//!   `BENCH_threaded.json`, committed by a full-scale `exp_socket_soak`
//!   run: ≥ 200 peers, ≥ 20k queries, zero failures or strandings,
//!   100% audit-clean, and an exactly balanced frame-accounting
//!   identity. Static (no re-measurement — the CI `socket-smoke` job
//!   re-proves the invariants at golden scale and then gates the
//!   committed full-scale record with this mode);
//! * `--check-moas` — validate only the `moas` section of
//!   `BENCH_scale.json`, committed by a full-scale `exp_moas --update`
//!   run (DESIGN.md §14, E16): ≥ 10k peers, detection precision ≥ 0.95
//!   and recall ≥ 0.90 at the 5%-hijacker workload, zero honest
//!   mirrors quarantined, the defense never *increasing* the
//!   poisoned-answer rate, and a nonzero verification-probe count.
//!   Static — the CI `moas-smoke` job re-proves the invariants at
//!   golden scale first;
//! * `--check-recovery` — validate only the `recovery` section of
//!   `BENCH_threaded.json`, committed by a full-scale
//!   `exp_crash_recovery` run (DESIGN.md §12): ≥ 99% of bindings
//!   recovered after post-fsync kills, every recovered catalog an
//!   exact prefix replay, zero unaccounted frames through the churn,
//!   and recall with durability at least the no-durability baseline's.
//!   Static, like `--check-socket` — the CI `crash-smoke` job re-runs
//!   the experiment's invariants at golden scale first.

use std::time::Instant;

use mqp_algebra::codec::{plan_to_xml, to_wire};
use mqp_algebra::plan::{JoinCond, Plan};
use mqp_bench::{fig2_collection, fig2_songs};
use mqp_catalog::ServerId;
use mqp_core::{Action, Mqp, VisitRecord};

/// Largest Figure-2 collection size (see `exp_fig2_pipeline`).
const ITEMS: usize = 100_000;
/// Provenance depth of the benchmarked envelope: a mid-flight plan.
const VISITS: usize = 8;
/// Timing iterations per measurement (best-of, to shed scheduler noise).
const ITERS: usize = 5;

/// Speedup floors the PR committed to (also enforced by `--check`).
const PARSE_FLOOR: f64 = 3.0;
const SERIALIZE_FLOOR: f64 = 2.0;
/// Engine floors: batched-vs-legacy reduce, and join probe throughput.
const REDUCE_FLOOR: f64 = 3.0;
const JOIN_FLOOR: f64 = 2.0;
/// Language floor: absolute compile throughput (MB of query text per
/// second) for the surface syntax. Compiling does strictly more work
/// than the zero-copy XML wire parse it sits next to in the report —
/// predicates, paths, and URNs are fully validated and a span table is
/// built — so the gate is a throughput floor, not a speedup ratio; the
/// `xml_parse_us` column stays as context.
const LANG_MBPS_FLOOR: f64 = 10.0;
/// Allowed drift versus the committed ratios before `--check` fails.
const DRIFT: f64 = 0.20;

fn fig2_plan() -> Plan {
    Plan::display(
        "client#0",
        Plan::join(
            JoinCond::on("album", "title"),
            Plan::data(fig2_songs(ITEMS / 10)),
            Plan::select("price < 10", Plan::data(fig2_collection(ITEMS))),
        ),
    )
}

fn envelope() -> Mqp {
    let mut m = Mqp::new(fig2_plan());
    for i in 0..VISITS {
        m.record(VisitRecord {
            server: ServerId::new(format!("server-{i}")),
            action: if i == 0 {
                Action::Bound
            } else {
                Action::Forwarded
            },
            detail: format!("hop {i}: urn:ForSale:Portland-CDs -> mqp://seller-{i}/"),
            at: i as u64 * 1_000,
            staleness: 0,
        });
    }
    m
}

/// Best-of-`ITERS` wall time of `f`, in seconds.
fn time_best(mut f: impl FnMut()) -> f64 {
    time_best_n(ITERS, &mut f)
}

fn time_best_n(iters: usize, f: &mut impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of measurement of two alternatives, *interleaved* (a, b, a, b,
/// …) so a scheduler hiccup hits both sides with equal probability —
/// the engine ratios gate CI, so their variance matters more than
/// their absolute values.
fn time_best_pair(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        b();
        best_b = best_b.min(t0.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn mb_per_s(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs
}

struct Report {
    wire_bytes: usize,
    envelope_bytes: usize,
    parse_legacy_mb_s: f64,
    parse_zero_copy_mb_s: f64,
    ser_legacy_mb_s: f64,
    ser_direct_mb_s: f64,
    hop_ser_legacy_us: f64,
    hop_ser_cached_us: f64,
    hop_legacy_us: f64,
    hop_zero_copy_us: f64,
    fig2_pipeline_s: f64,
    routing_slice_s: f64,
}

impl Report {
    fn parse_speedup(&self) -> f64 {
        self.parse_zero_copy_mb_s / self.parse_legacy_mb_s
    }
    fn serialize_speedup(&self) -> f64 {
        self.hop_ser_legacy_us / self.hop_ser_cached_us
    }
    fn plan_serialize_speedup(&self) -> f64 {
        self.ser_direct_mb_s / self.ser_legacy_mb_s
    }
    fn hop_speedup(&self) -> f64 {
        self.hop_legacy_us / self.hop_zero_copy_us
    }

    fn to_json(&self) -> String {
        // Hand-rolled (the workspace is dependency-free): two decimal
        // places keep diffs readable; machine-dependent absolutes are
        // informational, the speedup ratios are the contract.
        use std::fmt::Write;
        let mut out = String::new();
        let mut section = |name: &str, fields: &[(&str, String)], last: bool| {
            let _ = writeln!(out, "  \"{name}\": {{");
            for (i, (k, v)) in fields.iter().enumerate() {
                let comma = if i + 1 < fields.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{k}\": {v}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        };
        let f = |x: f64| format!("{x:.2}");
        let s = |x: f64| format!("{x:.3}");
        section(
            "workload",
            &[
                ("items", ITEMS.to_string()),
                ("visits", VISITS.to_string()),
                ("plan_wire_bytes", self.wire_bytes.to_string()),
                ("envelope_wire_bytes", self.envelope_bytes.to_string()),
            ],
            false,
        );
        section(
            "parse",
            &[
                ("legacy_mb_s", f(self.parse_legacy_mb_s)),
                ("zero_copy_mb_s", f(self.parse_zero_copy_mb_s)),
                ("speedup", f(self.parse_speedup())),
            ],
            false,
        );
        section(
            "plan_serialize",
            &[
                ("legacy_tree_mb_s", f(self.ser_legacy_mb_s)),
                ("direct_mb_s", f(self.ser_direct_mb_s)),
                ("speedup", f(self.plan_serialize_speedup())),
            ],
            false,
        );
        section(
            "per_hop_serialize",
            &[
                ("legacy_us", f(self.hop_ser_legacy_us)),
                ("cached_us", f(self.hop_ser_cached_us)),
                ("speedup", f(self.serialize_speedup())),
            ],
            false,
        );
        section(
            "per_hop_envelope",
            &[
                ("legacy_us", f(self.hop_legacy_us)),
                ("zero_copy_us", f(self.hop_zero_copy_us)),
                ("speedup", f(self.hop_speedup())),
            ],
            false,
        );
        section(
            "end_to_end",
            &[
                ("fig2_pipeline_s", s(self.fig2_pipeline_s)),
                ("routing_slice_s", s(self.routing_slice_s)),
            ],
            false,
        );
        section(
            "floors",
            &[
                ("parse_speedup_min", f(PARSE_FLOOR)),
                ("per_hop_serialize_speedup_min", f(SERIALIZE_FLOOR)),
            ],
            true,
        );
        format!("{{\n  \"schema\": \"bench_wire/v1\",\n{out}}}\n")
    }
}

fn measure() -> Report {
    let plan = fig2_plan();
    let wire = to_wire(&plan);
    let wire_bytes = wire.len();

    // Parse throughput, measured on the envelope a hop actually
    // receives (Figure 2's parse stage): the pre-PR tree path —
    // lenient recursive-descent parse + tree decode — vs the zero-copy
    // token walk (direct token→Plan decode, `<original>` validated but
    // materialized lazily).
    let env_wire = envelope().to_wire();
    let envelope_bytes = env_wire.len();
    let parse_legacy = time_best(|| {
        let root = mqp_xml::parse_document(&env_wire).expect("legacy parse");
        std::hint::black_box(Mqp::from_xml(&root).expect("legacy decode"));
    });
    let parse_zero_copy = time_best(|| {
        std::hint::black_box(Mqp::from_wire(&env_wire).expect("zero-copy decode"));
    });

    // Plan serialization: tree-building (clones every data item) vs
    // the direct writer.
    let ser_legacy = time_best(|| {
        std::hint::black_box(mqp_xml::serialize(&plan_to_xml(&plan)));
    });
    let ser_direct = time_best(|| {
        std::hint::black_box(to_wire(&plan));
    });

    // Per-hop re-serialization: the envelope arrived over the wire
    // (fragment caches seeded), the hop records one provenance visit
    // and ships the envelope on. Legacy rebuilds the whole XML tree;
    // the cached path serializes the new visit and splices everything
    // else.
    let mut arrived = Mqp::from_wire(&env_wire).expect("envelope reparses");
    arrived.record(VisitRecord {
        server: ServerId::new("bench-hop"),
        action: Action::Forwarded,
        detail: "to next".to_owned(),
        at: 99_000,
        staleness: 0,
    });
    let hop_ser_legacy = time_best(|| {
        std::hint::black_box(mqp_xml::serialize(&arrived.to_xml()));
    });
    let hop_ser_cached = time_best(|| {
        std::hint::black_box(arrived.to_wire());
    });

    // Whole hop: parse + record + serialize, both stacks.
    let visit = VisitRecord {
        server: ServerId::new("bench-hop-2"),
        action: Action::Forwarded,
        detail: "onward".to_owned(),
        at: 100_000,
        staleness: 0,
    };
    let hop_legacy = time_best(|| {
        let root = mqp_xml::parse_document(&env_wire).expect("parse");
        let mut m = Mqp::from_xml(&root).expect("decode");
        m.record(visit.clone());
        std::hint::black_box(mqp_xml::serialize(&m.to_xml()));
    });
    let hop_zero_copy = time_best(|| {
        let mut m = Mqp::from_wire(&env_wire).expect("decode");
        m.record(visit.clone());
        std::hint::black_box(m.to_wire());
    });

    // End-to-end slices (current code only; informational trend data).
    let fig2_pipeline_s = time_best(|| {
        let parsed = mqp_algebra::codec::from_wire(&wire).expect("reparse");
        let mut rewritten = parsed;
        mqp_core::rewrite::normalize(&mut rewritten);
        let result = mqp_engine::eval_const(&rewritten).expect("evaluate");
        std::hint::black_box(to_wire(&Plan::data_shared(result)));
    });
    let routing_slice_s = time_best(|| {
        use mqp_workloads::garage::{build, random_query, GarageConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut w = build(GarageConfig {
            sellers: 40,
            items_per_seller: 8,
            ..GarageConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let q = random_query(&mut rng, Some(80.0));
            w.harness.submit(w.client, q);
            w.harness.run(100_000);
        }
        std::hint::black_box(w.harness.completed().len());
    });

    Report {
        wire_bytes,
        envelope_bytes,
        parse_legacy_mb_s: mb_per_s(wire_bytes, parse_legacy),
        parse_zero_copy_mb_s: mb_per_s(wire_bytes, parse_zero_copy),
        ser_legacy_mb_s: mb_per_s(wire_bytes, ser_legacy),
        ser_direct_mb_s: mb_per_s(wire_bytes, ser_direct),
        hop_ser_legacy_us: hop_ser_legacy * 1e6,
        hop_ser_cached_us: hop_ser_cached * 1e6,
        hop_legacy_us: hop_legacy * 1e6,
        hop_zero_copy_us: hop_zero_copy * 1e6,
        fig2_pipeline_s,
        routing_slice_s,
    }
}

// ----------------------------------------------------------------------
// Engine report: legacy materializing eval vs batched compiled eval.
// ----------------------------------------------------------------------

struct EngineReport {
    reduce_items: usize,
    probe_items: usize,
    reduce_legacy_ms: f64,
    reduce_batched_ms: f64,
    probe_legacy_kitems_s: f64,
    probe_batched_kitems_s: f64,
    lang_text_bytes: usize,
    lang_wire_bytes: usize,
    lang_xml_parse_us: f64,
    lang_compile_us: f64,
}

impl EngineReport {
    fn reduce_speedup(&self) -> f64 {
        self.reduce_legacy_ms / self.reduce_batched_ms
    }

    fn join_probe_speedup(&self) -> f64 {
        self.probe_batched_kitems_s / self.probe_legacy_kitems_s
    }

    /// Query-text compile throughput in MB/s (bytes per microsecond).
    fn lang_compile_mb_s(&self) -> f64 {
        self.lang_text_bytes as f64 / self.lang_compile_us
    }

    fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut section = |name: &str, fields: &[(&str, String)], last: bool| {
            let _ = writeln!(out, "  \"{name}\": {{");
            for (i, (k, v)) in fields.iter().enumerate() {
                let comma = if i + 1 < fields.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{k}\": {v}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        };
        let f = |x: f64| format!("{x:.2}");
        section(
            "workload",
            &[
                ("items", ITEMS.to_string()),
                ("reduce_input_items", self.reduce_items.to_string()),
                ("join_probe_items", self.probe_items.to_string()),
            ],
            false,
        );
        section(
            "reduce",
            &[
                ("legacy_ms", f(self.reduce_legacy_ms)),
                ("batched_ms", f(self.reduce_batched_ms)),
                ("speedup", f(self.reduce_speedup())),
            ],
            false,
        );
        section(
            "join_probe",
            &[
                ("legacy_kitems_s", f(self.probe_legacy_kitems_s)),
                ("batched_kitems_s", f(self.probe_batched_kitems_s)),
                ("speedup", f(self.join_probe_speedup())),
            ],
            false,
        );
        section(
            "lang",
            &[
                ("query_text_bytes", self.lang_text_bytes.to_string()),
                ("xml_wire_bytes", self.lang_wire_bytes.to_string()),
                ("xml_parse_us", f(self.lang_xml_parse_us)),
                ("compile_us", f(self.lang_compile_us)),
                ("compile_mb_s", f(self.lang_compile_mb_s())),
            ],
            false,
        );
        section(
            "floors",
            &[
                ("reduce_speedup_min", f(REDUCE_FLOOR)),
                ("join_probe_speedup_min", f(JOIN_FLOOR)),
                ("lang_compile_mb_s_min", f(LANG_MBPS_FLOOR)),
            ],
            true,
        );
        format!("{{\n  \"schema\": \"bench_engine/v1\",\n{out}}}\n")
    }
}

fn measure_engine() -> EngineReport {
    // The fig2-pipeline-scale reduce workload: exactly the sub-plan a
    // completing server evaluates in `exp_fig2_pipeline` — join the
    // song list against the price-filtered collection — at the largest
    // collection size. The legacy path deep-copies every input item
    // out of the data leaves before it looks at a single predicate;
    // the batched path bumps reference counts and runs compiled
    // matchers.
    let reduce_plan = fig2_plan();
    let reduce_items = ITEMS + ITEMS / 10;
    let (reduce_legacy, reduce_batched) = time_best_pair(
        2 * ITERS,
        || {
            std::hint::black_box(
                mqp_engine::legacy::eval_const(&reduce_plan).expect("legacy eval"),
            );
        },
        || {
            std::hint::black_box(mqp_engine::eval_const(&reduce_plan).expect("batched eval"));
        },
    );

    // Hash-join probe throughput: the paper's Figure-3 shape — a small
    // song list (the build-side index) joined against the whole
    // for-sale collection (the probe side). Probe work dominates:
    // throughput is probe items per second. The legacy path deep-copies
    // the probe collection and allocates a `Vec<String>` of keys per
    // probe item; the batched path borrows both.
    let probe_items = ITEMS;
    let join_plan = Plan::join(
        JoinCond::on("album", "title"),
        Plan::data(fig2_songs(ITEMS / 100)),
        Plan::data(fig2_collection(ITEMS)),
    );
    let (probe_legacy, probe_batched) = time_best_pair(
        2 * ITERS,
        || {
            std::hint::black_box(mqp_engine::legacy::eval_const(&join_plan).expect("legacy join"));
        },
        || {
            std::hint::black_box(mqp_engine::eval_const(&join_plan).expect("batched join"));
        },
    );

    // Language front-end: compile throughput of the surface syntax vs
    // parsing the XML wire form of the *same* logical plan — a
    // structurally rich, data-free query (the shape a person authors:
    // a 64-way union of filtered URN sources under a topn). Both sides
    // produce the identical `Plan`, so the ratio is a pure front-end
    // comparison on the same machine in the same run.
    let lang_plan = {
        let branches: Vec<Plan> = (0..64)
            .map(|i| {
                Plan::select(
                    &format!("price < {}", 10 + i),
                    Plan::Urn(mqp_algebra::plan::UrnRef::new(mqp_namespace::Urn::named(
                        "ForSale",
                        format!("city-{i}"),
                    ))),
                )
            })
            .collect();
        Plan::top_n(10, "price", true, Plan::union(branches))
    };
    let lang_text = lang_plan.render();
    let lang_wire = to_wire(&lang_plan);
    const LANG_REPS: usize = 50;
    let (lang_xml_parse, lang_compile) = time_best_pair(
        2 * ITERS,
        || {
            for _ in 0..LANG_REPS {
                std::hint::black_box(
                    mqp_algebra::codec::from_wire(&lang_wire).expect("wire reparse"),
                );
            }
        },
        || {
            for _ in 0..LANG_REPS {
                std::hint::black_box(mqp_lang::parse_query(&lang_text).expect("text compiles"));
            }
        },
    );

    EngineReport {
        reduce_items,
        probe_items,
        reduce_legacy_ms: reduce_legacy * 1e3,
        reduce_batched_ms: reduce_batched * 1e3,
        probe_legacy_kitems_s: probe_items as f64 / 1e3 / probe_legacy,
        probe_batched_kitems_s: probe_items as f64 / 1e3 / probe_batched,
        lang_text_bytes: lang_text.len(),
        lang_wire_bytes: lang_wire.len(),
        lang_xml_parse_us: lang_xml_parse / LANG_REPS as f64 * 1e6,
        lang_compile_us: lang_compile / LANG_REPS as f64 * 1e6,
    }
}

fn committed_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wire.json")
}

fn committed_engine_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Pulls `"key": <number>` out of `section` in our own JSON shape.
fn json_f64(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\""))?;
    let rest = &rest[k + key.len() + 2..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

fn check(report: &Report) -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_path())
        .map_err(|e| format!("cannot read committed BENCH_wire.json: {e}"))?;
    // Shape: every section this binary writes must exist in the
    // committed file (a missing section means the schema drifted
    // without refreshing the baseline).
    for (section, key) in [
        ("workload", "items"),
        ("parse", "speedup"),
        ("plan_serialize", "speedup"),
        ("per_hop_serialize", "speedup"),
        ("per_hop_envelope", "speedup"),
        ("end_to_end", "fig2_pipeline_s"),
        ("floors", "parse_speedup_min"),
    ] {
        if json_f64(&committed, section, key).is_none() {
            return Err(format!(
                "committed BENCH_wire.json is missing {section}.{key}; \
                 regenerate it with `bench_report --update`"
            ));
        }
    }
    let mut failures = Vec::new();
    let mut gate = |name: &str, fresh: f64, floor: f64| {
        let committed_ratio = json_f64(&committed, name, "speedup").unwrap_or(floor);
        // The committed ratio is capped before applying the drift
        // tolerance: when a metric sits far above its floor (the
        // splice-vs-rebuild ratio is two orders of magnitude), a
        // machine-to-machine wobble in a huge ratio is noise, not a
        // regression — but collapsing back toward the floor still is.
        let min_allowed = floor.max(committed_ratio.min(4.0 * floor) * (1.0 - DRIFT));
        eprintln!(
            "perf-report: {name}: fresh {fresh:.2}x (committed {committed_ratio:.2}x, \
             floor {floor:.1}x, regression gate {min_allowed:.2}x)"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "{name} speedup {fresh:.2}x below gate {min_allowed:.2}x"
            ));
        }
    };
    gate("parse", report.parse_speedup(), PARSE_FLOOR);
    gate(
        "per_hop_serialize",
        report.serialize_speedup(),
        SERIALIZE_FLOOR,
    );
    // The remaining ratios have no hard floor but must not collapse
    // versus the committed trajectory.
    for (name, fresh) in [
        ("plan_serialize", report.plan_serialize_speedup()),
        ("per_hop_envelope", report.hop_speedup()),
    ] {
        let committed_ratio = json_f64(&committed, name, "speedup").unwrap_or(1.0);
        let min_allowed = committed_ratio * (1.0 - DRIFT);
        eprintln!(
            "perf-report: {name}: fresh {fresh:.2}x (committed {committed_ratio:.2}x, \
             regression gate {min_allowed:.2}x)"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "{name} speedup {fresh:.2}x regressed >20% vs committed {committed_ratio:.2}x"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The engine gate: same shape check, same floors-plus-capped-drift
/// logic as the wire gate, against `BENCH_engine.json`.
fn check_engine(report: &EngineReport) -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_engine_path())
        .map_err(|e| format!("cannot read committed BENCH_engine.json: {e}"))?;
    for (section, key) in [
        ("workload", "items"),
        ("reduce", "speedup"),
        ("join_probe", "speedup"),
        ("lang", "compile_mb_s"),
        ("floors", "reduce_speedup_min"),
    ] {
        if json_f64(&committed, section, key).is_none() {
            return Err(format!(
                "committed BENCH_engine.json is missing {section}.{key}; \
                 regenerate it with `bench_report --update`"
            ));
        }
    }
    let mut failures = Vec::new();
    // `unit` is a display suffix only: "x" for speedup ratios,
    // " MB/s" for the lang compile throughput.
    let mut gate = |name: &str, key: &str, unit: &str, fresh: f64, floor: f64| {
        let committed_ratio = json_f64(&committed, name, key).unwrap_or(floor);
        // Same capping rule as the wire gate: a huge committed ratio
        // wobbles with the machine; only collapsing toward the floor
        // counts as a regression.
        let min_allowed = floor.max(committed_ratio.min(4.0 * floor) * (1.0 - DRIFT));
        eprintln!(
            "perf-report: engine {name}: fresh {fresh:.2}{unit} (committed \
             {committed_ratio:.2}{unit}, floor {floor:.1}{unit}, regression gate \
             {min_allowed:.2}{unit})"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "engine {name} {key} {fresh:.2}{unit} below gate {min_allowed:.2}{unit}"
            ));
        }
    };
    gate(
        "reduce",
        "speedup",
        "x",
        report.reduce_speedup(),
        REDUCE_FLOOR,
    );
    gate(
        "join_probe",
        "speedup",
        "x",
        report.join_probe_speedup(),
        JOIN_FLOOR,
    );
    gate(
        "lang",
        "compile_mb_s",
        " MB/s",
        report.lang_compile_mb_s(),
        LANG_MBPS_FLOOR,
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The scale gate (`BENCH_scale.json`, DESIGN.md §10): re-measures the
/// 100k-peer memory footprint and the scheduler soak, then applies the
/// same floors-plus-capped-drift rule as the ratio gates — here to
/// absolute capacities (peers/GB, events/sec) rather than speedups.
fn check_scale(report: &mqp_bench::scale_report::ScaleReport) -> Result<(), String> {
    use mqp_bench::scale_gate::{EVENTS_PER_SEC_FLOOR, PEERS_PER_GB_FLOOR};
    let committed = std::fs::read_to_string(mqp_bench::scale_report::committed_path())
        .map_err(|e| format!("cannot read committed BENCH_scale.json: {e}"))?;
    for (section, key) in [
        ("workload", "sellers"),
        ("memory", "peers_per_gb"),
        ("scheduler", "events_per_sec"),
        ("floors", "peers_per_gb_min"),
    ] {
        if json_f64(&committed, section, key).is_none() {
            return Err(format!(
                "committed BENCH_scale.json is missing {section}.{key}; \
                 regenerate it with `exp_scale --update`"
            ));
        }
    }
    let mut failures = Vec::new();
    let mut gate = |name: &str, section: &str, key: &str, fresh: f64, floor: f64| {
        let committed_val = json_f64(&committed, section, key).unwrap_or(floor);
        // Tighter cap (2×) than the ratio gates: these are absolute
        // capacities measured against wall time, so a loaded machine
        // wobbles them more than a same-run ratio — the floor itself is
        // already 2–4× below the recorded values.
        let min_allowed = floor.max(committed_val.min(2.0 * floor) * (1.0 - DRIFT));
        eprintln!(
            "perf-report: scale {name}: fresh {fresh:.0} (committed {committed_val:.0}, \
             floor {floor:.0}, regression gate {min_allowed:.0})"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "scale {name} {fresh:.0} below gate {min_allowed:.0}"
            ));
        }
    };
    gate(
        "peers_per_gb",
        "memory",
        "peers_per_gb",
        report.peers_per_gb,
        PEERS_PER_GB_FLOOR,
    );
    gate(
        "events_per_sec",
        "scheduler",
        "events_per_sec",
        report.events_per_sec,
        EVENTS_PER_SEC_FLOOR,
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn committed_threaded_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_threaded.json")
}

/// The moas gate: the committed `moas` section of `BENCH_scale.json`
/// must record a full-scale `exp_moas` run (DESIGN.md §14, E16) whose
/// detection quality met the defense's floors. Static, like
/// [`check_socket`]: the CI `moas-smoke` job re-proves the invariants
/// at golden scale (the experiment asserts its own floors in-process),
/// and this mode gates the committed full-scale record.
fn check_moas() -> Result<(), String> {
    use mqp_bench::moas_gate::{PRECISION_FLOOR, RECALL_FLOOR};
    let committed = std::fs::read_to_string(mqp_bench::scale_report::committed_path())
        .map_err(|e| format!("cannot read committed BENCH_scale.json: {e}"))?;
    let get = |key: &str| {
        json_f64(&committed, "moas", key).ok_or(format!(
            "committed BENCH_scale.json is missing moas.{key}; \
             regenerate it with a full-scale `exp_moas --update` run"
        ))
    };
    let peers = get("peers")?;
    let hijackers = get("hijackers")?;
    let precision = get("precision")?;
    let recall = get("recall")?;
    let mirrors = get("mirrors_quarantined")?;
    let poisoned_off = get("poisoned_rate_off")?;
    let poisoned_on = get("poisoned_rate_on")?;
    let verify_msgs = get("verify_msgs")?;
    eprintln!(
        "perf-report: moas: {peers:.0} peers, {hijackers:.0} hijackers, \
         precision {precision:.2} recall {recall:.2}, {mirrors:.0} mirrors \
         quarantined, poisoning {poisoned_off:.2} -> {poisoned_on:.2}, \
         {verify_msgs:.0} verify msgs"
    );
    let mut failures = Vec::new();
    if peers < 10_000.0 {
        failures.push(format!(
            "moas run covered only {peers:.0} peers (floor 10000)"
        ));
    }
    if hijackers <= 0.0 {
        failures.push("moas run recorded no hijackers — nothing was defended against".to_owned());
    }
    if precision < PRECISION_FLOOR {
        failures.push(format!(
            "moas precision {precision:.2} below floor {PRECISION_FLOOR:.2}"
        ));
    }
    if recall < RECALL_FLOOR {
        failures.push(format!(
            "moas recall {recall:.2} below floor {RECALL_FLOOR:.2}"
        ));
    }
    if mirrors != 0.0 {
        failures.push(format!(
            "moas run quarantined {mirrors:.0} honest mirrors (must be 0)"
        ));
    }
    if poisoned_on > poisoned_off {
        failures.push(format!(
            "defense increased poisoning: {poisoned_on:.2} on vs {poisoned_off:.2} off"
        ));
    }
    if verify_msgs <= 0.0 {
        failures.push("moas run sent no verification probes — the defense never ran".to_owned());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The socket gate: the committed `socket` section of
/// `BENCH_threaded.json` must record a full-scale `exp_socket_soak`
/// run that met the soak's contract. Unlike the ratio gates this is
/// purely static — the invariants (zero failures, 100% audit-clean,
/// balanced accounting) are machine-independent and enforced by
/// asserts inside the soak itself, so re-measuring here would only
/// re-run a multi-second 250-peer soak for no extra signal.
fn check_socket() -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_threaded_path())
        .map_err(|e| format!("cannot read committed BENCH_threaded.json: {e}"))?;
    let get = |key: &str| {
        json_f64(&committed, "socket", key).ok_or(format!(
            "committed BENCH_threaded.json is missing socket.{key}; \
             regenerate it with a full-scale `exp_socket_soak` run"
        ))
    };
    let peers = get("peers")?;
    let queries = get("queries")?;
    let completed = get("completed")?;
    let failed = get("failed")?;
    let clean_pct = get("audit_clean_pct")?;
    let balanced = get("balanced")?;
    eprintln!(
        "perf-report: socket: {peers:.0} peers, {queries:.0} queries, \
         {completed:.0} completed, {failed:.0} failed, {clean_pct:.2}% \
         audit-clean, balanced={balanced:.0}"
    );
    let mut failures = Vec::new();
    if peers < 200.0 {
        failures.push(format!("socket soak ran only {peers:.0} peers (floor 200)"));
    }
    if queries < 20_000.0 {
        failures.push(format!(
            "socket soak ran only {queries:.0} queries (floor 20000)"
        ));
    }
    if completed != queries {
        failures.push(format!(
            "socket soak stranded queries: {completed:.0} of {queries:.0} completed"
        ));
    }
    if failed != 0.0 {
        failures.push(format!("socket soak recorded {failed:.0} failed queries"));
    }
    if clean_pct != 100.0 {
        failures.push(format!(
            "socket soak only {clean_pct:.2}% audit-clean (must be 100)"
        ));
    }
    if balanced != 1.0 {
        failures.push("socket soak frame accounting did not balance".to_owned());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The recovery gate: the committed `recovery` section of
/// `BENCH_threaded.json` must record a full-scale `exp_crash_recovery`
/// run that met the durability contract (DESIGN.md §12). Static, for
/// the same reason as [`check_socket`]: the invariants are
/// machine-independent and asserted inside the experiment itself.
fn check_recovery() -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_threaded_path())
        .map_err(|e| format!("cannot read committed BENCH_threaded.json: {e}"))?;
    let get = |key: &str| {
        json_f64(&committed, "recovery", key).ok_or(format!(
            "committed BENCH_threaded.json is missing recovery.{key}; \
             regenerate it with a full-scale `exp_crash_recovery` run"
        ))
    };
    let post_fsync = get("post_fsync_recovered_pct")?;
    let prefix = get("prefix_consistent")?;
    let unaccounted = get("unaccounted_frames")?;
    let durable = get("durable_recall_pct")?;
    let baseline = get("baseline_recall_pct")?;
    let reregs = get("rereg_frames")?;
    eprintln!(
        "perf-report: recovery: post-fsync {post_fsync:.2}% recovered, \
         prefix_consistent={prefix:.0}, recall {durable:.2}% durable vs \
         {baseline:.2}% baseline, {reregs:.0} rereg frames, \
         {unaccounted:.0} unaccounted"
    );
    let mut failures = Vec::new();
    if post_fsync < 99.0 {
        failures.push(format!(
            "post-fsync kills recovered only {post_fsync:.2}% of bindings (floor 99)"
        ));
    }
    if prefix != 1.0 {
        failures.push("a recovered catalog was not a prefix replay".to_owned());
    }
    if unaccounted != 0.0 {
        failures.push(format!(
            "{unaccounted:.0} frames unaccounted for through the churn"
        ));
    }
    if durable < baseline {
        failures.push(format!(
            "durable recall {durable:.2}% below the no-durability baseline {baseline:.2}%"
        ));
    }
    if reregs <= 0.0 {
        failures.push("no rereg frames recorded — recovered peers never re-announced".to_owned());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Runs the scale probe in a fresh child process (`--scale-json`) and
/// parses the report back. Isolation matters twice over: the RSS-delta
/// measurement needs a process that has not allocated anything yet, and
/// the wire/engine ratio measurements in *this* process need an
/// allocator that the 100k-peer world never churned through.
fn scale_in_child() -> mqp_bench::scale_report::ScaleReport {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .arg("--scale-json")
        .output()
        .expect("spawn scale probe");
    let text = String::from_utf8_lossy(&out.stdout);
    let get = |section: &str, key: &str| {
        json_f64(&text, section, key)
            .unwrap_or_else(|| panic!("scale probe output missing {section}.{key}: {text}"))
    };
    mqp_bench::scale_report::ScaleReport {
        sellers: get("workload", "sellers") as usize,
        peers: get("workload", "peers") as usize,
        bytes_per_peer: get("memory", "bytes_per_peer"),
        peers_per_gb: get("memory", "peers_per_gb"),
        soak_events: get("scheduler", "soak_events") as u64,
        events_per_sec: get("scheduler", "events_per_sec"),
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    if mode == "--scale-json" {
        // Child mode (spawned by the modes below): measure the scale
        // capacities in a process that has allocated nothing else, and
        // print the BENCH_scale.json document.
        let scale = mqp_bench::scale_report::measure(100_000, 10_000, 256, 2_000_000);
        print!("{}", scale.to_json());
        return;
    }
    if mode == "--check-socket" {
        // Static gate only — no measurement, so the CI socket-smoke
        // job stays fast after its own golden-scale soak runs.
        if let Err(e) = check_socket() {
            eprintln!("perf-report: FAIL: {e}");
            std::process::exit(1);
        }
        eprintln!("perf-report: socket OK");
        return;
    }
    if mode == "--check-moas" {
        // Static gate only — the CI moas-smoke job runs the golden
        // experiment itself, then gates the committed full-scale record.
        if let Err(e) = check_moas() {
            eprintln!("perf-report: FAIL: {e}");
            std::process::exit(1);
        }
        eprintln!("perf-report: moas OK");
        return;
    }
    if mode == "--check-recovery" {
        // Static gate only — the CI crash-smoke job runs the golden
        // experiment itself, then gates the committed full-scale record.
        if let Err(e) = check_recovery() {
            eprintln!("perf-report: FAIL: {e}");
            std::process::exit(1);
        }
        eprintln!("perf-report: recovery OK");
        return;
    }
    let scale = scale_in_child();
    let report = measure();
    let engine = measure_engine();
    match mode.as_str() {
        "--update" => {
            std::fs::write(committed_path(), report.to_json()).expect("write BENCH_wire.json");
            std::fs::write(committed_engine_path(), engine.to_json())
                .expect("write BENCH_engine.json");
            // The `moas` section belongs to `exp_moas --update`; carry
            // it forward rather than clobbering it.
            let scale_path = mqp_bench::scale_report::committed_path();
            let fresh = scale.to_json();
            let merged = match std::fs::read_to_string(&scale_path)
                .ok()
                .and_then(|old| mqp_bench::json_merge::section(&old, "moas"))
            {
                Some(moas) => mqp_bench::json_merge::upsert_section(&fresh, "moas", &moas),
                None => fresh,
            };
            std::fs::write(&scale_path, merged).expect("write BENCH_scale.json");
            eprintln!(
                "bench_report: wrote {} ({:.0} peers/GB, {:.0} events/sec)",
                mqp_bench::scale_report::committed_path().display(),
                scale.peers_per_gb,
                scale.events_per_sec,
            );
            eprintln!(
                "bench_report: wrote {} (parse {:.2}x, per-hop serialize {:.2}x)",
                committed_path().display(),
                report.parse_speedup(),
                report.serialize_speedup(),
            );
            eprintln!(
                "bench_report: wrote {} (reduce {:.2}x, join probe {:.2}x)",
                committed_engine_path().display(),
                engine.reduce_speedup(),
                engine.join_probe_speedup(),
            );
        }
        "--check" => {
            let wire = check(&report);
            let eng = check_engine(&engine);
            let sc = check_scale(&scale);
            let sock = check_socket();
            let rec = check_recovery();
            let moas = check_moas();
            if let Err(e) = wire.and(eng).and(sc).and(sock).and(rec).and(moas) {
                eprintln!("perf-report: FAIL: {e}");
                std::process::exit(1);
            }
            eprintln!("perf-report: OK");
        }
        _ => {
            // One parseable JSON value wrapping the reports (each
            // committed file keeps its own top-level shape).
            let wire = report.to_json();
            let engine = engine.to_json();
            let scale = scale.to_json();
            print!(
                "{{\n\"wire\": {},\n\"engine\": {},\n\"scale\": {}\n}}\n",
                wire.trim_end(),
                engine.trim_end(),
                scale.trim_end()
            );
        }
    }
}
