//! `bench_report` — the committed wire-path performance trajectory
//! behind `BENCH_wire.json` (DESIGN.md §7).
//!
//! Measures the serialization/allocation hot path at the largest
//! Figure-2 collection size, comparing the **current** implementation
//! against the **legacy** paths this PR replaced — both still live in
//! the tree ([`mqp_xml::parse_document`] is the lenient parser,
//! `serialize(&plan_to_xml(..))` / `serialize(&mqp.to_xml())` the
//! tree-building serializers) — so the reported speedups are ratios
//! measured on the *same machine in the same run*, not absolute numbers
//! compared across hardware.
//!
//! Modes:
//!
//! * no args — print the JSON report to stdout;
//! * `--update` — rewrite `BENCH_wire.json` at the workspace root;
//! * `--check` — re-measure and fail (exit 1) unless the fresh
//!   speedups meet the committed floors (≥ 3× zero-copy parse, ≥ 2×
//!   per-hop serialize) and are within 20% of the committed ratios
//!   (the CI `perf-report` regression gate).

use std::time::Instant;

use mqp_algebra::codec::{plan_to_xml, to_wire};
use mqp_algebra::plan::{JoinCond, Plan};
use mqp_bench::{fig2_collection, fig2_songs};
use mqp_catalog::ServerId;
use mqp_core::{Action, Mqp, VisitRecord};

/// Largest Figure-2 collection size (see `exp_fig2_pipeline`).
const ITEMS: usize = 100_000;
/// Provenance depth of the benchmarked envelope: a mid-flight plan.
const VISITS: usize = 8;
/// Timing iterations per measurement (best-of, to shed scheduler noise).
const ITERS: usize = 5;

/// Speedup floors the PR committed to (also enforced by `--check`).
const PARSE_FLOOR: f64 = 3.0;
const SERIALIZE_FLOOR: f64 = 2.0;
/// Allowed drift versus the committed ratios before `--check` fails.
const DRIFT: f64 = 0.20;

fn fig2_plan() -> Plan {
    Plan::display(
        "client#0",
        Plan::join(
            JoinCond::on("album", "title"),
            Plan::data(fig2_songs(ITEMS / 10)),
            Plan::select("price < 10", Plan::data(fig2_collection(ITEMS))),
        ),
    )
}

fn envelope() -> Mqp {
    let mut m = Mqp::new(fig2_plan());
    for i in 0..VISITS {
        m.record(VisitRecord {
            server: ServerId::new(format!("server-{i}")),
            action: if i == 0 {
                Action::Bound
            } else {
                Action::Forwarded
            },
            detail: format!("hop {i}: urn:ForSale:Portland-CDs -> mqp://seller-{i}/"),
            at: i as u64 * 1_000,
            staleness: 0,
        });
    }
    m
}

/// Best-of-`ITERS` wall time of `f`, in seconds.
fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn mb_per_s(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs
}

struct Report {
    wire_bytes: usize,
    envelope_bytes: usize,
    parse_legacy_mb_s: f64,
    parse_zero_copy_mb_s: f64,
    ser_legacy_mb_s: f64,
    ser_direct_mb_s: f64,
    hop_ser_legacy_us: f64,
    hop_ser_cached_us: f64,
    hop_legacy_us: f64,
    hop_zero_copy_us: f64,
    fig2_pipeline_s: f64,
    routing_slice_s: f64,
}

impl Report {
    fn parse_speedup(&self) -> f64 {
        self.parse_zero_copy_mb_s / self.parse_legacy_mb_s
    }
    fn serialize_speedup(&self) -> f64 {
        self.hop_ser_legacy_us / self.hop_ser_cached_us
    }
    fn plan_serialize_speedup(&self) -> f64 {
        self.ser_direct_mb_s / self.ser_legacy_mb_s
    }
    fn hop_speedup(&self) -> f64 {
        self.hop_legacy_us / self.hop_zero_copy_us
    }

    fn to_json(&self) -> String {
        // Hand-rolled (the workspace is dependency-free): two decimal
        // places keep diffs readable; machine-dependent absolutes are
        // informational, the speedup ratios are the contract.
        use std::fmt::Write;
        let mut out = String::new();
        let mut section = |name: &str, fields: &[(&str, String)], last: bool| {
            let _ = writeln!(out, "  \"{name}\": {{");
            for (i, (k, v)) in fields.iter().enumerate() {
                let comma = if i + 1 < fields.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{k}\": {v}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        };
        let f = |x: f64| format!("{x:.2}");
        let s = |x: f64| format!("{x:.3}");
        section(
            "workload",
            &[
                ("items", ITEMS.to_string()),
                ("visits", VISITS.to_string()),
                ("plan_wire_bytes", self.wire_bytes.to_string()),
                ("envelope_wire_bytes", self.envelope_bytes.to_string()),
            ],
            false,
        );
        section(
            "parse",
            &[
                ("legacy_mb_s", f(self.parse_legacy_mb_s)),
                ("zero_copy_mb_s", f(self.parse_zero_copy_mb_s)),
                ("speedup", f(self.parse_speedup())),
            ],
            false,
        );
        section(
            "plan_serialize",
            &[
                ("legacy_tree_mb_s", f(self.ser_legacy_mb_s)),
                ("direct_mb_s", f(self.ser_direct_mb_s)),
                ("speedup", f(self.plan_serialize_speedup())),
            ],
            false,
        );
        section(
            "per_hop_serialize",
            &[
                ("legacy_us", f(self.hop_ser_legacy_us)),
                ("cached_us", f(self.hop_ser_cached_us)),
                ("speedup", f(self.serialize_speedup())),
            ],
            false,
        );
        section(
            "per_hop_envelope",
            &[
                ("legacy_us", f(self.hop_legacy_us)),
                ("zero_copy_us", f(self.hop_zero_copy_us)),
                ("speedup", f(self.hop_speedup())),
            ],
            false,
        );
        section(
            "end_to_end",
            &[
                ("fig2_pipeline_s", s(self.fig2_pipeline_s)),
                ("routing_slice_s", s(self.routing_slice_s)),
            ],
            false,
        );
        section(
            "floors",
            &[
                ("parse_speedup_min", f(PARSE_FLOOR)),
                ("per_hop_serialize_speedup_min", f(SERIALIZE_FLOOR)),
            ],
            true,
        );
        format!("{{\n  \"schema\": \"bench_wire/v1\",\n{out}}}\n")
    }
}

fn measure() -> Report {
    let plan = fig2_plan();
    let wire = to_wire(&plan);
    let wire_bytes = wire.len();

    // Parse throughput, measured on the envelope a hop actually
    // receives (Figure 2's parse stage): the pre-PR tree path —
    // lenient recursive-descent parse + tree decode — vs the zero-copy
    // token walk (direct token→Plan decode, `<original>` validated but
    // materialized lazily).
    let env_wire = envelope().to_wire();
    let envelope_bytes = env_wire.len();
    let parse_legacy = time_best(|| {
        let root = mqp_xml::parse_document(&env_wire).expect("legacy parse");
        std::hint::black_box(Mqp::from_xml(&root).expect("legacy decode"));
    });
    let parse_zero_copy = time_best(|| {
        std::hint::black_box(Mqp::from_wire(&env_wire).expect("zero-copy decode"));
    });

    // Plan serialization: tree-building (clones every data item) vs
    // the direct writer.
    let ser_legacy = time_best(|| {
        std::hint::black_box(mqp_xml::serialize(&plan_to_xml(&plan)));
    });
    let ser_direct = time_best(|| {
        std::hint::black_box(to_wire(&plan));
    });

    // Per-hop re-serialization: the envelope arrived over the wire
    // (fragment caches seeded), the hop records one provenance visit
    // and ships the envelope on. Legacy rebuilds the whole XML tree;
    // the cached path serializes the new visit and splices everything
    // else.
    let mut arrived = Mqp::from_wire(&env_wire).expect("envelope reparses");
    arrived.record(VisitRecord {
        server: ServerId::new("bench-hop"),
        action: Action::Forwarded,
        detail: "to next".to_owned(),
        at: 99_000,
        staleness: 0,
    });
    let hop_ser_legacy = time_best(|| {
        std::hint::black_box(mqp_xml::serialize(&arrived.to_xml()));
    });
    let hop_ser_cached = time_best(|| {
        std::hint::black_box(arrived.to_wire());
    });

    // Whole hop: parse + record + serialize, both stacks.
    let visit = VisitRecord {
        server: ServerId::new("bench-hop-2"),
        action: Action::Forwarded,
        detail: "onward".to_owned(),
        at: 100_000,
        staleness: 0,
    };
    let hop_legacy = time_best(|| {
        let root = mqp_xml::parse_document(&env_wire).expect("parse");
        let mut m = Mqp::from_xml(&root).expect("decode");
        m.record(visit.clone());
        std::hint::black_box(mqp_xml::serialize(&m.to_xml()));
    });
    let hop_zero_copy = time_best(|| {
        let mut m = Mqp::from_wire(&env_wire).expect("decode");
        m.record(visit.clone());
        std::hint::black_box(m.to_wire());
    });

    // End-to-end slices (current code only; informational trend data).
    let fig2_pipeline_s = time_best(|| {
        let parsed = mqp_algebra::codec::from_wire(&wire).expect("reparse");
        let mut rewritten = parsed;
        mqp_core::rewrite::normalize(&mut rewritten);
        let result = mqp_engine::eval_const(&rewritten).expect("evaluate");
        std::hint::black_box(to_wire(&Plan::data(result)));
    });
    let routing_slice_s = time_best(|| {
        use mqp_workloads::garage::{build, random_query, GarageConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut w = build(GarageConfig {
            sellers: 40,
            items_per_seller: 8,
            ..GarageConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let q = random_query(&mut rng, Some(80.0));
            w.harness.submit(w.client, q);
            w.harness.run(100_000);
        }
        std::hint::black_box(w.harness.completed().len());
    });

    Report {
        wire_bytes,
        envelope_bytes,
        parse_legacy_mb_s: mb_per_s(wire_bytes, parse_legacy),
        parse_zero_copy_mb_s: mb_per_s(wire_bytes, parse_zero_copy),
        ser_legacy_mb_s: mb_per_s(wire_bytes, ser_legacy),
        ser_direct_mb_s: mb_per_s(wire_bytes, ser_direct),
        hop_ser_legacy_us: hop_ser_legacy * 1e6,
        hop_ser_cached_us: hop_ser_cached * 1e6,
        hop_legacy_us: hop_legacy * 1e6,
        hop_zero_copy_us: hop_zero_copy * 1e6,
        fig2_pipeline_s,
        routing_slice_s,
    }
}

fn committed_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wire.json")
}

/// Pulls `"key": <number>` out of `section` in our own JSON shape.
fn json_f64(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\""))?;
    let rest = &rest[k + key.len() + 2..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

fn check(report: &Report) -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_path())
        .map_err(|e| format!("cannot read committed BENCH_wire.json: {e}"))?;
    // Shape: every section this binary writes must exist in the
    // committed file (a missing section means the schema drifted
    // without refreshing the baseline).
    for (section, key) in [
        ("workload", "items"),
        ("parse", "speedup"),
        ("plan_serialize", "speedup"),
        ("per_hop_serialize", "speedup"),
        ("per_hop_envelope", "speedup"),
        ("end_to_end", "fig2_pipeline_s"),
        ("floors", "parse_speedup_min"),
    ] {
        if json_f64(&committed, section, key).is_none() {
            return Err(format!(
                "committed BENCH_wire.json is missing {section}.{key}; \
                 regenerate it with `bench_report --update`"
            ));
        }
    }
    let mut failures = Vec::new();
    let mut gate = |name: &str, fresh: f64, floor: f64| {
        let committed_ratio = json_f64(&committed, name, "speedup").unwrap_or(floor);
        // The committed ratio is capped before applying the drift
        // tolerance: when a metric sits far above its floor (the
        // splice-vs-rebuild ratio is two orders of magnitude), a
        // machine-to-machine wobble in a huge ratio is noise, not a
        // regression — but collapsing back toward the floor still is.
        let min_allowed = floor.max(committed_ratio.min(4.0 * floor) * (1.0 - DRIFT));
        eprintln!(
            "perf-report: {name}: fresh {fresh:.2}x (committed {committed_ratio:.2}x, \
             floor {floor:.1}x, regression gate {min_allowed:.2}x)"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "{name} speedup {fresh:.2}x below gate {min_allowed:.2}x"
            ));
        }
    };
    gate("parse", report.parse_speedup(), PARSE_FLOOR);
    gate(
        "per_hop_serialize",
        report.serialize_speedup(),
        SERIALIZE_FLOOR,
    );
    // The remaining ratios have no hard floor but must not collapse
    // versus the committed trajectory.
    for (name, fresh) in [
        ("plan_serialize", report.plan_serialize_speedup()),
        ("per_hop_envelope", report.hop_speedup()),
    ] {
        let committed_ratio = json_f64(&committed, name, "speedup").unwrap_or(1.0);
        let min_allowed = committed_ratio * (1.0 - DRIFT);
        eprintln!(
            "perf-report: {name}: fresh {fresh:.2}x (committed {committed_ratio:.2}x, \
             regression gate {min_allowed:.2}x)"
        );
        if fresh < min_allowed {
            failures.push(format!(
                "{name} speedup {fresh:.2}x regressed >20% vs committed {committed_ratio:.2}x"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let report = measure();
    match mode.as_str() {
        "--update" => {
            std::fs::write(committed_path(), report.to_json()).expect("write BENCH_wire.json");
            eprintln!(
                "bench_report: wrote {} (parse {:.2}x, per-hop serialize {:.2}x)",
                committed_path().display(),
                report.parse_speedup(),
                report.serialize_speedup(),
            );
        }
        "--check" => {
            if let Err(e) = check(&report) {
                eprintln!("perf-report: FAIL: {e}");
                std::process::exit(1);
            }
            eprintln!("perf-report: OK");
        }
        _ => print!("{}", report.to_json()),
    }
}
