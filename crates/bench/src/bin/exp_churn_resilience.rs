//! E11 — churn resilience: recall and provenance-audit integrity as
//! message loss and peer churn grow, MQP catalog routing (with the
//! timeout/retry + Or-alternative fallback of DESIGN.md §6) vs. the
//! flooding and Chord baselines under the *same* deterministic fault
//! schedule.
//!
//! The paper's mobility argument (§2, §5.1) is that any peer can parse,
//! mutate, and forward an MQP; this experiment exercises that claim
//! under the conditions that make P2P hard. Two runs with the same seed
//! produce byte-identical output — enforced by the `sim-stress` CI job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_baselines::{Chord, Flooding};
use mqp_bench::{f2, mean, print_table};
use mqp_namespace::{Cell, InterestArea};
use mqp_net::{FaultPlan, NodeId, Topology};
use mqp_peer::RetryPolicy;
use mqp_workloads::garage::{build, true_holders, GarageConfig, CATEGORIES, CITIES};

/// Per-message loss probability — nonzero at every churn rate.
const LOSS: f64 = 0.02;
/// Delay jitter bound (fraction of base transit time).
const JITTER: f64 = 0.5;
/// Per-message duplication probability.
const DUPLICATE: f64 = 0.01;
/// Crash downtime before a churned peer rejoins (µs).
const DOWNTIME_US: u64 = 5_000_000;
/// Horizon churn events are spread over (µs).
const HORIZON_US: u64 = 60_000_000;
/// Master seed; every derived RNG and fault plan hangs off it.
const SEED: u64 = 0xC1D8;

fn key(city: &str, cat: &str) -> String {
    format!("{city}|{cat}")
}

fn main() {
    let golden = mqp_bench::golden_scale();
    // ≥ 500 simulated peers at full scale (1 client + 2 meta + 8 index
    // + sellers).
    let sellers = if golden { 69 } else { 520 };
    let n = 1 + 2 + 8 + sellers;
    let queries = if golden { 10 } else { 40 };
    let churn_rates: &[f64] = &[0.0, 0.1, 0.25, 0.5];

    // One shared query stream: (city, category) cells.
    let mut qrng = StdRng::seed_from_u64(SEED ^ 1);
    let cells: Vec<(String, String)> = (0..queries)
        .map(|_| {
            (
                CITIES[qrng.gen_range(0..CITIES.len())].to_owned(),
                CATEGORIES[qrng.gen_range(0..CATEGORIES.len())].to_owned(),
            )
        })
        .collect();

    let mut rows = Vec::new();
    for (ri, &rate) in churn_rates.iter().enumerate() {
        let plan_seed = SEED.wrapping_add(ri as u64);
        // Crashable population: everything but the client (node 0) and
        // the meta-index servers (nodes 1–2) — those model the §3.2
        // well-known bootstrap infrastructure.
        let eligible: Vec<NodeId> = (3..n).collect();
        let crashes = (eligible.len() as f64 * rate) as usize;
        let fault_plan = || {
            FaultPlan::new(plan_seed)
                .with_loss(LOSS)
                .with_jitter(JITTER)
                .with_duplication(DUPLICATE)
                .with_generated_churn(&eligible, crashes, HORIZON_US, DOWNTIME_US)
        };

        // --- MQP catalog routing, with retry + Or fallback ---
        {
            let mut w = build(GarageConfig {
                sellers,
                items_per_seller: 3,
                index_servers: 8,
                meta_servers: 2,
                seed: 1,
            });
            w.harness.retry = Some(RetryPolicy {
                timeout_us: 300_000,
                max_retries: 3,
            });
            w.harness.net.set_fault_plan(fault_plan());
            let mut recall = Vec::new();
            let mut audits = (0u64, 0u64); // (clean, audited)
            let mut failed = 0u64;
            let mut stranded = 0u64;
            for (city, cat) in &cells {
                let area = InterestArea::of(Cell::parse([city.as_str(), cat.as_str()]));
                let truth = true_holders(&w, &area);
                w.harness
                    .submit(w.client, mqp_workloads::garage::query_for(city, cat, None));
                w.harness.run(10_000_000);
                let Some(out) = w.harness.take_completed().pop() else {
                    stranded += 1;
                    recall.push(0.0);
                    continue;
                };
                if out.failure.is_some() {
                    failed += 1;
                }
                let sellers_seen: std::collections::BTreeSet<String> =
                    out.items.iter().filter_map(|i| i.field("seller")).collect();
                let r = if truth.is_empty() {
                    1.0
                } else {
                    truth
                        .iter()
                        .filter(|t| sellers_seen.contains(w.harness.peer(**t).id().as_str()))
                        .count() as f64
                        / truth.len() as f64
                };
                recall.push(r);
                if let Some(clean) = out.audit_clean {
                    audits.1 += 1;
                    if clean {
                        audits.0 += 1;
                    }
                }
            }
            let st = w.harness.net.stats();
            rows.push(vec![
                "catalog (MQP)".to_owned(),
                f2(rate),
                f2(mean(&recall)),
                format!("{}/{}", audits.0, audits.1),
                (failed + stranded).to_string(),
                st.retries.to_string(),
                (st.messages_dropped + st.messages_lost).to_string(),
                st.messages_duplicated.to_string(),
            ]);
        }

        // Common content placement for the discovery baselines.
        let mut prng = StdRng::seed_from_u64(SEED ^ 2);
        let placement: Vec<(NodeId, String, String)> = (1..n)
            .map(|node| {
                (
                    node,
                    CITIES[prng.gen_range(0..CITIES.len())].to_owned(),
                    CATEGORIES[prng.gen_range(0..CATEGORIES.len())].to_owned(),
                )
            })
            .collect();

        // --- Gnutella flooding, horizon 4 ---
        {
            // Index construction runs fault-free for every architecture
            // (the MQP catalog is likewise registered at build time);
            // the fault schedule starts with the query phase.
            let mut f = Flooding::new(Topology::uniform(n, 20_000), 4, 3);
            for (node, city, cat) in &placement {
                f.publish(*node, &key(city, cat));
            }
            let mut f = f.with_faults(fault_plan());
            let mut recall = Vec::new();
            for (city, cat) in &cells {
                let k = key(city, cat);
                let truth = f.truth(&k);
                let r = f.query(0, &k, 4);
                recall.push(r.recall(&truth));
            }
            let st = f.stats();
            rows.push(vec![
                "flooding h=4".to_owned(),
                f2(rate),
                f2(mean(&recall)),
                "-".to_owned(),
                "-".to_owned(),
                st.retries.to_string(),
                (st.messages_dropped + st.messages_lost).to_string(),
                st.messages_duplicated.to_string(),
            ]);
        }

        // --- Chord DHT ---
        {
            let mut c = Chord::new(Topology::uniform(n, 20_000));
            for (node, city, cat) in &placement {
                c.publish(*node, &key(city, cat));
            }
            let mut c = c.with_faults(fault_plan());
            let mut recall = Vec::new();
            for (city, cat) in &cells {
                let k = key(city, cat);
                let truth = c.truth(&k);
                let r = c.query(0, &k);
                recall.push(r.recall(&truth));
            }
            let st = c.stats();
            rows.push(vec![
                "chord DHT".to_owned(),
                f2(rate),
                f2(mean(&recall)),
                "-".to_owned(),
                "-".to_owned(),
                st.retries.to_string(),
                (st.messages_dropped + st.messages_lost).to_string(),
                st.messages_duplicated.to_string(),
            ]);
        }
    }

    print_table(
        &format!(
            "churn resilience: {n} peers, {queries} queries, loss {LOSS}, \
             jitter {JITTER}, duplication {DUPLICATE}",
        ),
        &[
            "architecture",
            "churn",
            "recall",
            "audit ok",
            "failed",
            "retries",
            "drop+loss",
            "dups",
        ],
        &rows,
    );
    println!(
        "\nshape check (§2/§5.1 under adversity): catalog routing keeps \
         completing queries through crashes — timeouts re-route around \
         dead hops via the catalog's Or-alternatives, every detour is \
         provenance-visible, and completed queries stay audit-clean; \
         flooding's redundancy buys recall at high message cost; the \
         DHT's single path per key makes it brittle once successors \
         churn."
    );
}
