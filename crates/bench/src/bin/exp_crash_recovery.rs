//! E14 — crash recovery: the durable catalog's WAL + snapshot machinery
//! (DESIGN.md §12) under a seeded kill-point sweep, and the recall it
//! buys a peer-to-peer world whose index peers power-cycle mid-run.
//!
//! **Phase A — kill-point sweep.** A stream of catalog ops (unique
//! registrations plus URN mappings) is journaled into a
//! [`DurableCatalog`] over a seeded [`FaultyDisk`], then killed at every
//! sweep point under three fault classes:
//!
//! * **post-fsync** — every op synced before the kill; recovery must
//!   find 100% of the logged bindings (the ≥99% CI gate).
//! * **torn tail** — sync every 8 ops, crash keeps a seeded *prefix* of
//!   the unsynced tail, tearing a record mid-write; recovery truncates
//!   at the tear.
//! * **corrupt read** — replay sees one seeded byte flipped; the CRC
//!   catches it and recovery truncates at the damaged record.
//!
//! Every trial additionally checks *prefix consistency*: the recovered
//! catalog must equal a replay of exactly the first `k` ops for some
//! `k` — never a blend, never an invented binding. Replay cost is
//! measured over a large WAL at full scale.
//!
//! **Phase B — recall under churn.** Two identical sim worlds (client,
//! meta index, seller pairs) run the same power-cycle schedule — the
//! meta index and every even seller crash and restart — differing only
//! in the disk behind each peer's journal: [`MemDisk`] (durable arm)
//! vs [`NullDisk`] (baseline arm: accepts every write, persists
//! nothing, recovery finds an empty catalog — the pre-durability
//! semantics run through the identical code path). Post-churn recall
//! and rereg traffic are compared; the network's message accounting
//! identity must stay exact (zero unaccounted frames).
//!
//! At full scale the results land in the `recovery` section of
//! `BENCH_threaded.json`, gated by `bench_report --check-recovery`.
//! The CI `crash-smoke` job runs this binary at `MQP_EXP_SCALE=golden`
//! twice, byte-identical.

use std::fmt::Write as _;
use std::time::Instant;

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_bench::{f2, fmt_ms, golden_scale, json_merge, print_table};
use mqp_catalog::durable::{CatalogOp, DurableCatalog, FaultyDisk, MemDisk, NullDisk, SharedDisk};
use mqp_catalog::{Catalog, CatalogEntry, ServerId};
use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::{DiskFaults, NodeId, Topology};
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

// ---------------------------------------------------------------------
// Phase A — kill-point sweep over a faulty disk
// ---------------------------------------------------------------------

/// The fault class a kill-point trial runs under.
#[derive(Clone, Copy)]
enum KillClass {
    /// Every op synced before the kill: nothing may be lost.
    PostFsync,
    /// Wide sync cadence + torn unsynced tail at the kill.
    TornTail,
    /// Replay sees one seeded flipped byte.
    CorruptRead,
}

impl KillClass {
    fn faults(self, seed: u64) -> DiskFaults {
        DiskFaults {
            seed,
            torn_tail: matches!(self, KillClass::TornTail),
            corrupt_read: matches!(self, KillClass::CorruptRead),
            sync_fail_period: 0,
        }
    }

    fn sync_every(self) -> usize {
        match self {
            // The torn class deliberately widens the crash-before-fsync
            // window so the kill has an unsynced tail to tear.
            KillClass::TornTail => 8,
            _ => 1,
        }
    }
}

fn sweep_area(i: usize) -> InterestArea {
    let city = format!("City-{:02}", i % 16);
    InterestArea::parse(&[&[city.as_str(), "Music/CDs"]])
}

/// The op stream: unique registrations with URN mappings mixed in, so
/// a recovered prefix is identifiable by exact catalog equality.
fn sweep_ops(n: usize) -> Vec<CatalogOp> {
    (0..n)
        .map(|i| {
            if i % 5 == 4 {
                CatalogOp::MapUrn {
                    urn: format!("urn:ForSale:lot-{i:04}"),
                    server: ServerId::new(format!("server-{i:04}")),
                    collection: None,
                }
            } else {
                CatalogOp::Register(CatalogEntry::base(format!("server-{i:04}"), sweep_area(i)))
            }
        })
        .collect()
}

/// One kill-point trial: journal `ops[..k]`, kill, recover. Returns
/// the number of ops recovery found and whether the recovered catalog
/// is exactly a prefix replay (no blends, no inventions).
fn trial(ops: &[CatalogOp], k: usize, class: KillClass, seed: u64) -> (usize, bool) {
    let disk = SharedDisk::new(FaultyDisk::new(class.faults(seed)));
    let mut dc = DurableCatalog::new(disk)
        .with_snapshot_every(0) // keep every op in the WAL: 1 record = 1 op
        .with_sync_every(class.sync_every());
    for op in &ops[..k] {
        let _ = dc.log(op);
    }
    dc.crash();
    let (recovered, report) = dc.recover().expect("recovery must not error");
    let applied = report.snapshot_records + report.wal_records;
    let mut expect = Catalog::new();
    for op in &ops[..applied.min(k)] {
        op.apply(&mut expect);
    }
    let consistent = applied <= k && recovered.snapshot_ops() == expect.snapshot_ops();
    (applied, consistent)
}

/// Sweeps kill points `stride, 2*stride, …` through the op stream for
/// one fault class; returns (mean recovered %, min recovered %, all
/// trials prefix-consistent).
fn sweep(ops: &[CatalogOp], stride: usize, class: KillClass) -> (f64, f64, bool) {
    let mut fractions = Vec::new();
    let mut consistent = true;
    let mut k = stride;
    while k <= ops.len() {
        let seed = 0xC0FF_EE00 ^ (k as u64).wrapping_mul(0x9E37_79B9);
        let (applied, ok) = trial(ops, k, class, seed);
        fractions.push(100.0 * applied as f64 / k as f64);
        consistent &= ok;
        k += stride;
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
    (mean, min, consistent)
}

/// Replay cost over a large clean WAL (timed; elided at golden scale).
fn replay_cost(n: usize) -> (usize, f64) {
    let ops = sweep_ops(n);
    let mut dc = DurableCatalog::new(SharedDisk::new(MemDisk::new()))
        .with_snapshot_every(0)
        .with_sync_every(64);
    for op in &ops {
        let _ = dc.log(op);
    }
    let _ = dc.flush();
    dc.crash();
    let t0 = Instant::now();
    let (_, report) = dc.recover().expect("clean replay");
    (report.wal_records, t0.elapsed().as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------
// Phase B — recall under churn: durable vs no-durability baseline
// ---------------------------------------------------------------------

fn city(p: usize) -> String {
    format!("USA/City-{p:03}")
}

fn pair_area(p: usize) -> InterestArea {
    InterestArea::parse(&[&[city(p).as_str(), "Music/CDs"]])
}

fn namespace(pairs: usize) -> Namespace {
    let mut loc = Hierarchy::new("Location");
    for p in 0..pairs {
        loc.add(city(p).as_str());
    }
    Namespace::new([loc, Hierarchy::new("Merchandise").with(["Music/CDs"])])
}

fn journal(durable: bool) -> DurableCatalog {
    if durable {
        DurableCatalog::new(SharedDisk::new(MemDisk::new()))
    } else {
        DurableCatalog::new(SharedDisk::new(NullDisk))
    }
}

/// client (node 0), meta (node 1), seller `j` at node `2 + j`; sellers
/// `2p`/`2p+1` share city `p`. Every peer journals its catalog; only
/// the disk behind the journal differs between the arms.
fn world(pairs: usize, durable: bool) -> SimHarness {
    let ns = namespace(pairs);
    let client = Peer::new("client", ns.clone()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns.clone());
    let mut sellers = Vec::with_capacity(2 * pairs);
    for j in 0..2 * pairs {
        let mut s = Peer::new(format!("seller-{j}"), ns.clone());
        s.add_collection(
            "cds",
            pair_area(j / 2),
            [Element::new("item")
                .child(Element::new("title").text(format!("Album-{j:04}")))
                .child(Element::new("price").text(format!("{}.99", j % 40)))],
        );
        // The seller knows its index — the rereg target after recovery.
        s.catalog_mut()
            .register(CatalogEntry::index("meta", pair_area(j / 2)));
        s.enable_durability(journal(durable));
        meta.catalog_mut().register(s.base_entry());
        sellers.push(s);
    }
    meta.enable_durability(journal(durable));
    let mut peers = vec![client, meta];
    peers.extend(sellers);
    let n = peers.len();
    SimHarness::new(Topology::uniform(n, 2_000), peers)
}

const META: NodeId = 1;

struct ChurnOutcome {
    recall_pct: f64,
    meta_recovered_pct: f64,
    rereg_frames: u64,
    unaccounted: i64,
}

/// The shared schedule: warm queries, power-cycle the meta index and
/// every even seller, then the post-churn workload — one area query
/// (needs the meta index's recovered registrations) and one direct URL
/// query (independent of them) per pair.
fn churn_run(pairs: usize, durable: bool) -> ChurnOutcome {
    let mut h = world(pairs, durable);
    for p in 0..pairs {
        h.submit(0, Plan::Urn(UrnRef::new(Urn::area(pair_area(p)))));
        h.run(100_000);
    }
    let warm = h.take_completed();
    assert_eq!(warm.len(), pairs, "warmup stranded a query");
    assert!(
        warm.iter().all(|q| q.failure.is_none()),
        "warmup must complete cleanly in both arms"
    );

    // Power-cycle: meta and every even seller crash...
    let meta_entries_before = h.peer(META).catalog().entries().len();
    h.crash_node(META);
    for p in 0..pairs {
        h.crash_node(2 + 2 * p);
    }
    // ...and restart, the index first so rereg announcements land on a
    // live listener. The message counter delta across the restarts is
    // exactly the rereg traffic.
    let sent_before = h.net.stats().messages_sent;
    h.restart_node(META);
    let meta_recovered = h.peer(META).catalog().entries().len();
    for p in 0..pairs {
        h.restart_node(2 + 2 * p);
    }
    let rereg_frames = h.net.stats().messages_sent - sent_before;
    h.run(100_000); // deliver the reregs

    for p in 0..pairs {
        h.submit(0, Plan::Urn(UrnRef::new(Urn::area(pair_area(p)))));
        h.run(100_000);
        h.submit(0, Plan::url(format!("mqp://seller-{}/", 2 * p + 1)));
        h.run(100_000);
    }
    let post = h.take_completed();
    assert_eq!(post.len(), 2 * pairs, "post-churn stranded a query");
    let ok = post.iter().filter(|q| q.failure.is_none()).count();

    let stats = h.net.stats().clone();
    let accounted = stats.messages_delivered + stats.messages_dropped + stats.messages_lost;
    ChurnOutcome {
        recall_pct: 100.0 * ok as f64 / post.len() as f64,
        meta_recovered_pct: 100.0 * meta_recovered as f64 / meta_entries_before.max(1) as f64,
        rereg_frames,
        unaccounted: stats.messages_sent as i64 - accounted as i64 - h.net.in_flight() as i64,
    }
}

fn main() {
    let golden = golden_scale();

    // --- Phase A ---
    let n_ops = if golden { 60 } else { 900 };
    let stride = if golden { 6 } else { 30 };
    let ops = sweep_ops(n_ops);
    let kill_points = n_ops / stride;
    let (clean_mean, clean_min, clean_ok) = sweep(&ops, stride, KillClass::PostFsync);
    let (torn_mean, torn_min, torn_ok) = sweep(&ops, stride, KillClass::TornTail);
    let (corrupt_mean, corrupt_min, corrupt_ok) = sweep(&ops, stride, KillClass::CorruptRead);
    let prefix_consistent = clean_ok && torn_ok && corrupt_ok;
    let (replay_records, replay_ms) = replay_cost(if golden { 2_000 } else { 50_000 });

    print_table(
        &format!("kill-point sweep: {n_ops} ops, {kill_points} kill points per class"),
        &[
            "fault class",
            "recovered % (mean)",
            "recovered % (min)",
            "prefix-consistent",
        ],
        &[
            vec![
                "post-fsync".into(),
                f2(clean_mean),
                f2(clean_min),
                if clean_ok { "yes" } else { "no" }.into(),
            ],
            vec![
                "torn tail".into(),
                f2(torn_mean),
                f2(torn_min),
                if torn_ok { "yes" } else { "no" }.into(),
            ],
            vec![
                "corrupt read".into(),
                f2(corrupt_mean),
                f2(corrupt_min),
                if corrupt_ok { "yes" } else { "no" }.into(),
            ],
        ],
    );
    println!(
        "\nreplay: {replay_records} WAL records in {} ms",
        fmt_ms(replay_ms)
    );

    // --- Phase B ---
    let pairs = if golden { 4 } else { 40 };
    let durable = churn_run(pairs, true);
    let baseline = churn_run(pairs, false);

    print_table(
        &format!(
            "recall under churn: {} peers, meta + {} sellers power-cycled",
            2 + 2 * pairs,
            pairs
        ),
        &["metric", "durable (WAL)", "baseline (no durability)"],
        &[
            vec![
                "post-churn recall %".into(),
                f2(durable.recall_pct),
                f2(baseline.recall_pct),
            ],
            vec![
                "meta bindings recovered %".into(),
                f2(durable.meta_recovered_pct),
                f2(baseline.meta_recovered_pct),
            ],
            vec![
                "rereg frames".into(),
                durable.rereg_frames.to_string(),
                baseline.rereg_frames.to_string(),
            ],
            vec![
                "unaccounted frames".into(),
                durable.unaccounted.to_string(),
                baseline.unaccounted.to_string(),
            ],
        ],
    );
    println!(
        "\nshape check (DESIGN.md §12): post-fsync kills recover every \
         binding; torn and corrupt kills recover an exact prefix — never \
         a blend. Under churn the durable arm's meta index replays its \
         journal and recovered sellers re-announce over rereg frames, so \
         recall returns to 100%; the baseline arm recovers nothing and \
         loses every index-dependent query, with the message accounting \
         identity exact in both arms."
    );

    assert!(clean_mean >= 99.0, "post-fsync recovery below gate");
    assert!(
        (clean_min - 100.0).abs() < f64::EPSILON,
        "post-fsync kill lost a binding"
    );
    assert!(
        prefix_consistent,
        "a recovered catalog was not a prefix replay"
    );
    assert_eq!(durable.unaccounted, 0, "durable arm leaked frames");
    assert_eq!(baseline.unaccounted, 0, "baseline arm leaked frames");
    assert!(
        durable.recall_pct >= baseline.recall_pct,
        "durability must not reduce recall"
    );
    assert!(
        durable.rereg_frames > 0,
        "recovered sellers must re-announce"
    );

    if !golden {
        let mut rec = String::from("{\n");
        let _ = writeln!(rec, "    \"wal_ops\": {n_ops},");
        let _ = writeln!(rec, "    \"kill_points_per_class\": {kill_points},");
        let _ = writeln!(rec, "    \"post_fsync_recovered_pct\": {clean_mean:.2},");
        let _ = writeln!(rec, "    \"torn_recovered_pct\": {torn_mean:.2},");
        let _ = writeln!(rec, "    \"corrupt_recovered_pct\": {corrupt_mean:.2},");
        let _ = writeln!(
            rec,
            "    \"prefix_consistent\": {},",
            i32::from(prefix_consistent)
        );
        let _ = writeln!(rec, "    \"replay_records\": {replay_records},");
        let _ = writeln!(rec, "    \"replay_ms\": {replay_ms:.2},");
        let _ = writeln!(
            rec,
            "    \"durable_recall_pct\": {:.2},",
            durable.recall_pct
        );
        let _ = writeln!(
            rec,
            "    \"baseline_recall_pct\": {:.2},",
            baseline.recall_pct
        );
        let _ = writeln!(rec, "    \"rereg_frames\": {},", durable.rereg_frames);
        let _ = writeln!(rec, "    \"unaccounted_frames\": {}", durable.unaccounted);
        rec.push_str("  }");
        let path =
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_threaded.json");
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|_| "{\n}\n".to_owned());
        std::fs::write(&path, json_merge::upsert_section(&doc, "recovery", &rec))
            .expect("write BENCH_threaded.json");
        println!("\nwrote recovery section to {}", path.display());
    }
}
