//! E8 — §4.3: the completeness / currency / latency tradeoff. A replica
//! R carries S's Portland data with a delay factor; the query issuer's
//! binary preference (current vs. fast) picks different Or-alternatives
//! with measurably different latency, staleness, and completeness.

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_bench::{f2, print_table};
use mqp_core::Policy;
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

fn ns() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["Portland"]),
        Hierarchy::new("Merchandise").with(["CDs"]),
    ])
}

fn area() -> InterestArea {
    InterestArea::of(Cell::parse(["Portland", "CDs"]))
}

fn cd(title: &str) -> Element {
    Element::new("item").child(Element::new("title").text(title))
}

/// Runs one query under a policy. `fresh_items` exist only at S (not
/// yet replicated to R). Returns (latency_ms, hops, items, staleness,
/// has_fresh).
fn run(policy: Policy, delay_minutes: u32) -> (f64, u64, usize, u32, bool) {
    let client = Peer::new("client", ns())
        .with_default_route("meta")
        .with_policy(policy);
    let mut meta = Peer::new("meta", ns()).with_policy(policy);
    let mut r = Peer::new("R", ns()).with_policy(policy);
    // R replicates S's older stock.
    r.add_collection("cds", area(), [cd("old-1"), cd("old-2"), cd("old-3")]);
    let mut s = Peer::new("S", ns()).with_policy(policy);
    s.add_collection(
        "cds",
        area(),
        [cd("old-1"), cd("old-2"), cd("old-3"), cd("fresh-today")],
    );
    meta.catalog_mut().register(r.base_entry());
    meta.catalog_mut().register(s.base_entry());
    meta.catalog_mut().add_statement(
        format!("base[Portland, *]@R >= base[Portland, *]@S{{{delay_minutes}}}")
            .parse()
            .unwrap(),
    );
    let mut h = SimHarness::new(
        // R is near the client (same cluster); S is across the WAN.
        Topology::clustered(4, 2, 2_000, 80_000),
        vec![client, meta, r, s],
    );
    h.submit(0, Plan::Urn(UrnRef::new(Urn::area(area()))));
    h.run(1_000_000);
    let q = h.take_completed().pop().unwrap();
    assert!(q.failure.is_none(), "{:?}", q.failure);
    let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
    titles.sort();
    titles.dedup();
    let has_fresh = titles.iter().any(|t| t == "fresh-today");
    // Worst-case staleness comes from the Or alternative the plan
    // committed; approximate from which servers answered.
    let staleness = if has_fresh { 0 } else { delay_minutes };
    (
        q.latency_us as f64 / 1000.0,
        q.hops,
        titles.len(),
        staleness,
        has_fresh,
    )
}

fn main() {
    let mut rows = Vec::new();
    for &delay in &[5u32, 30, 120] {
        for (label, policy) in [
            ("current", Policy::current()),
            ("fast", Policy::fast()),
            ("fast, cap 10 min", Policy::fast().with_max_staleness(10)),
        ] {
            let (lat, hops, items, staleness, fresh) = run(policy, delay);
            rows.push(vec![
                delay.to_string(),
                label.to_string(),
                f2(lat),
                hops.to_string(),
                items.to_string(),
                staleness.to_string(),
                if fresh { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    print_table(
        "currency vs latency (replica R near client, source S across WAN)",
        &[
            "replica delay (min)",
            "preference",
            "latency ms",
            "hops",
            "distinct items",
            "answer staleness",
            "sees today's item",
        ],
        &rows,
    );
    println!(
        "\nshape check: 'fast' stops at the nearby replica — lowest \
         latency, bounded staleness, misses the not-yet-replicated item; \
         'current' pays the WAN round trip for the complete, fresh \
         answer. A staleness cap under the replica's delay forces the \
         fast policy back to the current route (§4.3's fixed time budget \
         + binary preference)."
    );
}
