//! E1 — Figure 1 ("Of Mice and Men"): interest-area routing over the
//! gene-expression namespace. Regenerates the figure's routing decision
//! table and measures that the irrelevant repository receives zero
//! traffic.

use mqp_bench::print_table;
use mqp_workloads::gene::{build, cardiac_mammal_area, cardiac_query, group_areas};

fn main() {
    let q = cardiac_mammal_area();
    let rows: Vec<Vec<String>> = group_areas()
        .iter()
        .map(|(name, area)| {
            vec![
                name.to_string(),
                area.to_string(),
                if area.overlaps(&q) { "route" } else { "skip" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 1: routing a [Mammalia, Muscle/Cardiac] query",
        &["repository", "interest area", "decision"],
        &rows,
    );

    for records in [5usize, 50, 500] {
        let (mut h, client) = build(records);
        h.submit(client, cardiac_query());
        h.run(1_000_000);
        let done = h.take_completed();
        let qd = &done[0];
        let stats = h.net.stats();
        print_table(
            &format!("measured run ({records} records/cell)"),
            &["metric", "value"],
            &[
                vec!["records returned".into(), qd.items.len().to_string()],
                vec!["hops".into(), qd.hops.to_string()],
                vec!["MQP bytes".into(), qd.mqp_bytes.to_string()],
                vec![
                    "latency (ms)".into(),
                    format!("{:.1}", qd.latency_us as f64 / 1000.0),
                ],
                vec![
                    "messages to fly-lab".into(),
                    stats.per_node[2].1.to_string(),
                ],
                vec![
                    "failure".into(),
                    qd.failure.clone().unwrap_or_else(|| "none".into()),
                ],
            ],
        );
        assert_eq!(stats.per_node[2].1, 0, "fly-lab must receive nothing");
    }
}
