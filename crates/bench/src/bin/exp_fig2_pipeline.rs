//! E2 — Figure 2: per-stage costs of the mutant query processing
//! pipeline (parse → bind → optimize/rewrite → evaluate → serialize),
//! swept over collection size.

use std::time::Instant;

use mqp_algebra::codec::{from_wire, to_wire};
use mqp_algebra::plan::{JoinCond, Plan};
use mqp_bench::{fmt_ms, print_table};
use mqp_core::rewrite;
use mqp_engine::eval_const;
use mqp_xml::Element;

fn collection(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{:05}", i % (n / 2 + 1))))
                .child(Element::new("price").text(format!("{}.99", i % 40)))
        })
        .collect()
}

fn songs(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            Element::new("song")
                .child(Element::new("album").text(format!("Album-{:05}", i * 3 % (n + 1))))
        })
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    // Golden scale: small sweep, wall-clock columns elided (fmt_ms) so
    // the snapshot is byte-identical across machines.
    let sizes: &[usize] = if mqp_bench::golden_scale() {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    for &n in sizes {
        // The Figure-3 shape with data inlined: join + select.
        let plan = Plan::display(
            "client#0",
            Plan::join(
                JoinCond::on("album", "title"),
                Plan::data(songs(n / 10)),
                Plan::select("price < 10", Plan::data(collection(n))),
            ),
        );

        let t0 = Instant::now();
        let wire = to_wire(&plan);
        let t_serialize = t0.elapsed();

        let t0 = Instant::now();
        let parsed = from_wire(&wire).expect("reparse");
        let t_parse = t0.elapsed();

        let mut rewritten = parsed.clone();
        let t0 = Instant::now();
        rewrite::normalize(&mut rewritten);
        let _ = mqp_engine::estimate(&rewritten);
        let t_optimize = t0.elapsed();

        let t0 = Instant::now();
        let result = eval_const(&rewritten).expect("evaluate");
        let t_eval = t0.elapsed();

        let t0 = Instant::now();
        let out = to_wire(&Plan::data_shared(result.clone()));
        let t_reserialize = t0.elapsed();

        rows.push(vec![
            n.to_string(),
            wire.len().to_string(),
            fmt_ms(t_parse.as_secs_f64() * 1e3),
            fmt_ms(t_optimize.as_secs_f64() * 1e3),
            fmt_ms(t_eval.as_secs_f64() * 1e3),
            fmt_ms((t_serialize + t_reserialize).as_secs_f64() * 1e3),
            result.len().to_string(),
            out.len().to_string(),
        ]);
    }
    print_table(
        "Figure 2: pipeline stage costs (ms) vs collection size",
        &[
            "items",
            "plan bytes",
            "parse",
            "optimize",
            "evaluate",
            "serialize",
            "result rows",
            "result bytes",
        ],
        &rows,
    );
    println!(
        "\nshape check: every stage scales roughly linearly; parse and \
         serialize dominate at large collection sizes (the XML tax the \
         paper accepts for plan mobility)."
    );
}
