//! E3 — Figures 3–4: hop-by-hop trace of a mutant query's evaluation —
//! plan size, node count, and the mutation each server applied, from
//! submission to the fully evaluated result.

use mqp_bench::print_table;
use mqp_core::{Mqp, Outcome};
use mqp_workloads::cd::{build, CdConfig};

fn main() {
    let world = build(CdConfig::default());
    let mut mqp = Mqp::new(mqp_algebra::plan::Plan::display(
        "client#0",
        world.plan.clone(),
    ));

    let mut rows = Vec::new();
    rows.push(vec![
        "client".to_string(),
        "submit".to_string(),
        mqp.plan().node_count().to_string(),
        mqp.wire_size().to_string(),
        mqp.plan().urns().len().to_string(),
        mqp.plan().urls().len().to_string(),
    ]);

    // Walk the MQP by hand through the same peers the harness would
    // use, recording the envelope after each server.
    // Hop order: meta (binds both URNs) → trackdb → sellers…
    let mut current = "meta".to_string();
    for _hop in 0..10 {
        let node = (0..world.harness.len())
            .find(|&n| world.harness.peer(n).id().as_str() == current)
            .expect("peer exists");
        let peer = world.harness.peer(node);
        let outcome = peer.process(&mut mqp);
        let action = mqp
            .provenance()
            .iter()
            .rev()
            .take_while(|v| v.server.as_str() == current)
            .map(|v| v.action.name())
            .collect::<Vec<_>>()
            .join("+");
        rows.push(vec![
            current.clone(),
            if action.is_empty() {
                "—".into()
            } else {
                action
            },
            mqp.plan().node_count().to_string(),
            mqp.wire_size().to_string(),
            mqp.plan().urns().len().to_string(),
            mqp.plan().urls().len().to_string(),
        ]);
        match outcome {
            Outcome::Complete { items, .. } => {
                rows.push(vec![
                    "→ client".into(),
                    format!("result: {} tuples", items.len()),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                break;
            }
            Outcome::Forward { to } => current = to.as_str().to_owned(),
            Outcome::Stuck { reason } => {
                rows.push(vec![
                    current.clone(),
                    format!("STUCK: {reason}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                break;
            }
        }
    }

    print_table(
        "Figures 3-4: mutant query evaluation trace (CD search)",
        &[
            "server",
            "mutation",
            "plan nodes",
            "wire bytes",
            "URNs",
            "URLs",
        ],
        &rows,
    );

    println!("\nprovenance trail:");
    for v in mqp.provenance() {
        println!(
            "  t={:<6} {:<10} {:<9} {}",
            v.at,
            v.server,
            v.action.name(),
            v.detail
        );
    }
}
