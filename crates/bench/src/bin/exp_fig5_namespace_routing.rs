//! E4 — Figure 5 / §3.4: routing with the 2-dimension garage-sale
//! namespace as the network grows, and the effect of route caches.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mqp_bench::{f2, mean, print_table};
use mqp_workloads::garage::{build, random_query, GarageConfig};

fn main() {
    let mut rows = Vec::new();
    let (populations, queries): (&[usize], usize) = if mqp_bench::golden_scale() {
        (&[10, 50, 200], 10)
    } else {
        (&[10, 50, 200, 1000], 25)
    };
    for &sellers in populations {
        for &warm in &[false, true] {
            let mut w = build(GarageConfig {
                sellers,
                items_per_seller: 5,
                index_servers: 8,
                meta_servers: 2,
                seed: 42,
            });
            w.harness.cache_learning = warm;
            // Warm round first (same query mix) when caches are on.
            let rounds = if warm { 2 } else { 1 };
            let mut hops = Vec::new();
            let mut bytes = Vec::new();
            let mut lat = Vec::new();
            let mut found = 0usize;
            let mut total = 0usize;
            for round in 0..rounds {
                let mut rng = StdRng::seed_from_u64(7);
                for _ in 0..queries {
                    let q = random_query(&mut rng, Some(100.0));
                    w.harness.submit(w.client, q);
                    w.harness.run(10_000_000);
                }
                let outcomes = w.harness.take_completed();
                if round + 1 == rounds {
                    for q in &outcomes {
                        total += 1;
                        if q.failure.is_none() {
                            found += 1;
                            hops.push(q.hops as f64);
                            bytes.push(q.mqp_bytes as f64);
                            lat.push(q.latency_us as f64 / 1000.0);
                        }
                    }
                }
            }
            rows.push(vec![
                sellers.to_string(),
                if warm { "warm" } else { "cold" }.to_string(),
                format!("{found}/{total}"),
                f2(mean(&hops)),
                f2(mean(&bytes) / 1024.0),
                f2(mean(&lat)),
            ]);
        }
    }
    print_table(
        &format!("Figure 5 / §3.4: namespace routing vs network size ({queries} queries)"),
        &[
            "sellers",
            "caches",
            "answered",
            "mean hops",
            "mean MQP KiB",
            "mean latency ms",
        ],
        &rows,
    );
    println!(
        "\nshape check: the *routing* hops (client -> binding server) stay \
         flat as the population grows — the catalog walks the namespace \
         hierarchy, not the peer list. Total hops grow only with the \
         number of matching sellers, because a mutant plan visits holders \
         serially (the pipelining tradeoff of §2). Warm route caches \
         (§3.4) skip the meta-index wandering and shave ~1 hop plus the \
         associated bytes per query."
    );
}
