//! E10 — §3.2: the index-detail tradeoff. "There is a tradeoff between
//! a server's index area, and the detail of the indices it maintains…
//! Meta-index servers can afford to cover much larger interest areas
//! than index servers, because they only maintain multi-hierarchic
//! namespace indices."
//!
//! We sweep how many city-level index servers exist (0 = meta-only
//! routing) and measure catalog sizes, registration traffic, and query
//! routing cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mqp_bench::{f2, mean, print_table};
use mqp_workloads::garage::{build, random_query, GarageConfig};

fn main() {
    let mut rows = Vec::new();
    for &index_servers in &[0usize, 2, 4, 8] {
        let mut w = build(GarageConfig {
            sellers: 120,
            items_per_seller: 4,
            index_servers,
            meta_servers: 2,
            seed: 42,
        });
        // Catalog footprint: the *hotspot* — the largest catalog any
        // single routing server must maintain and keep updated.
        let hotspot_catalog: usize = (1..1 + 2 + index_servers)
            .map(|n| w.harness.peer(n).catalog().size())
            .max()
            .unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut hops, mut bytes, mut lat) = (Vec::new(), Vec::new(), Vec::new());
        let mut answered = 0usize;
        for _ in 0..25 {
            let q = random_query(&mut rng, None);
            w.harness.submit(w.client, q);
            w.harness.run(10_000_000);
        }
        for q in w.harness.take_completed() {
            if q.failure.is_none() {
                answered += 1;
                hops.push(q.hops as f64);
                bytes.push(q.mqp_bytes as f64 / 1024.0);
                lat.push(q.latency_us as f64 / 1000.0);
            }
        }
        rows.push(vec![
            index_servers.to_string(),
            hotspot_catalog.to_string(),
            format!("{answered}/25"),
            f2(mean(&hops)),
            f2(mean(&bytes)),
            f2(mean(&lat)),
        ]);
    }
    print_table(
        "index detail vs routing cost (120 sellers, 25 queries)",
        &[
            "city index servers",
            "hotspot catalog entries",
            "answered",
            "mean hops",
            "mean MQP KiB",
            "mean latency ms",
        ],
        &rows,
    );
    println!(
        "\nshape check: with no city indexes every seller registers at the \
         country meta servers — one fat catalog hotspot that must absorb \
         every update; adding city-level index servers spreads the \
         entries (hotspot shrinks) at the price of ~1 extra routing hop \
         through the added level. That is §3.2's tradeoff: richer, \
         narrower indexes route from smaller catalogs; broad meta-index \
         coverage concentrates state."
    );
}
