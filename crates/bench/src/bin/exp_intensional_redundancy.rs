//! E7 — §4.1–4.2 (Examples 1–3): intensional statements eliminate
//! redundant server visits. Replicated catalogs with and without the
//! statements; the binding alternatives license single-site routes.

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_bench::{f2, print_table};
use mqp_catalog::ServerId;
use mqp_core::Policy;
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

fn ns() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["Oregon/Portland", "Oregon/Eugene"]),
        Hierarchy::new("Merchandise").with(["SportingGoods/GolfClubs", "Music/CDs"]),
    ])
}

fn pdx_golf() -> InterestArea {
    InterestArea::of(Cell::parse(["Oregon/Portland", "SportingGoods/GolfClubs"]))
}

fn golf_item(i: usize) -> Element {
    Element::new("item")
        .child(Element::new("name").text(format!("putter-{i}")))
        .child(Element::new("price").text(format!("{}", 20 + i)))
}

/// Builds a world with `replicas` servers all holding the same golf
/// data; optionally the meta server knows the pairwise equality
/// statements that make all but one redundant.
fn run(replicas: usize, with_statements: bool) -> (u64, u64, usize) {
    let client = Peer::new("client", ns())
        .with_default_route("meta")
        .with_policy(Policy::fast());
    let mut meta = Peer::new("meta", ns()).with_policy(Policy::fast());
    let mut peers = vec![];
    let items: Vec<Element> = (0..25).map(golf_item).collect();
    for r in 0..replicas {
        let mut p = Peer::new(format!("R{r}"), ns()).with_policy(Policy::fast());
        p.add_collection("golf", pdx_golf(), items.clone());
        meta.catalog_mut().register(p.base_entry());
        peers.push(p);
    }
    if with_statements {
        // One coverage statement: R0 holds exactly what all the other
        // replicas hold (Example 2's union form) — so the binding
        // licenses the single-site alternative {R0}.
        let rhs: Vec<String> = (1..replicas)
            .map(|r| format!("base[Oregon.Portland, SportingGoods]@R{r}"))
            .collect();
        meta.catalog_mut().add_statement(
            format!(
                "base[Oregon.Portland, SportingGoods]@R0 = {}",
                rhs.join(" U ")
            )
            .parse()
            .unwrap(),
        );
    }
    let mut all = vec![client, meta];
    all.extend(peers);
    let n = all.len();
    let mut h = SimHarness::new(Topology::uniform(n, 15_000), all);
    h.submit(0, Plan::Urn(UrnRef::new(Urn::area(pdx_golf()))));
    h.run(1_000_000);
    let q = h.take_completed().pop().unwrap();
    assert!(q.failure.is_none(), "{:?}", q.failure);
    // Distinct putters (the answer is complete either way — replicas
    // hold identical data, so dedup by name).
    let mut names: Vec<String> = q.items.iter().filter_map(|i| i.field("name")).collect();
    names.sort();
    names.dedup();
    (q.hops, q.mqp_bytes, names.len())
}

fn main() {
    let mut rows = Vec::new();
    for &replicas in &[2usize, 4, 8] {
        let (h0, b0, n0) = run(replicas, false);
        let (h1, b1, n1) = run(replicas, true);
        assert_eq!(n0, n1, "statements must not lose answers");
        rows.push(vec![
            replicas.to_string(),
            h0.to_string(),
            h1.to_string(),
            (b0 / 1024).to_string(),
            (b1 / 1024).to_string(),
            f2(b0 as f64 / b1 as f64),
            n1.to_string(),
        ]);
    }
    print_table(
        "intensional statements vs redundant replica visits (Example 1)",
        &[
            "replicas",
            "hops w/o",
            "hops with",
            "KiB w/o",
            "KiB with",
            "saving x",
            "distinct answers",
        ],
        &rows,
    );

    // Example 3's delayed-replica binding, shown directly.
    let mut catalog = mqp_catalog::Catalog::new();
    catalog.register(mqp_catalog::CatalogEntry::base(
        "R",
        InterestArea::parse(&[&["Portland", "*"]]),
    ));
    catalog.register(mqp_catalog::CatalogEntry::base(
        "S",
        InterestArea::parse(&[&["Portland", "*"]]),
    ));
    catalog.add_statement(
        "base[Portland, *]@R >= base[Portland, *]@S{30}"
            .parse()
            .unwrap(),
    );
    let binding = catalog.bind_area(&InterestArea::parse(&[&["Portland", "CDs"]]));
    println!("\nExample 3 binding for [Portland, CDs]:");
    for (i, alt) in binding.alternatives.iter().enumerate() {
        let servers: Vec<&str> = alt.servers.iter().map(|(s, _)| s.as_str()).collect();
        println!(
            "  alt {i}: {{{}}} staleness<={} min  ({})",
            servers.join(" U "),
            alt.staleness,
            alt.note
        );
    }
    let fast = binding.choose(mqp_catalog::Preference::Fast).unwrap();
    let current = binding.choose(mqp_catalog::Preference::Current).unwrap();
    assert_eq!(fast.alternative.servers[0].0, ServerId::new("R"));
    assert_eq!(current.alternative.servers.len(), 2);
    println!(
        "\nfast preference -> R alone (<=30 min stale); current preference \
         -> R U S (current): exactly the paper's binding\n  \
         base[Portland, CDs]@R{{30}} | (base[Portland, CDs]@R U \
         base[Portland, CDs]@S){{0}}"
    );
}
