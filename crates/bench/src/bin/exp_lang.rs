//! E-lang — the language front-end proves itself: three existing
//! experiments re-expressed as committed `.mqpq` query files (fig2
//! pipeline, routing comparison, index-detail tradeoff) must produce
//! *identical* outcomes to the programmatically built plans, and the
//! committed `.mqpp` policy files must compile to the rule sets the
//! hot-reload demo ships.
//!
//! For each experiment: the committed file's bytes must equal
//! `plan.render()` (regenerate with `--write-queries` after an
//! intentional grammar change), the file must parse back to the exact
//! plan, and running both the parsed and the programmatic plan on
//! fresh identical worlds must yield equal outcome fingerprints —
//! same items, same failures, same hop counts. Text and code are
//! interchangeable front doors to the same algebra.

use std::collections::BTreeSet;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_algebra::plan::{JoinCond, OrAlt, Plan};
use mqp_bench::print_table;
use mqp_core::{Policy, QueryOutcome, RuleCtx};
use mqp_engine::eval_const;
use mqp_lang::{check_query, parse_policy, parse_query};
use mqp_namespace::{Hierarchy, InterestArea, Namespace};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_workloads::garage::{build, query_for, random_query, GarageConfig, CATEGORIES, CITIES};
use mqp_xml::Element;

/// The committed default policy: compiling and applying it must be
/// behaviorally identical to `Policy::current()` (the golden-trace
/// invariant for rule-carrying peers).
const DEFAULT_POLICY: &str = "\
# The compiled default: byte-identical behavior to Policy::current().
default current
defer over 64kb
";

/// The hot-reload demo policy: prefer the fewest-site alternative
/// everywhere, trading completeness for latency (§4.3).
const FAST_FALLBACK: &str = "\
# Prefer the cheapest Or alternative everywhere: one-site answers win.
when always then choose fast
";

fn queries_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../queries")
}

/// Asserts the committed file matches `text` byte for byte (or rewrites
/// it under `--write-queries`), and returns the committed bytes.
fn committed(name: &str, text: &str, write: bool) -> String {
    let path = queries_dir().join(name);
    if write {
        std::fs::create_dir_all(queries_dir()).expect("create queries/");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {name}: {e}"));
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing committed file {} ({e}); regenerate with exp_lang --write-queries",
            path.display()
        )
    });
    assert_eq!(
        on_disk, text,
        "{name} drifted from its source plan; regenerate with exp_lang --write-queries"
    );
    on_disk
}

/// Round-trips a plan through the surface syntax and returns the
/// reparsed plan (asserting exact structural equality).
fn reparse(plan: &Plan) -> Plan {
    let text = plan.render();
    let q = parse_query(&text).unwrap_or_else(|e| panic!("rendered plan must parse:\n{text}\n{e}"));
    assert_eq!(q.plan, *plan, "round-trip changed the plan:\n{text}");
    q.plan
}

/// Host-independent outcome fingerprint (items sorted; latency and
/// byte totals excluded — they are equal in the sim anyway).
fn fingerprint(q: &QueryOutcome) -> (Option<String>, Vec<String>, u64) {
    let mut items: Vec<String> = q.items.iter().map(mqp_xml::serialize).collect();
    items.sort();
    (q.failure.clone(), items, q.hops)
}

// --- 1. fig2 pipeline (local evaluation) -----------------------------

fn fig2_collection(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{:05}", i % (n / 2 + 1))))
                .child(Element::new("price").text(format!("{}.99", i % 40)))
        })
        .collect()
}

fn fig2_songs(n: usize) -> Vec<Element> {
    (0..n)
        .map(|i| {
            Element::new("song")
                .child(Element::new("album").text(format!("Album-{:05}", i * 3 % (n + 1))))
        })
        .collect()
}

fn fig2_plan(n: usize) -> Plan {
    Plan::join(
        JoinCond::on("album", "title"),
        Plan::data(fig2_songs(n / 10)),
        Plan::select("price < 10", Plan::data(fig2_collection(n))),
    )
}

fn run_fig2(rows: &mut Vec<Vec<String>>, write: bool) {
    for &n in &[100usize, 1_000] {
        let plan = fig2_plan(n);
        let from_text = if n == 100 {
            // The committed example file is the n=100 instance.
            let text = committed("fig2_pipeline.mqpq", &plan.render(), write);
            let q = parse_query(&text).expect("committed fig2 query must parse");
            assert_eq!(
                q.plan, plan,
                "committed fig2 query drifted from the builder plan"
            );
            q.plan
        } else {
            reparse(&plan)
        };
        let a = eval_const(&plan).expect("programmatic eval");
        let b = eval_const(&from_text).expect("parsed eval");
        let same = a == b;
        rows.push(vec![
            "fig2 pipeline".into(),
            format!("{n} items"),
            format!("{} result rows", a.len()),
            verdict(same),
        ]);
        assert!(same, "fig2 n={n}: parsed plan evaluated differently");
    }
}

// --- 2. routing comparison (catalog discovery in the sim) ------------

fn routing_cells() -> Vec<(String, String)> {
    // Exactly exp_routing_comparison's golden workload: placement from
    // seed 1 over n=32 nodes, 10 query cells drawn with seed 2.
    let n = 32;
    let mut rng = StdRng::seed_from_u64(1);
    let placement: Vec<(String, String)> = (1..n)
        .map(|_| {
            let city = CITIES[rng.gen_range(0..CITIES.len())].to_owned();
            let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_owned();
            (city, cat)
        })
        .collect();
    let mut qrng = StdRng::seed_from_u64(2);
    (0..10)
        .map(|_| placement[qrng.gen_range(0..placement.len())].clone())
        .collect()
}

fn routing_world() -> mqp_workloads::garage::GarageWorld {
    build(GarageConfig {
        sellers: 31,
        items_per_seller: 3,
        index_servers: 8,
        meta_servers: 2,
        seed: 1,
    })
}

fn run_routing(rows: &mut Vec<Vec<String>>, write: bool) {
    let cells = routing_cells();
    let plans: Vec<Plan> = cells
        .iter()
        .map(|(city, cat)| query_for(city, cat, None))
        .collect();
    committed("routing_discovery.mqpq", &plans[0].render(), write);

    // The check pass accepts every query against the garage namespace.
    let ns = mqp_workloads::garage::namespace();
    let catalog = mqp_catalog::Catalog::new();
    let parsed: Vec<Plan> = plans
        .iter()
        .map(|p| {
            let q = parse_query(&p.render()).expect("rendered routing query parses");
            check_query(&q, &catalog, &ns)
                .unwrap_or_else(|e| panic!("check pass rejected a valid discovery query:\n{e}"));
            assert_eq!(q.plan, *p);
            q.plan
        })
        .collect();

    let run = |plans: &[Plan]| -> Vec<(Option<String>, Vec<String>, u64)> {
        let mut w = routing_world();
        let mut fps = Vec::new();
        for plan in plans {
            w.harness.submit(w.client, plan.clone());
            w.harness.run(10_000_000);
            let out = w.harness.take_completed().pop().expect("query completed");
            fps.push(fingerprint(&out));
        }
        fps
    };
    let a = run(&plans);
    let b = run(&parsed);
    let same = a == b;
    let answered = a.iter().filter(|f| f.0.is_none()).count();
    rows.push(vec![
        "routing comparison".into(),
        format!("{} discovery queries", plans.len()),
        format!("{answered}/{} answered", plans.len()),
        verdict(same),
    ]);
    assert!(same, "routing: parsed queries produced different outcomes");
}

// --- 3. index-detail tradeoff ----------------------------------------

fn run_index_detail(rows: &mut Vec<Vec<String>>, write: bool) {
    for &index_servers in &[0usize, 8] {
        let mut rng = StdRng::seed_from_u64(3);
        let plans: Vec<Plan> = (0..25).map(|_| random_query(&mut rng, None)).collect();
        if index_servers == 0 {
            committed("index_detail.mqpq", &plans[0].render(), write);
        }
        let parsed: Vec<Plan> = plans.iter().map(reparse).collect();

        let run = |plans: &[Plan]| -> Vec<(Option<String>, Vec<String>, u64)> {
            let mut w = build(GarageConfig {
                sellers: 120,
                items_per_seller: 4,
                index_servers,
                meta_servers: 2,
                seed: 42,
            });
            for plan in plans {
                w.harness.submit(w.client, plan.clone());
                w.harness.run(10_000_000);
            }
            let mut fps: Vec<_> = w.harness.take_completed().iter().map(fingerprint).collect();
            fps.sort();
            fps
        };
        let a = run(&plans);
        let b = run(&parsed);
        let same = a == b;
        let answered = a.iter().filter(|f| f.0.is_none()).count();
        rows.push(vec![
            format!("index detail ({index_servers} city indexes)"),
            "25 queries".into(),
            format!("{answered}/25 answered"),
            verdict(same),
        ]);
        assert!(
            same,
            "index-detail ({index_servers} indexes): outcomes diverged"
        );
    }
}

// --- 4. policy DSL + hot reload --------------------------------------

fn policy_world() -> Vec<Peer> {
    let ns = Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland"]),
        Hierarchy::new("Merchandise").with(["Music/CDs"]),
    ]);
    let area = InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]]);
    let client = Peer::new("client", ns.clone()).with_default_route("seller-0");
    let mut s0 = Peer::new("seller-0", ns.clone());
    s0.add_collection(
        "stock",
        area.clone(),
        [
            mqp_xml::parse("<item><title>A</title><price>8</price></item>").unwrap(),
            mqp_xml::parse("<item><title>B</title><price>12</price></item>").unwrap(),
        ],
    );
    let mut s1 = Peer::new("seller-1", ns);
    s1.add_collection(
        "stock",
        area,
        [mqp_xml::parse("<item><title>C</title><price>9</price></item>").unwrap()],
    );
    vec![client, s0, s1]
}

/// The demo plan: a fresh two-site union vs a stale one-site mirror.
/// `Current` commits the union (3 items); `choose fast` commits the
/// single-site alternative (2 items).
fn policy_plan() -> Plan {
    Plan::Or(vec![
        OrAlt {
            plan: Plan::union([Plan::url("mqp://seller-0/"), Plan::url("mqp://seller-1/")]),
            staleness: None,
        },
        OrAlt {
            plan: Plan::url("mqp://seller-0/"),
            staleness: Some(30),
        },
    ])
}

fn run_policy(rows: &mut Vec<Vec<String>>, write: bool) {
    let default_text = committed("default_policy.mqpp", DEFAULT_POLICY, write);
    let fast_text = committed("fast_fallback.mqpp", FAST_FALLBACK, write);

    // The compiled default is a behavioral no-op on Policy::current().
    let default_rules = parse_policy(&default_text)
        .expect("default policy compiles")
        .rules;
    let base = Policy::current();
    let d = default_rules.decide(&base, &RuleCtx::default());
    assert_eq!(
        d.policy, base,
        "compiled default must reproduce Policy::current()"
    );
    assert!(d.or_preference.is_none() && d.force.is_none() && d.route.is_none());

    let fast_rules = parse_policy(&fast_text)
        .expect("fast_fallback compiles")
        .rules;

    let peers = policy_world();
    let n = peers.len();
    let mut h = SimHarness::new(Topology::uniform(n, 5_000), peers);

    let count = |h: &mut SimHarness| -> usize {
        h.submit(0, policy_plan());
        h.run(100_000);
        let out = h.take_completed().pop().expect("query completed");
        assert!(
            out.failure.is_none(),
            "demo query failed: {:?}",
            out.failure
        );
        out.items.len()
    };

    let before = count(&mut h);
    // Hot reload: ship the compiled rules to every peer over the wire —
    // no restart, charged like catalog registration traffic.
    for node in 0..n {
        h.push_policy(0, node, fast_rules.clone());
    }
    h.run(100_000);
    let after = count(&mut h);

    rows.push(vec![
        "policy hot-reload".into(),
        "or(2-site fresh, 1-site stale)".into(),
        format!("{before} items -> {after} items"),
        verdict(before == 3 && after == 2),
    ]);
    assert_eq!(
        (before, after),
        (3, 2),
        "fast_fallback.mqpp must flip the Or choice without a restart"
    );
}

fn verdict(ok: bool) -> String {
    if ok {
        "identical".into()
    } else {
        "DIVERGED".into()
    }
}

fn main() {
    let write = std::env::args().any(|a| a == "--write-queries");
    let mut rows = Vec::new();
    run_fig2(&mut rows, write);
    run_routing(&mut rows, write);
    run_index_detail(&mut rows, write);
    run_policy(&mut rows, write);

    // Every committed file under queries/ must at least compile.
    let mut files: BTreeSet<String> = BTreeSet::new();
    for entry in std::fs::read_dir(queries_dir()).expect("queries/ exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable query file");
        match path.extension().and_then(|e| e.to_str()) {
            Some("mqpq") => {
                parse_query(&text).unwrap_or_else(|e| panic!("{name} does not compile:\n{e}"));
                files.insert(name);
            }
            Some("mqpp") => {
                parse_policy(&text).unwrap_or_else(|e| panic!("{name} does not compile:\n{e}"));
                files.insert(name);
            }
            _ => {}
        }
    }

    print_table(
        "language front-end: committed text vs builder API, same outcomes",
        &["experiment", "workload", "outcome", "text vs code"],
        &rows,
    );
    println!(
        "\ncommitted sources ({}): {}",
        files.len(),
        files.into_iter().collect::<Vec<_>>().join(", ")
    );
    println!(
        "\nshape check: every .mqpq file is byte-identical to the render of \
         the plan its experiment builds, parses back to that exact plan, \
         and produces the same outcome fingerprints on a fresh world; the \
         compiled default .mqpp is a behavioral no-op, and pushing the \
         fast_fallback rules over the wire flips the Or commitment from \
         the fresh two-site union to the stale one-site mirror without \
         restarting any peer."
    );
}
