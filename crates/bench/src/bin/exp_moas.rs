//! E16 — DESIGN.md §14: the multi-origin binding defense under
//! adversarial registration churn. Sweeps hijacker fraction × cluster
//! size over the [`mqp_workloads::adversary`] world (seeded binding
//! hijackers, registration flappers, and honest mirrors as hard
//! negatives), running every configuration twice — defense off, then
//! defense on — and reports:
//!
//! * detection **precision / recall** against seeded ground truth, and
//!   how many honest mirrors were (wrongly) quarantined;
//! * **time to quarantine** (simulated µs from a hijacker's first
//!   observed registration to the strike that quarantined it);
//! * the **poisoned-answer rate** a client sees with the defense off
//!   vs. on;
//! * **verification overhead**: the extra messages and bytes the
//!   count-probe rounds cost (defense-on minus defense-off traffic for
//!   the identical registration schedule).
//!
//! Everything printed is deterministic (simulated time, seeded worlds),
//! so the whole stdout is golden-snapshotted at
//! `MQP_EXP_SCALE=golden`. `--update` upserts the committed 5%-hijacker
//! row into `BENCH_scale.json`'s `moas` section (carried forward — not
//! rewritten — by the other writers of that file), which
//! `bench_report --check` gates against the
//! [`mqp_bench::moas_gate`] floors.

use mqp_bench::{f2, json_merge, moas_gate, print_table};
use mqp_workloads::adversary::{build, AdversaryConfig, DetectionReport};

/// Master seed for world assignment and attacker placement.
const SEED: u64 = 0xD15EA5E;

struct MoasRow {
    sellers: usize,
    peers: usize,
    fraction: f64,
    detection: DetectionReport,
    poisoned_off: f64,
    poisoned_on: f64,
    verify_msgs: u64,
    verify_bytes: u64,
}

/// Runs one configuration twice — defense off, then on — over the
/// identical registration schedule, and diffs the traffic.
fn run_pair(sellers: usize, fraction: f64) -> MoasRow {
    let config = AdversaryConfig {
        sellers,
        cities: 0,
        seed: SEED,
        hijacker_fraction: fraction,
        defense: false,
    };
    let mut off = build(config);
    off.run_schedule();
    let off_msgs = off.harness.net.stats().messages_sent;
    let off_bytes = off.harness.net.stats().bytes_sent;
    let poisoned_off = off.run_queries();

    let mut on = build(AdversaryConfig {
        defense: true,
        ..config
    });
    let peers = on.harness.len();
    on.run_schedule();
    let on_msgs = on.harness.net.stats().messages_sent;
    let on_bytes = on.harness.net.stats().bytes_sent;
    let detection = on.detection_report();
    let poisoned_on = on.run_queries();

    MoasRow {
        sellers,
        peers,
        fraction,
        detection,
        poisoned_off: poisoned_off.rate(),
        poisoned_on: poisoned_on.rate(),
        verify_msgs: on_msgs - off_msgs,
        verify_bytes: on_bytes - off_bytes,
    }
}

impl MoasRow {
    fn cells(&self) -> Vec<String> {
        vec![
            self.peers.to_string(),
            format!("{:.0}%", self.fraction * 100.0),
            format!("{}/{}", self.detection.detected, self.detection.hijackers),
            f2(self.detection.precision),
            f2(self.detection.recall),
            self.detection.mirrors_quarantined.to_string(),
            f2(self.detection.mean_time_to_quarantine_us / 1_000.0),
            f2(self.poisoned_off),
            f2(self.poisoned_on),
            self.verify_msgs.to_string(),
            self.verify_bytes.to_string(),
        ]
    }
}

/// The committed `moas` section (house shape: inner lines at four-space
/// indent, closing `  }`), from the flagship 5%-hijacker row.
fn moas_section(row: &MoasRow) -> String {
    let fields: Vec<(&str, String)> = vec![
        ("sellers", row.sellers.to_string()),
        ("peers", row.peers.to_string()),
        ("hijacker_pct", f2(row.fraction * 100.0)),
        ("hijackers", row.detection.hijackers.to_string()),
        ("detected", row.detection.detected.to_string()),
        ("false_positives", row.detection.false_positives.to_string()),
        (
            "mirrors_quarantined",
            row.detection.mirrors_quarantined.to_string(),
        ),
        ("precision", f2(row.detection.precision)),
        ("recall", f2(row.detection.recall)),
        (
            "mean_time_to_quarantine_ms",
            f2(row.detection.mean_time_to_quarantine_us / 1_000.0),
        ),
        ("poisoned_rate_off", f2(row.poisoned_off)),
        ("poisoned_rate_on", f2(row.poisoned_on)),
        ("verify_msgs", row.verify_msgs.to_string()),
        ("verify_bytes", row.verify_bytes.to_string()),
        ("precision_min", f2(moas_gate::PRECISION_FLOOR)),
        ("recall_min", f2(moas_gate::RECALL_FLOOR)),
    ];
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        out.push_str(&format!("    \"{k}\": {v}{comma}\n"));
    }
    out.push_str("  }");
    out
}

fn main() {
    let golden = mqp_bench::golden_scale();
    let update = std::env::args().nth(1).as_deref() == Some("--update");
    let sizes: &[usize] = if golden { &[400] } else { &[1_000, 10_000] };
    let fractions: &[f64] = if golden {
        &[0.05, 0.10]
    } else {
        &[0.02, 0.05, 0.10]
    };

    let mut rows = Vec::new();
    let mut flagship: Option<MoasRow> = None;
    for &sellers in sizes {
        for &fraction in fractions {
            let row = run_pair(sellers, fraction);
            // Hard negatives are non-negotiable at every configuration:
            // an honest mirror in quarantine means the defense is
            // confusing redundancy with hijacking.
            assert_eq!(
                row.detection.mirrors_quarantined, 0,
                "honest mirrors quarantined at {sellers} sellers / {fraction} fraction"
            );
            // The committed floors hold at the flagship 5% fraction.
            if (fraction - 0.05).abs() < 1e-9 {
                assert!(
                    row.detection.precision >= moas_gate::PRECISION_FLOOR,
                    "precision {} below floor at {sellers} sellers",
                    row.detection.precision
                );
                assert!(
                    row.detection.recall >= moas_gate::RECALL_FLOOR,
                    "recall {} below floor at {sellers} sellers",
                    row.detection.recall
                );
                assert!(
                    row.poisoned_on <= row.poisoned_off,
                    "defense increased poisoning at {sellers} sellers"
                );
                flagship = Some(MoasRow {
                    detection: row.detection.clone(),
                    ..row
                });
            }
            rows.push(row.cells());
        }
    }

    print_table(
        "moas: defense under adversarial registration churn",
        &[
            "peers",
            "hijack",
            "detected",
            "prec",
            "recall",
            "mirrorsQ",
            "ttq ms",
            "poison off",
            "poison on",
            "verify msgs",
            "verify bytes",
        ],
        &rows,
    );

    println!(
        "\nshape check (DESIGN.md §14): conflicting registrations trigger \
         count-probe verification rounds; hijackers holding divergent data \
         accumulate strikes and land in quarantine (precision/recall vs \
         seeded ground truth above), honest mirrors answer consistently and \
         stay trusted, and quarantine prunes the poisoned Or-alternatives a \
         defenseless client would have consumed. The verify columns are the \
         whole price: probe frames riding the existing wire protocol."
    );

    if update {
        let row = flagship.expect("5% fraction is always in the sweep");
        let path = mqp_bench::scale_report::committed_path();
        let committed = std::fs::read_to_string(&path).expect("read committed BENCH_scale.json");
        let merged = json_merge::upsert_section(&committed, "moas", &moas_section(&row));
        std::fs::write(&path, merged).expect("write BENCH_scale.json");
        eprintln!(
            "exp_moas: updated moas section of {} (precision {:.2}, recall {:.2}, \
             {} verify msgs)",
            path.display(),
            row.detection.precision,
            row.detection.recall,
            row.verify_msgs
        );
    }
}
