//! E9 — §5.1: spoofing detection via provenance. A fraction of servers
//! maliciously bind a competitor's source to the empty set; the
//! client's provenance audit flags the bypassed sources, and the
//! count(σ(B)) verification query confirms each spoof.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_algebra::plan::Plan;
use mqp_bench::{f2, print_table};
use mqp_core::provenance::{unaccounted_sources, verification_query};
use mqp_core::{Mqp, Outcome};
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace};
use mqp_peer::Peer;
use mqp_xml::Element;

fn ns() -> Namespace {
    Namespace::new([Hierarchy::new("Loc").with(["X"])])
}

fn area() -> InterestArea {
    InterestArea::of(Cell::parse(["X"]))
}

/// One trial: a union over `sources` servers; each server evaluates its
/// own branch honestly, but a spoofing server first empties every
/// *other* branch it can see. Returns (spoofed_sources, detected,
/// confirmed_by_verification).
fn trial(sources: usize, spoof_fraction: f64, seed: u64) -> (usize, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut peers: Vec<Peer> = (0..sources)
        .map(|i| {
            let mut p = Peer::new(format!("s{i}"), ns());
            p.add_collection(
                "c",
                area(),
                [Element::new("item").child(Element::new("v").text(i.to_string()))],
            );
            p
        })
        .collect();
    let malicious: Vec<bool> = (0..sources).map(|_| rng.gen_bool(spoof_fraction)).collect();

    let original = Plan::union((0..sources).map(|i| Plan::url(format!("mqp://s{i}/"))));
    let mut mqp = Mqp::new(Plan::display("client#0", original.clone()));

    // Walk the MQP through the servers in order.
    let mut spoofed = 0usize;
    for (i, peer) in peers.iter_mut().enumerate() {
        if malicious[i] {
            // Spoof: bind every other still-unresolved URL to empty data.
            loop {
                let victim = mqp
                    .plan()
                    .find_all(&|p| matches!(p, Plan::Url(u) if u.href != format!("mqp://s{i}/")));
                let Some(path) = victim.first() else { break };
                mqp.plan_mut().replace(path, Plan::data([])).unwrap();
                spoofed += 1;
            }
        }
        match peer.process(&mut mqp) {
            Outcome::Complete { .. } => break,
            Outcome::Forward { .. } => {}
            Outcome::Stuck { .. } => break,
        }
    }

    // Client-side audit.
    let missing = unaccounted_sources(mqp.original().unwrap(), mqp.provenance());
    let detected = missing.len();

    // Verification queries: each flagged source is asked count(B).
    let mut confirmed = 0usize;
    for src in &missing {
        let Some(id) = src.strip_prefix("mqp://").and_then(|s| s.strip_suffix('/')) else {
            continue;
        };
        let Some(idx) = id.strip_prefix('s').and_then(|n| n.parse::<usize>().ok()) else {
            continue;
        };
        let vq = verification_query(Plan::url(src.clone()), "auditor#0");
        let mut vmqp = Mqp::new(vq);
        if let Outcome::Complete { items, .. } = peers[idx].process(&mut vmqp) {
            if items[0].deep_text() != "0" {
                confirmed += 1;
            }
        }
    }
    (spoofed, detected, confirmed)
}

fn main() {
    let mut rows = Vec::new();
    for &frac in &[0.0f64, 0.1, 0.25, 0.5] {
        let (mut tot_spoofed, mut tot_detected, mut tot_confirmed, runs) = (0, 0, 0, 20);
        for seed in 0..runs {
            let (s, d, c) = trial(8, frac, seed);
            tot_spoofed += s;
            tot_detected += d;
            tot_confirmed += c;
        }
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            tot_spoofed.to_string(),
            tot_detected.to_string(),
            tot_confirmed.to_string(),
            if tot_spoofed == 0 {
                "n/a".to_string()
            } else {
                f2(tot_detected as f64 / tot_spoofed as f64)
            },
        ]);
    }
    print_table(
        "provenance spoofing audit (8 sources, 20 trials per row)",
        &[
            "malicious fraction",
            "branches spoofed",
            "flagged by audit",
            "confirmed by count()",
            "detection rate",
        ],
        &rows,
    );
    println!(
        "\nshape check: zero false positives at 0% malicious; every \
         spoofed branch is flagged (the provenance shows the source was \
         never visited) and the count() verification query confirms the \
         bypassed server actually holds data — §5.1's detection story. \
         (What provenance cannot catch, as the paper notes, is a server \
         lying about its *own* contents.)"
    );
}
