//! E6 — §2: the absorption rewrite `(A ⋈ X) ⋈ B → (A ⋈ B) ⋈ X`.
//! Sweeps the join-hit ratio `|A ⋈ B| / |A|` and measures the bytes the
//! mutated plan ships to X's server with and without the rewrite — the
//! crossover the paper's "if we know that |A ⋈ B| ≤ |A|" condition
//! predicts.

use mqp_algebra::codec::wire_size;
use mqp_algebra::plan::{JoinCond, Plan};
use mqp_bench::{f2, print_table};
use mqp_core::rewrite;
use mqp_engine::eval_const;
use mqp_xml::Element;

const A_ROWS: usize = 400;

fn a_items() -> Vec<Element> {
    (0..A_ROWS)
        .map(|i| {
            Element::new("a")
                .child(Element::new("k").text(i.to_string()))
                .child(Element::new("j").text(format!("tag-{}", i % 100)))
                .child(Element::new("pad").text("x".repeat(40)))
        })
        .collect()
}

/// B keeps a fraction of A's join tags: hit_pct% of A rows survive A⋈B.
fn b_items(hit_pct: usize) -> Vec<Element> {
    (0..hit_pct)
        .map(|t| Element::new("b").child(Element::new("j").text(format!("tag-{t}"))))
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    for &hit_pct in &[5usize, 25, 50, 75, 100, 150] {
        // (A ⋈ X) ⋈ B with X remote. Join output of A⋈X is
        // tuple(a, x); the outer condition addresses A via "a/j".
        let x_remote = Plan::url("mqp://x-server/");
        let original = Plan::join(
            JoinCond::on("a/j", "j"),
            Plan::join(JoinCond::on("k", "k"), Plan::data(a_items()), x_remote),
            Plan::data(b_items(hit_pct)),
        );

        // Without absorption: the locally evaluable part is just the two
        // data leaves; the plan ships A and B verbatim.
        let shipped_without = wire_size(&original);

        // With absorption: (A ⋈ B) evaluates locally; the plan ships the
        // (possibly much smaller) join result.
        let mut rewritten = original.clone();
        let applied = rewrite::absorb(&mut rewritten, &|p| {
            p.urls().is_empty() && p.urns().is_empty()
        });
        let shipped_with = if applied > 0 {
            // Reduce the local branch as the processor would.
            if let Plan::Join { left, .. } = &mut rewritten {
                let reduced = eval_const(left).expect("local join");
                **left = Plan::data_shared(reduced);
            }
            wire_size(&rewritten)
        } else {
            shipped_without
        };

        let joined = eval_const(&Plan::join(
            JoinCond::on("j", "j"),
            Plan::data(a_items()),
            Plan::data(b_items(hit_pct)),
        ))
        .unwrap()
        .len();

        rows.push(vec![
            format!("{hit_pct}%"),
            format!("{:.2}", joined as f64 / A_ROWS as f64),
            (applied > 0).to_string(),
            (shipped_without / 1024).to_string(),
            (shipped_with / 1024).to_string(),
            f2(shipped_without as f64 / shipped_with as f64),
        ]);
    }
    print_table(
        "absorption rewrite: bytes shipped to X's server (A = 400 rows)",
        &[
            "B tag coverage",
            "|A⋈B|/|A|",
            "rewrite fired",
            "ship w/o (KiB)",
            "ship with (KiB)",
            "saving x",
        ],
        &rows,
    );
    println!(
        "\nshape check: the rewrite fires only while the estimated \
         |A ⋈ B| ≤ |A| (the paper's profitability condition) and the \
         shipped-bytes saving shrinks toward 1x as the join-hit ratio \
         approaches 1; above it the optimizer leaves the plan alone."
    );
}
