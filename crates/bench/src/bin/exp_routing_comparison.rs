//! E5 — §1/§6: catalog-routed discovery vs. the Napster, Gnutella, and
//! DHT architectures, on the same discovery workload: messages, bytes,
//! latency, recall, and load imbalance as the population grows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_baselines::{CentralIndex, Chord, Flooding};
use mqp_bench::{f2, mean, print_table};
use mqp_namespace::{Cell, InterestArea, Urn};
use mqp_net::Topology;
use mqp_workloads::garage::{build, true_holders, GarageConfig, CATEGORIES, CITIES};

const LAT: u64 = 20_000; // µs, uniform

/// Keys for the baselines: the exact (city, category) cell string —
/// what a flat "filename" namespace would use (§3).
fn key(city: &str, cat: &str) -> String {
    format!("{city}|{cat}")
}

fn main() {
    let mut rows = Vec::new();
    let (populations, n_queries): (&[usize], usize) = if mqp_bench::golden_scale() {
        (&[32, 128], 10)
    } else {
        (&[32, 128, 512], 30)
    };
    for &n in populations {
        // A common assignment of content: seller i (nodes 1..) holds one
        // (city, category) cell.
        let mut rng = StdRng::seed_from_u64(1);
        let placement: Vec<(usize, String, String)> = (1..n)
            .map(|node| {
                let city = CITIES[rng.gen_range(0..CITIES.len())].to_owned();
                let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_owned();
                (node, city, cat)
            })
            .collect();
        let mut query_cells = Vec::new();
        let mut qrng = StdRng::seed_from_u64(2);
        for _ in 0..n_queries {
            let (_, city, cat) = &placement[qrng.gen_range(0..placement.len())];
            query_cells.push((city.clone(), cat.clone()));
        }
        let queries = &query_cells;

        // --- MQP catalog routing ---
        {
            let mut w = build(GarageConfig {
                sellers: n - 1,
                items_per_seller: 3,
                index_servers: 8,
                meta_servers: 2,
                seed: 1,
            });
            let mut msgs = Vec::new();
            let mut bytes = Vec::new();
            let mut lat = Vec::new();
            let mut recall = Vec::new();
            for (city, cat) in queries {
                let area = InterestArea::of(Cell::parse([city.as_str(), cat.as_str()]));
                let truth = true_holders(&w, &area);
                let before = w.harness.net.stats().clone();
                let plan = Plan::Urn(UrnRef::new(Urn::area(area)));
                w.harness.submit(w.client, plan);
                w.harness.run(10_000_000);
                let out = w.harness.take_completed().pop().unwrap();
                let after = w.harness.net.stats();
                msgs.push((after.messages_sent - before.messages_sent) as f64);
                bytes.push((after.bytes_sent - before.bytes_sent) as f64);
                lat.push(out.latency_us as f64 / 1000.0);
                // Recall: items from every true holder? Approximate via
                // sellers named in results.
                let sellers_seen: std::collections::BTreeSet<String> =
                    out.items.iter().filter_map(|i| i.field("seller")).collect();
                let r = if truth.is_empty() {
                    1.0
                } else {
                    truth
                        .iter()
                        .filter(|t| sellers_seen.contains(w.harness.peer(**t).id().as_str()))
                        .count() as f64
                        / truth.len() as f64
                };
                recall.push(r);
            }
            rows.push(row("catalog (MQP)", n, &msgs, &bytes, &lat, &recall, {
                let s = w.harness.net.stats();
                s.receive_imbalance()
            }));
        }

        // --- Napster: central index ---
        {
            let mut c = CentralIndex::new(Topology::uniform(n, LAT));
            for (node, city, cat) in &placement {
                c.publish(*node, &key(city, cat));
            }
            let (mut msgs, mut bytes, mut lat, mut recall) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for (city, cat) in queries {
                let r = c.query(n - 1, &key(city, cat));
                msgs.push(r.messages as f64);
                bytes.push(r.bytes as f64);
                lat.push(r.latency_us as f64 / 1000.0);
                recall.push(r.recall(&c.truth(&key(city, cat))));
            }
            let imb = c.stats().receive_imbalance();
            rows.push(row(
                "central (Napster)",
                n,
                &msgs,
                &bytes,
                &lat,
                &recall,
                imb,
            ));
        }

        // --- Gnutella: flooding, horizon 4 ---
        {
            let mut f = Flooding::new(Topology::uniform(n, LAT), 4, 3);
            for (node, city, cat) in &placement {
                f.publish(*node, &key(city, cat));
            }
            let (mut msgs, mut bytes, mut lat, mut recall) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for (city, cat) in queries {
                let r = f.query(0, &key(city, cat), 4);
                msgs.push(r.messages as f64);
                bytes.push(r.bytes as f64);
                lat.push(r.latency_us as f64 / 1000.0);
                recall.push(r.recall(&f.truth(&key(city, cat))));
            }
            let imb = f.stats().receive_imbalance();
            rows.push(row("flooding h=4", n, &msgs, &bytes, &lat, &recall, imb));
        }

        // --- Chord DHT ---
        {
            let mut c = Chord::new(Topology::uniform(n, LAT));
            for (node, city, cat) in &placement {
                c.publish(*node, &key(city, cat));
            }
            let (mut msgs, mut bytes, mut lat, mut recall) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for (city, cat) in queries {
                let r = c.query(0, &key(city, cat));
                msgs.push(r.messages as f64);
                bytes.push(r.bytes as f64);
                lat.push(r.latency_us as f64 / 1000.0);
                recall.push(r.recall(&c.truth(&key(city, cat))));
            }
            let imb = c.stats().receive_imbalance();
            rows.push(row("chord DHT", n, &msgs, &bytes, &lat, &recall, imb));
        }
    }

    print_table(
        &format!("routing comparison: mean per query over {n_queries} discovery queries"),
        &[
            "architecture",
            "n",
            "msgs",
            "KiB",
            "latency ms",
            "recall",
            "imbalance",
        ],
        &rows,
    );
    println!(
        "\nshape check (paper §1/§6): the central index is cheap but its \
         imbalance explodes with n (bottleneck); flooding's messages \
         explode with n while recall decays; the DHT stays O(log n) but \
         only answers exact keys; catalog routing keeps hops flat with \
         full recall — at the cost of shipping plans, not 16-byte keys."
    );
}

#[allow(clippy::too_many_arguments)]
fn row(
    name: &str,
    n: usize,
    msgs: &[f64],
    bytes: &[f64],
    lat: &[f64],
    recall: &[f64],
    imbalance: f64,
) -> Vec<String> {
    vec![
        name.to_string(),
        n.to_string(),
        f2(mean(msgs)),
        f2(mean(bytes) / 1024.0),
        f2(mean(lat)),
        f2(mean(recall)),
        f2(imbalance),
    ]
}
