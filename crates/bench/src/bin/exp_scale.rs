//! E13 — DESIGN.md §10: the six-digit scale sweep. One process runs
//! 1k → 10k → 100k-peer federations (stretch: 1M behind
//! `MQP_EXP_SCALE=stretch`) through MQP catalog routing, sparse
//! flooding, and Chord — clean and under churn — then measures the two
//! capacity floors the calendar-queue + memory-slim PR committed to:
//! peers per GB of resident memory and scheduler events per second.
//!
//! Everything printed to stdout is deterministic (event counts, peer
//! counts, recall, message counts); machine-dependent values (RSS,
//! wall time) are elided at golden scale and land in
//! `BENCH_scale.json` via `--update` (the `perf-report` CI job gates
//! them through `bench_report --check`).

use mqp_baselines::{Chord, Flooding};
use mqp_bench::{f2, fmt_ms, mean, print_table, scale_report};
use mqp_net::{FaultPlan, NodeId};
use mqp_peer::RetryPolicy;
use mqp_workloads::scale::{build, ScaleConfig, ScaleWorld, CATEGORIES};

/// Master seed for world assignment and fault schedules.
const SEED: u64 = 0x5CA1E;
/// Per-message loss under the churn variant.
const LOSS: f64 = 0.02;
/// Crash downtime before a churned seller rejoins (µs).
const DOWNTIME_US: u64 = 5_000_000;
/// Horizon churn events are spread over (µs).
const HORIZON_US: u64 = 60_000_000;
/// Flooding horizon (hops).
const FLOOD_HORIZON: u32 = 4;
/// Scheduler-soak event target at full scale.
const SOAK_EVENTS: u64 = 2_000_000;

fn stretch_scale() -> bool {
    std::env::var("MQP_EXP_SCALE")
        .map(|v| v == "stretch")
        .unwrap_or(false)
}

/// The shared query stream for one world size: (city, category) cells
/// that some seller actually serves, spread across the seller range.
fn query_cells(w: &ScaleWorld, n_queries: usize) -> Vec<(usize, usize)> {
    (0..n_queries)
        .map(|q| {
            let s = q * w.sellers / n_queries;
            (w.seller_city(s), w.seller_category(s))
        })
        .collect()
}

fn flood_key(city: usize, cat: usize) -> String {
    format!("C{city}|{}", CATEGORIES[cat])
}

struct SweepRow {
    arch: &'static str,
    completed: usize,
    recall: f64,
    msgs: f64,
    materialized: Option<usize>,
    events: u64,
    peak_queue: u64,
}

impl SweepRow {
    fn cells(&self, peers: usize, n_queries: usize) -> Vec<String> {
        vec![
            self.arch.to_owned(),
            peers.to_string(),
            format!("{}/{n_queries}", self.completed),
            f2(self.recall),
            f2(self.msgs),
            self.materialized
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".to_owned()),
            self.events.to_string(),
            self.peak_queue.to_string(),
        ]
    }
}

/// Runs the MQP discovery queries against a fresh lazy world; `faults`
/// switches on the churn variant (loss + seller crashes, with retry).
fn run_mqp(sellers: usize, cells: &[(usize, usize)], faults: bool) -> SweepRow {
    let mut w = build(ScaleConfig {
        sellers,
        cities: 0,
        seed: SEED,
    });
    if faults {
        let eligible: Vec<NodeId> = (0..sellers.min(10_000)).map(|s| w.seller_node(s)).collect();
        let crashes = (sellers / 10).clamp(4, 200);
        w.harness.retry = Some(RetryPolicy {
            timeout_us: 300_000,
            max_retries: 3,
        });
        w.harness.net.set_fault_plan(
            FaultPlan::new(SEED ^ 0xC4)
                .with_loss(LOSS)
                .with_generated_churn(&eligible, crashes, HORIZON_US, DOWNTIME_US),
        );
    }
    let mut msgs = Vec::new();
    let mut recall = Vec::new();
    let mut completed = 0;
    for &(city, cat) in cells {
        let truth: Vec<String> = w
            .true_holders(city, cat)
            .iter()
            .map(|&node| format!("seller-{}", node - 2 - w.cities))
            .collect();
        let before = w.harness.net.stats().messages_sent;
        w.harness.submit(w.client, w.query(city, cat));
        w.harness.run(10_000_000);
        msgs.push((w.harness.net.stats().messages_sent - before) as f64);
        if let Some(out) = w.harness.take_completed().pop() {
            if out.failure.is_none() {
                completed += 1;
            }
            let seen: std::collections::BTreeSet<String> =
                out.items.iter().filter_map(|i| i.field("seller")).collect();
            let r = if truth.is_empty() {
                1.0
            } else {
                truth.iter().filter(|t| seen.contains(*t)).count() as f64 / truth.len() as f64
            };
            recall.push(r);
        } else {
            recall.push(0.0);
        }
    }
    // The accounting identity holds even mid-churn: every sent message
    // is delivered, dropped, lost, or still queued.
    let stats = w.harness.net.stats();
    assert!(
        stats.balances(w.harness.net.in_flight()),
        "message accounting identity violated at {sellers} sellers"
    );
    SweepRow {
        arch: if faults { "MQP + churn" } else { "MQP" },
        completed,
        recall: mean(&recall),
        msgs: mean(&msgs),
        materialized: Some(w.harness.materialized()),
        events: stats.events_processed,
        peak_queue: stats.peak_queue_depth,
    }
}

/// Sparse-overlay flooding over the same placement: each seller
/// publishes its (city × category) key; queries flood from node 0.
fn run_flood(w: &ScaleWorld, cells: &[(usize, usize)], faults: bool) -> SweepRow {
    let sellers = w.sellers;
    let topology = mqp_net::Topology::clustered(sellers, w.cities.min(sellers), 1_000, 40_000)
        .with_bandwidth(100.0);
    let mut f = Flooding::sparse(topology, 4, SEED);
    if faults {
        let eligible: Vec<NodeId> = (0..sellers.min(10_000)).collect();
        let crashes = (sellers / 10).clamp(4, 200);
        f = f.with_faults(
            FaultPlan::new(SEED ^ 0xC4)
                .with_loss(LOSS)
                .with_generated_churn(&eligible, crashes, HORIZON_US, DOWNTIME_US),
        );
    }
    for s in 0..sellers {
        f.publish(s, &flood_key(w.seller_city(s), w.seller_category(s)));
    }
    let (mut msgs, mut recall) = (Vec::new(), Vec::new());
    let mut completed = 0;
    for &(city, cat) in cells {
        let key = flood_key(city, cat);
        let r = f.query(0, &key, FLOOD_HORIZON);
        if !r.holders.is_empty() {
            completed += 1;
        }
        recall.push(r.recall(&f.truth(&key)));
        msgs.push(r.messages as f64);
    }
    let stats = f.stats();
    SweepRow {
        arch: if faults {
            "flood h=4 + churn"
        } else {
            "flood h=4"
        },
        completed,
        recall: mean(&recall),
        msgs: mean(&msgs),
        materialized: None,
        events: stats.events_processed,
        peak_queue: stats.peak_queue_depth,
    }
}

/// Chord over the same placement: keys are the exact cell strings.
fn run_chord(w: &ScaleWorld, cells: &[(usize, usize)]) -> SweepRow {
    let sellers = w.sellers;
    let topology = mqp_net::Topology::clustered(sellers, w.cities.min(sellers), 1_000, 40_000)
        .with_bandwidth(100.0);
    let mut c = Chord::new(topology);
    for s in 0..sellers {
        c.publish(s, &flood_key(w.seller_city(s), w.seller_category(s)));
    }
    let (mut msgs, mut recall) = (Vec::new(), Vec::new());
    let mut completed = 0;
    for &(city, cat) in cells {
        let key = flood_key(city, cat);
        let r = c.query(0, &key);
        if !r.holders.is_empty() {
            completed += 1;
        }
        recall.push(r.recall(&c.truth(&key)));
        msgs.push(r.messages as f64);
    }
    let stats = c.stats();
    SweepRow {
        arch: "chord DHT",
        completed,
        recall: mean(&recall),
        msgs: mean(&msgs),
        materialized: None,
        events: stats.events_processed,
        peak_queue: stats.peak_queue_depth,
    }
}

fn main() {
    let golden = mqp_bench::golden_scale();
    let stretch = stretch_scale();
    let update = std::env::args().nth(1).as_deref() == Some("--update");
    let sizes: &[usize] = if golden {
        &[400]
    } else if stretch {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let n_queries = if golden { 4 } else { 12 };
    let (soak_n, soak_window, soak_target) = if golden {
        (1_000, 64, 20_000)
    } else {
        (10_000, 256, SOAK_EVENTS)
    };

    // Memory probe first, at the largest size, before any other phase
    // allocates: freed allocations stay in the process's RSS, so a
    // later delta would undercount and flatter the bytes-per-peer
    // number.
    let probe_sellers = *sizes.last().unwrap();
    let report = scale_report::measure(probe_sellers, soak_n, soak_window, soak_target);
    print_table(
        "scale: memory at full materialization",
        &["sellers", "peers", "bytes/peer", "peers/GB"],
        &[vec![
            report.sellers.to_string(),
            report.peers.to_string(),
            fmt_ms(report.bytes_per_peer),
            fmt_ms(report.peers_per_gb),
        ]],
    );

    // Discovery sweep across sizes and architectures.
    let mut rows = Vec::new();
    for &sellers in sizes {
        let w = build(ScaleConfig {
            sellers,
            cities: 0,
            seed: SEED,
        });
        let peers = w.harness.len();
        let cells = query_cells(&w, n_queries);
        rows.push(run_mqp(sellers, &cells, false).cells(peers, n_queries));
        rows.push(run_mqp(sellers, &cells, true).cells(peers, n_queries));
        rows.push(run_flood(&w, &cells, false).cells(peers, n_queries));
        rows.push(run_flood(&w, &cells, true).cells(peers, n_queries));
        rows.push(run_chord(&w, &cells).cells(peers, n_queries));
    }
    print_table(
        &format!("scale sweep: {n_queries} discovery queries per size"),
        &[
            "architecture",
            "peers",
            "done",
            "recall",
            "msgs",
            "matl",
            "events",
            "peak q",
        ],
        &rows,
    );

    // Scheduler soak: raw calendar-queue throughput (measured up top
    // with the memory probe; the event count is deterministic).
    print_table(
        "scale: scheduler soak",
        &["nodes", "events", "events/sec"],
        &[vec![
            soak_n.to_string(),
            report.soak_events.to_string(),
            fmt_ms(report.events_per_sec),
        ]],
    );

    println!(
        "\nshape check (DESIGN.md §10): MQP materializes only the peers a \
         query touches while recall stays 1.0 clean; flooding's horizon \
         caps recall as the world grows; Chord stays exact-match. The \
         memory and soak numbers are the BENCH_scale.json capacity floors."
    );

    if update {
        let path = scale_report::committed_path();
        // This binary owns the workload/memory/scheduler/floors
        // sections; the `moas` section belongs to `exp_moas --update`
        // and must ride along untouched.
        let fresh = report.to_json();
        let merged = match std::fs::read_to_string(&path)
            .ok()
            .and_then(|old| mqp_bench::json_merge::section(&old, "moas"))
        {
            Some(moas) => mqp_bench::json_merge::upsert_section(&fresh, "moas", &moas),
            None => fresh,
        };
        std::fs::write(&path, merged).expect("write BENCH_scale.json");
        eprintln!(
            "exp_scale: wrote {} ({} peers, {:.0} peers/GB, {:.0} events/sec)",
            path.display(),
            report.peers,
            report.peers_per_gb,
            report.events_per_sec
        );
    }
}
