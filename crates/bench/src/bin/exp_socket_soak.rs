//! E13 — socket soak: the real-TCP driver (`mqp_peer::tcp`) serving a
//! sustained query stream across hundreds of peers while peers are
//! killed and restarted under it (DESIGN.md §11).
//!
//! The world is the paper's market: a client peer, a meta index, and
//! seller *pairs* — two sellers registered per city, so every Or query
//! over a pair has a live alternative when one member is down. The
//! churn schedule kills exactly one seller at a time, always the even
//! member of a first-half pair, and restarts it at the next window
//! boundary; queries that hit the dead seller must complete anyway via
//! the protocol's own timeout → §4.2 Or-prune → re-route machinery,
//! unchanged from the simulator.
//!
//! The workload interleaves three shapes round-robin:
//!
//! * **Or-pair** — `or(url even, url odd)` over every pair in turn;
//!   the only shape that ever meets the dead seller, by design.
//! * **URL** — direct to an odd (never-killed) seller.
//! * **area** — a city URN over a second-half (never-churned) pair,
//!   resolved at the meta index, answered by both members.
//!
//! Every query must complete (zero failures), every completion must be
//! §5.1 audit-clean, and after shutdown the transport's frame
//! accounting identity must balance exactly — enforced here, summarized
//! in the `socket` section of `BENCH_threaded.json` at full scale, and
//! gated by `bench_report --check-socket`. The CI `socket-smoke` job
//! runs this at `MQP_EXP_SCALE=golden`, twice, byte-identical
//! (timing-dependent counters are elided at golden scale).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_bench::{f2, fmt_ms, golden_scale, json_merge, print_table};
use mqp_core::QueryOutcome;
use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
use mqp_peer::node::RetryPolicy;
use mqp_peer::tcp::{TcpCluster, TcpConfig};
use mqp_peer::Peer;
use mqp_xml::Element;

/// Maximum queries in flight; submission pauses to collect past this.
const WINDOW: usize = 64;

fn city(p: usize) -> String {
    format!("USA/City-{p:03}")
}

fn area(p: usize) -> InterestArea {
    InterestArea::parse(&[&[city(p).as_str(), "Music/CDs"]])
}

fn namespace(pairs: usize) -> Namespace {
    let mut loc = Hierarchy::new("Location");
    for p in 0..pairs {
        loc.add(city(p).as_str());
    }
    Namespace::new([loc, Hierarchy::new("Merchandise").with(["Music/CDs"])])
}

/// client (node 0), meta (node 1), then seller `j` at node `2 + j`;
/// sellers `2p` and `2p + 1` share city `p`.
fn world(pairs: usize) -> Vec<Peer> {
    let ns = namespace(pairs);
    let client = Peer::new("client", ns.clone()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns.clone());
    let mut sellers = Vec::with_capacity(2 * pairs);
    for j in 0..2 * pairs {
        let mut s = Peer::new(format!("seller-{j}"), ns.clone());
        s.add_collection(
            "cds",
            area(j / 2),
            [Element::new("item")
                .child(Element::new("title").text(format!("Album-{j:04}")))
                .child(Element::new("price").text(format!("{}.99", j % 40)))],
        );
        meta.catalog_mut().register(s.base_entry());
        sellers.push(s);
    }
    let mut peers = vec![client, meta];
    peers.extend(sellers);
    peers
}

/// Node id of the even seller of pair `p` — the only kind of peer the
/// churn schedule ever kills.
fn victim(p: usize) -> usize {
    2 + 2 * p
}

/// The `i`-th query of the stream. Or-pair queries cycle all pairs (and
/// so periodically meet the dead seller); URL and area queries only
/// name peers the schedule never kills, keeping their completion
/// independent of churn timing.
fn plan_for(i: usize, pairs: usize) -> Plan {
    let p = (i / 3) % pairs;
    match i % 3 {
        0 => Plan::or([
            Plan::url(format!("mqp://seller-{}/", 2 * p)),
            Plan::url(format!("mqp://seller-{}/", 2 * p + 1)),
        ]),
        1 => Plan::url(format!("mqp://seller-{}/", 2 * p + 1)),
        _ => Plan::Urn(UrnRef::new(Urn::area(area(
            pairs / 2 + p % (pairs - pairs / 2),
        )))),
    }
}

fn main() {
    let golden = golden_scale();
    let pairs = if golden { 10 } else { 124 };
    let queries = if golden { 240 } else { 20_000 };
    let churn_every = if golden { 30 } else { 500 };
    let peers = 2 + 2 * pairs;
    let first_half = pairs / 2;

    let cfg = TcpConfig {
        retry: Some(RetryPolicy {
            timeout_us: 250_000,
            max_retries: 8,
        }),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(100),
        ..TcpConfig::default()
    };
    let (cluster, mut client) = TcpCluster::with_config(world(pairs), cfg);

    let start = Instant::now();
    let mut done: Vec<QueryOutcome> = Vec::with_capacity(queries);
    let mut downed: Option<usize> = None;
    let mut kills = 0u64;
    for i in 0..queries {
        if i % churn_every == 0 {
            // One peer down at a time: the previous victim rejoins
            // (fresh port, same protocol state) before the next falls.
            if let Some(v) = downed.take() {
                cluster.restart(v);
            }
            let v = victim(kills as usize % first_half);
            cluster.kill(v);
            downed = Some(v);
            kills += 1;
        }
        client.submit(0, &plan_for(i, pairs));
        while i + 1 - done.len() >= WINDOW {
            done.extend(client.collect(1, Duration::from_secs(60)));
        }
    }
    if let Some(v) = downed.take() {
        cluster.restart(v);
    }
    done.extend(client.collect(queries - done.len(), Duration::from_secs(120)));
    let wall = start.elapsed();
    let stats = cluster.shutdown(&mut client);

    let completed = done.len();
    let failed = done.iter().filter(|q| q.failure.is_some()).count();
    let clean = done.iter().filter(|q| q.audit_clean == Some(true)).count();
    let clean_pct = 100.0 * clean as f64 / completed.max(1) as f64;
    let retries: u64 = done.iter().map(|q| q.retries).sum();
    let balanced = stats.balances(0);
    let dropped = stats.dropped_backpressure + stats.dropped_disconnected + stats.abandoned;
    let qps = completed as f64 / wall.as_secs_f64();

    // Timing-dependent counters are elided at golden scale so the CI
    // socket-smoke double run is byte-identical.
    let nat = |v: u64| {
        if golden {
            "-".to_owned()
        } else {
            v.to_string()
        }
    };
    print_table(
        &format!("socket soak: {peers} peers, {queries} queries, kill/restart churn"),
        &["metric", "value"],
        &[
            vec!["peers".into(), peers.to_string()],
            vec!["queries".into(), queries.to_string()],
            vec!["window".into(), WINDOW.to_string()],
            vec!["churn_every".into(), churn_every.to_string()],
            vec!["kills".into(), kills.to_string()],
            vec!["completed".into(), completed.to_string()],
            vec!["failed".into(), failed.to_string()],
            vec!["audit_clean_pct".into(), f2(clean_pct)],
            vec![
                "balanced".into(),
                if balanced { "yes" } else { "no" }.into(),
            ],
            vec!["retries".into(), nat(retries)],
            vec!["connects".into(), nat(stats.connects)],
            vec!["frames_sent".into(), nat(stats.frames_sent)],
            vec!["dropped".into(), nat(dropped)],
            vec!["wall_ms".into(), fmt_ms(wall.as_secs_f64() * 1e3)],
            vec!["throughput_qps".into(), fmt_ms(qps)],
        ],
    );
    println!(
        "\nshape check (DESIGN.md §11): every query completes over real \
         sockets despite {kills} kills — Or queries detour around the dead \
         seller via the protocol's own timeout/prune/re-route machinery, \
         audit-clean, and the transport's frame accounting identity \
         balances exactly after shutdown."
    );

    assert_eq!(completed, queries, "soak stranded queries");
    assert_eq!(failed, 0, "soak queries failed");
    assert_eq!(clean, completed, "soak completions not all audit-clean");
    assert!(balanced, "frame accounting identity broken: {stats:?}");

    if !golden {
        let mut sock = String::from("{\n");
        let _ = writeln!(sock, "    \"peers\": {peers},");
        let _ = writeln!(sock, "    \"queries\": {queries},");
        let _ = writeln!(sock, "    \"completed\": {completed},");
        let _ = writeln!(sock, "    \"failed\": {failed},");
        let _ = writeln!(sock, "    \"audit_clean_pct\": {clean_pct:.2},");
        let _ = writeln!(sock, "    \"balanced\": {},", i32::from(balanced));
        let _ = writeln!(sock, "    \"kills\": {kills},");
        let _ = writeln!(sock, "    \"retries\": {retries},");
        let _ = writeln!(sock, "    \"connects\": {},", stats.connects);
        let _ = writeln!(sock, "    \"frames_sent\": {},", stats.frames_sent);
        let _ = writeln!(sock, "    \"throughput_qps\": {qps:.2}");
        sock.push_str("  }");
        let path =
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_threaded.json");
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|_| "{\n}\n".to_owned());
        std::fs::write(&path, json_merge::upsert_section(&doc, "socket", &sock))
            .expect("write BENCH_threaded.json");
        println!("\nwrote socket section to {}", path.display());
    }
}
