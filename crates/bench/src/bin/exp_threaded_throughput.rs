//! E12 — threaded-cluster throughput: queries/sec of the real-thread
//! driver (`mqp_peer::ThreadedCluster`) as the worker-thread count
//! sweeps 1 → 8, over the *same* sans-IO `PeerNode` protocol core the
//! deterministic simulator runs (DESIGN.md §8).
//!
//! The ROADMAP north star is serving heavy concurrent traffic. What a
//! thread-per-peer cluster buys is *overlap*: while one worker's store
//! access stalls (disk, remote fetch — modelled here as a fixed
//! per-envelope service delay), other workers keep parsing, mutating,
//! and completing envelopes. The experiment therefore runs two sweeps:
//!
//! * **serviced** — each MQP envelope costs a fixed service stall at
//!   its worker (the realistic regime; this is the gated sweep: ≥ 2×
//!   throughput at 8 workers vs 1 is enforced, and on any multi-core
//!   or I/O-bound deployment the gap only widens);
//! * **cpu-bound** — no stall, pure envelope processing. Informational:
//!   on a single-core CI box this cannot scale, and that contrast is
//!   the point — the cluster's scaling comes from overlapping waits,
//!   not from pretending the box has more ALUs than it does.
//!
//! Emits `BENCH_threaded.json` at the workspace root and exits
//! non-zero if the serviced sweep scales < 2× at 8 workers — the CI
//! `threaded-smoke` job runs this at `MQP_EXP_SCALE=golden`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mqp_algebra::plan::Plan;
use mqp_bench::{f2, print_table};
use mqp_namespace::{Hierarchy, InterestArea, Namespace};
use mqp_peer::{Peer, ThreadedCluster};
use mqp_xml::Element;

/// Modelled per-envelope service time at a worker (µs).
const SERVICE_US: u64 = 1_500;
/// Worker-thread counts swept.
const THREADS: &[usize] = &[1, 2, 4, 8];
/// Scaling floor enforced on the serviced sweep: qps(8) / qps(1).
const FLOOR: f64 = 2.0;

fn namespace() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland"]),
        Hierarchy::new("Merchandise").with(["Music/CDs"]),
    ])
}

/// One seller peer holding `items` CD records.
fn seller(i: usize, items: usize, ns: &Namespace) -> Peer {
    let area = InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]]);
    let mut p = Peer::new(format!("worker-{i}"), ns.clone());
    let rows: Vec<Element> = (0..items)
        .map(|k| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{k:04}")))
                .child(Element::new("price").text(format!("{}.99", k % 40)))
        })
        .collect();
    p.add_collection("cds", area, rows);
    p
}

/// Runs `queries` across a `threads`-worker cluster; returns
/// queries/sec.
fn run_sweep(threads: usize, queries: usize, items: usize, service: Duration) -> f64 {
    let ns = namespace();
    let peers: Vec<Peer> = (0..threads).map(|i| seller(i, items, &ns)).collect();
    let (cluster, mut client) = ThreadedCluster::with_config(peers, None, service);
    // Each query targets one worker's local data directly, round-robin:
    // the submit frame goes straight to that worker, which parses,
    // evaluates, and completes the envelope on its own thread.
    let start = Instant::now();
    for q in 0..queries {
        let w = q % threads;
        let plan = Plan::select("price < 20", Plan::url(format!("mqp://worker-{w}/")));
        client.submit(w, &plan);
    }
    let done = client.collect(queries, Duration::from_secs(60));
    let elapsed = start.elapsed();
    assert_eq!(done.len(), queries, "queries lost in the cluster");
    for q in &done {
        assert!(
            q.failure.is_none(),
            "query {} failed: {:?}",
            q.qid,
            q.failure
        );
        assert!(!q.items.is_empty(), "query {} returned nothing", q.qid);
    }
    cluster.shutdown(&client);
    queries as f64 / elapsed.as_secs_f64()
}

fn main() {
    let golden = mqp_bench::golden_scale();
    let queries = if golden { 96 } else { 480 };
    let items = if golden { 60 } else { 200 };
    let service = Duration::from_micros(SERVICE_US);

    let mut rows = Vec::new();
    let mut serviced = Vec::new();
    let mut cpu_bound = Vec::new();
    for &t in THREADS {
        let qps = run_sweep(t, queries, items, service);
        serviced.push(qps);
        rows.push(vec![
            "serviced".to_owned(),
            t.to_string(),
            queries.to_string(),
            f2(qps),
            f2(qps / serviced[0]),
        ]);
    }
    for &t in THREADS {
        let qps = run_sweep(t, queries, items, Duration::ZERO);
        cpu_bound.push(qps);
        rows.push(vec![
            "cpu-bound".to_owned(),
            t.to_string(),
            queries.to_string(),
            f2(qps),
            f2(qps / cpu_bound[0]),
        ]);
    }

    print_table(
        &format!(
            "threaded-cluster throughput: {queries} queries, {items}-item stores, \
             {SERVICE_US}µs service stall (serviced sweep)"
        ),
        &["regime", "threads", "queries", "q/s", "scaling"],
        &rows,
    );

    let ratio = serviced.last().unwrap() / serviced[0];
    println!(
        "\nshape check (DESIGN.md §8): the same PeerNode state machine the \
         simulator drives serves real concurrent traffic; thread-per-peer \
         overlaps per-envelope service stalls, so serviced throughput \
         scales ~linearly with workers ({}x at {} threads) while the \
         cpu-bound sweep is pinned to the machine's cores.",
        f2(ratio),
        THREADS.last().unwrap()
    );

    // Emit the committed-trajectory file.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"service_us\": {SERVICE_US},");
    for (name, qps) in [("serviced", &serviced), ("cpu_bound", &cpu_bound)] {
        let _ = writeln!(json, "  \"{name}\": {{");
        for (i, &t) in THREADS.iter().enumerate() {
            let _ = writeln!(
                json,
                "    \"qps_{t}\": {:.2}{}",
                qps[i],
                if i + 1 == THREADS.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"serviced_scaling_8v1\": {ratio:.2},");
    let _ = writeln!(json, "  \"floor_8v1\": {FLOOR}");
    json.push_str("}\n");
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_threaded.json");
    // The `socket` section belongs to exp_socket_soak and `recovery`
    // to exp_crash_recovery; carry any committed ones forward untouched
    // instead of clobbering them.
    if let Ok(old) = std::fs::read_to_string(&path) {
        for name in ["socket", "recovery"] {
            if let Some(sec) = mqp_bench::json_merge::section(&old, name) {
                json = mqp_bench::json_merge::upsert_section(&json, name, &sec);
            }
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_threaded.json");
    println!("\nwrote {}", path.display());

    if ratio < FLOOR {
        eprintln!(
            "FAIL: serviced throughput scaled only {}x from 1 to {} workers (floor {FLOOR}x)",
            f2(ratio),
            THREADS.last().unwrap()
        );
        std::process::exit(1);
    }
}
