//! # mqp-bench — the experiment harness
//!
//! One binary per paper figure / claim (see DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_fig1_gene_routing` | Figure 1 routing decisions |
//! | `exp_fig2_pipeline` | Figure 2 stage costs |
//! | `exp_fig3_mqp_trace` | Figures 3–4 hop-by-hop evaluation |
//! | `exp_fig5_namespace_routing` | Figure 5 / §3.4 routing + caches |
//! | `exp_routing_comparison` | §1/§6 catalog vs. Napster/Gnutella/DHT |
//! | `exp_rewrite_ablation` | §2 absorption rewrite |
//! | `exp_intensional_redundancy` | §4.2 Examples 1–3 |
//! | `exp_currency_latency` | §4.3 tradeoff |
//! | `exp_provenance_spoofing` | §5.1 spoofing detection |
//! | `exp_index_detail_tradeoff` | §3.2 index vs. meta-index detail |
//! | `exp_churn_resilience` | §2/§5.1 recall + audits under churn |
//! | `exp_threaded_throughput` | DESIGN.md §8 real-thread scaling |
//!
//! Run any of them with
//! `cargo run -p mqp-bench --release --bin <name>`. Criterion
//! micro-benches (`cargo bench`) cover the per-stage costs.

/// True when the `exp_*` binaries should run at the reduced, fully
/// deterministic *golden* scale (`MQP_EXP_SCALE=golden`): smaller
/// sweeps, and wall-clock measurements elided. The golden-trace
/// regression tests (`crates/bench/tests/golden.rs`) snapshot every
/// binary's stdout at this scale under `tests/golden/`.
pub fn golden_scale() -> bool {
    std::env::var("MQP_EXP_SCALE")
        .map(|v| v == "golden")
        .unwrap_or(false)
}

/// Formats a wall-clock measurement (milliseconds): elided under
/// [`golden_scale`] so snapshots stay byte-identical across machines.
pub fn fmt_ms(ms: f64) -> String {
    if golden_scale() {
        "-".to_owned()
    } else {
        f2(ms)
    }
}

/// Prints a fixed-width ASCII table (the format EXPERIMENTS.md quotes).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// The Figure-2 item collection used by `exp_fig2_pipeline` and
/// `bench_report`: `<item><title>…</title><price>…</price></item>` rows
/// with repeating titles and prices.
pub fn fig2_collection(n: usize) -> Vec<mqp_xml::Element> {
    use mqp_xml::Element;
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{:05}", i % (n / 2 + 1))))
                .child(Element::new("price").text(format!("{}.99", i % 40)))
        })
        .collect()
}

/// The Figure-2 song list joined against [`fig2_collection`].
pub fn fig2_songs(n: usize) -> Vec<mqp_xml::Element> {
    use mqp_xml::Element;
    (0..n)
        .map(|i| {
            Element::new("song")
                .child(Element::new("album").text(format!("Album-{:05}", i * 3 % (n + 1))))
        })
        .collect()
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
