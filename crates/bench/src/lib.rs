//! # mqp-bench — the experiment harness
//!
//! One binary per paper figure / claim (see DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for recorded results):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_fig1_gene_routing` | Figure 1 routing decisions |
//! | `exp_fig2_pipeline` | Figure 2 stage costs |
//! | `exp_fig3_mqp_trace` | Figures 3–4 hop-by-hop evaluation |
//! | `exp_fig5_namespace_routing` | Figure 5 / §3.4 routing + caches |
//! | `exp_routing_comparison` | §1/§6 catalog vs. Napster/Gnutella/DHT |
//! | `exp_rewrite_ablation` | §2 absorption rewrite |
//! | `exp_intensional_redundancy` | §4.2 Examples 1–3 |
//! | `exp_currency_latency` | §4.3 tradeoff |
//! | `exp_provenance_spoofing` | §5.1 spoofing detection |
//! | `exp_index_detail_tradeoff` | §3.2 index vs. meta-index detail |
//! | `exp_churn_resilience` | §2/§5.1 recall + audits under churn |
//! | `exp_threaded_throughput` | DESIGN.md §8 real-thread scaling |
//! | `exp_moas` | DESIGN.md §14 multi-origin binding defense (E16) |
//!
//! Run any of them with
//! `cargo run -p mqp-bench --release --bin <name>`. Criterion
//! micro-benches (`cargo bench`) cover the per-stage costs.

/// True when the `exp_*` binaries should run at the reduced, fully
/// deterministic *golden* scale (`MQP_EXP_SCALE=golden`): smaller
/// sweeps, and wall-clock measurements elided. The golden-trace
/// regression tests (`crates/bench/tests/golden.rs`) snapshot every
/// binary's stdout at this scale under `tests/golden/`.
pub fn golden_scale() -> bool {
    std::env::var("MQP_EXP_SCALE")
        .map(|v| v == "golden")
        .unwrap_or(false)
}

/// Formats a wall-clock measurement (milliseconds): elided under
/// [`golden_scale`] so snapshots stay byte-identical across machines.
pub fn fmt_ms(ms: f64) -> String {
    if golden_scale() {
        "-".to_owned()
    } else {
        f2(ms)
    }
}

/// Prints a fixed-width ASCII table (the format EXPERIMENTS.md quotes).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// The Figure-2 item collection used by `exp_fig2_pipeline` and
/// `bench_report`: `<item><title>…</title><price>…</price></item>` rows
/// with repeating titles and prices.
pub fn fig2_collection(n: usize) -> Vec<mqp_xml::Element> {
    use mqp_xml::Element;
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("title").text(format!("Album-{:05}", i % (n / 2 + 1))))
                .child(Element::new("price").text(format!("{}.99", i % 40)))
        })
        .collect()
}

/// The Figure-2 song list joined against [`fig2_collection`].
pub fn fig2_songs(n: usize) -> Vec<mqp_xml::Element> {
    use mqp_xml::Element;
    (0..n)
        .map(|i| {
            Element::new("song")
                .child(Element::new("album").text(format!("Album-{:05}", i * 3 % (n + 1))))
        })
        .collect()
}

/// Capacity floors the scale PR committed to (`BENCH_scale.json`,
/// written by `exp_scale --update` and enforced by
/// `bench_report --check`): how many fully-materialized peers one GB of
/// RSS must hold, and how many scheduler events per second the
/// calendar queue must sustain.
pub mod scale_gate {
    /// Peers per GB of resident memory, fully materialized.
    pub const PEERS_PER_GB_FLOOR: f64 = 100_000.0;
    /// Calendar-queue events per second under the soak workload.
    pub const EVENTS_PER_SEC_FLOOR: f64 = 1_000_000.0;
}

/// Detection-quality floors the multi-origin binding defense PR
/// committed to (`BENCH_scale.json`'s `moas` section, written by
/// `exp_moas --update` and enforced by `bench_report --check`):
/// detection precision and recall at the committed 5%-hijacker
/// adversarial workload (DESIGN.md §14, experiment E16).
pub mod moas_gate {
    /// Quarantine precision (true hijackers / all quarantined).
    pub const PRECISION_FLOOR: f64 = 0.95;
    /// Quarantine recall (detected hijackers / all hijackers).
    pub const RECALL_FLOOR: f64 = 0.90;
}

/// Memory and scheduler probes behind the scale sweep (`exp_scale`,
/// DESIGN.md §10) and its CI gate (`bench_report --check`). Everything
/// here separates cleanly into a deterministic part (event and peer
/// counts) and a machine-dependent part (RSS, wall time) so the golden
/// snapshots can keep the former and elide the latter.
pub mod probe {
    use std::time::Instant;

    use mqp_net::{SimNet, Topology};
    use mqp_workloads::scale::ScaleWorld;

    /// Resident set size of this process in bytes (`VmRSS` from
    /// `/proc/self/status`); `None` off Linux.
    pub fn rss_bytes() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    }

    /// Forces every peer in a lazy scale world into existence (the
    /// honest denominator for a bytes-per-peer measurement) and returns
    /// how many exist afterwards.
    pub fn materialize_all(w: &mut ScaleWorld) -> usize {
        for node in 0..w.harness.len() {
            w.harness.peer_mut(node);
        }
        w.harness.materialized()
    }

    /// Calendar-queue soak: keeps `window` messages circulating among
    /// `n` nodes until `target_events` scheduler events have been
    /// processed, then lets the queue drain. Returns the exact event
    /// count (deterministic) and the wall seconds it took (not).
    pub fn scheduler_soak(n: usize, window: usize, target_events: u64) -> (u64, f64) {
        let mut net: SimNet<u32> = SimNet::new(Topology::uniform(n, 1_000));
        let t0 = Instant::now();
        for i in 0..window {
            net.send(i % n, (i + 1) % n, 16, 0);
        }
        while let Some(d) = net.step() {
            if net.stats().events_processed < target_events {
                // Deterministic pointer chase: a fixed odd stride visits
                // every node, so the soak spreads across the topology.
                net.send(d.to, (d.to + 7) % n, 16, d.payload.wrapping_add(1));
            }
        }
        (net.stats().events_processed, t0.elapsed().as_secs_f64())
    }
}

/// The measured capacity numbers behind `BENCH_scale.json`, shared by
/// `exp_scale` (which prints and `--update`s them) and
/// `bench_report --check` (which re-measures and gates them).
pub mod scale_report {
    use crate::probe;

    /// One scale measurement: memory at full materialization plus the
    /// scheduler soak.
    pub struct ScaleReport {
        /// Sellers in the probed world.
        pub sellers: usize,
        /// Total peers materialized (client + meta + indexes + sellers).
        pub peers: usize,
        /// RSS delta per peer; 0 when `/proc/self/status` is missing.
        pub bytes_per_peer: f64,
        /// 1 GB / bytes_per_peer.
        pub peers_per_gb: f64,
        /// Exact (deterministic) soak event count.
        pub soak_events: u64,
        /// Soak throughput (machine-dependent).
        pub events_per_sec: f64,
    }

    /// Measures a fresh world. Call this *before* anything else
    /// allocates heavily: freed allocations stay in the process RSS, so
    /// a late delta undercounts and flatters bytes-per-peer.
    pub fn measure(
        sellers: usize,
        soak_n: usize,
        soak_window: usize,
        soak_target: u64,
    ) -> ScaleReport {
        let (peers, bytes_per_peer, peers_per_gb) = {
            let mut w = mqp_workloads::scale::build(mqp_workloads::scale::ScaleConfig {
                sellers,
                cities: 0,
                seed: 0x5CA1E,
            });
            let before = probe::rss_bytes().unwrap_or(0);
            let peers = probe::materialize_all(&mut w);
            let after = probe::rss_bytes().unwrap_or(0);
            let delta = after.saturating_sub(before);
            if delta == 0 || peers == 0 {
                (peers, 0.0, 0.0)
            } else {
                let per_peer = delta as f64 / peers as f64;
                (peers, per_peer, 1e9 / per_peer)
            }
        };
        let (soak_events, soak_wall) = probe::scheduler_soak(soak_n, soak_window, soak_target);
        ScaleReport {
            sellers,
            peers,
            bytes_per_peer,
            peers_per_gb,
            soak_events,
            events_per_sec: if soak_wall > 0.0 {
                soak_events as f64 / soak_wall
            } else {
                0.0
            },
        }
    }

    impl ScaleReport {
        /// The `BENCH_scale.json` document.
        pub fn to_json(&self) -> String {
            use std::fmt::Write;
            let mut out = String::new();
            let mut section = |name: &str, fields: &[(&str, String)], last: bool| {
                let _ = writeln!(out, "  \"{name}\": {{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let comma = if i + 1 < fields.len() { "," } else { "" };
                    let _ = writeln!(out, "    \"{k}\": {v}{comma}");
                }
                let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
            };
            let f = |x: f64| format!("{x:.2}");
            section(
                "workload",
                &[
                    ("sellers", self.sellers.to_string()),
                    ("peers", self.peers.to_string()),
                ],
                false,
            );
            section(
                "memory",
                &[
                    ("bytes_per_peer", f(self.bytes_per_peer)),
                    ("peers_per_gb", f(self.peers_per_gb)),
                ],
                false,
            );
            section(
                "scheduler",
                &[
                    ("soak_events", self.soak_events.to_string()),
                    ("events_per_sec", f(self.events_per_sec)),
                ],
                false,
            );
            section(
                "floors",
                &[
                    ("peers_per_gb_min", f(crate::scale_gate::PEERS_PER_GB_FLOOR)),
                    (
                        "events_per_sec_min",
                        f(crate::scale_gate::EVENTS_PER_SEC_FLOOR),
                    ),
                ],
                true,
            );
            format!("{{\n  \"schema\": \"bench_scale/v1\",\n{out}}}\n")
        }
    }

    /// Where the committed baseline lives (workspace root).
    pub fn committed_path() -> std::path::PathBuf {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
    }
}

/// Line-based section surgery for the committed `BENCH_*.json`
/// trajectory files.
///
/// Those files are written by independent experiment binaries but share
/// one document, so a binary that regenerates *its* sections must carry
/// the others' forward untouched. The files follow a fixed house shape
/// — top-level braces at column 0, each section object opened by
/// `  "name": {` and closed by `  }` at two-space indent — which makes
/// exact line matching both sufficient and byte-stable, where a parse →
/// re-serialize round trip would reformat sections it never meant to
/// touch.
pub mod json_merge {
    /// Extracts the named top-level section as its object literal,
    /// exactly as it appears in the file (braces included, inner lines
    /// at their original indent). `None` if the section is absent.
    pub fn section(text: &str, name: &str) -> Option<String> {
        let lines: Vec<&str> = text.lines().collect();
        let (start, end) = span(&lines, name)?;
        let mut out = String::from("{\n");
        for l in &lines[start + 1..end] {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str("  }");
        Some(out)
    }

    /// Returns the document with the named section removed (and the
    /// trailing comma of the new last member fixed up). A no-op if the
    /// section is absent.
    pub fn remove_section(text: &str, name: &str) -> String {
        let lines: Vec<&str> = text.lines().collect();
        let Some((start, end)) = span(&lines, name) else {
            return text.to_owned();
        };
        let mut kept: Vec<String> = lines[..start].iter().map(|s| s.to_string()).collect();
        kept.extend(lines[end + 1..].iter().map(|s| s.to_string()));
        // JSON forbids a trailing comma before the closing brace; if
        // the removed section was the last member, strip its
        // predecessor's comma.
        if let Some(close) = kept.iter().rposition(|l| l == "}") {
            if close > 0 && kept[close - 1].ends_with(',') {
                let fixed = kept[close - 1].trim_end_matches(',').to_owned();
                kept[close - 1] = fixed;
            }
        }
        kept.join("\n") + "\n"
    }

    /// Inserts (or replaces) the named section as the *last* member of
    /// the top-level object. `object` is an object literal in the shape
    /// [`section`] returns: `{`, inner lines at four-space indent, and
    /// a closing `  }`.
    pub fn upsert_section(text: &str, name: &str, object: &str) -> String {
        let without = remove_section(text, name);
        let mut lines: Vec<String> = without.lines().map(|s| s.to_owned()).collect();
        let Some(close) = lines.iter().rposition(|l| l == "}") else {
            // Not in the house shape; start a fresh document.
            return upsert_section("{\n}\n", name, object);
        };
        if close > 0 {
            let prev = &lines[close - 1];
            if prev != "{" && !prev.ends_with(',') {
                let with_comma = format!("{prev},");
                lines[close - 1] = with_comma;
            }
        }
        let mut insert = Vec::new();
        let mut obj = object.lines();
        insert.push(format!("  \"{name}\": {}", obj.next().unwrap_or("{")));
        insert.extend(obj.map(|l| l.to_owned()));
        lines.splice(close..close, insert);
        lines.join("\n") + "\n"
    }

    /// Start/end line indexes of `  "name": {` … `  }`/`  },`.
    fn span(lines: &[&str], name: &str) -> Option<(usize, usize)> {
        let open = format!("  \"{name}\": {{");
        let start = lines.iter().position(|&l| l == open)?;
        let end = lines
            .iter()
            .enumerate()
            .skip(start + 1)
            .find(|(_, &l)| l == "  }" || l == "  },")
            .map(|(i, _)| i)?;
        Some((start, end))
    }
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    const DOC: &str = "{\n  \"queries\": 480,\n  \"serviced\": {\n    \"qps_1\": 479.69,\n    \"qps_8\": 2106.81\n  },\n  \"floor_8v1\": 2\n}\n";

    #[test]
    fn section_extracts_the_exact_object() {
        assert_eq!(
            json_merge::section(DOC, "serviced").as_deref(),
            Some("{\n    \"qps_1\": 479.69,\n    \"qps_8\": 2106.81\n  }")
        );
        assert_eq!(json_merge::section(DOC, "missing"), None);
    }

    #[test]
    fn upsert_appends_as_last_member_and_replaces_in_place() {
        let sock = "{\n    \"peers\": 250,\n    \"balanced\": 1\n  }";
        let once = json_merge::upsert_section(DOC, "socket", sock);
        assert!(
            once.ends_with("  \"socket\": {\n    \"peers\": 250,\n    \"balanced\": 1\n  }\n}\n")
        );
        assert!(once.contains("  \"floor_8v1\": 2,\n"), "{once}");
        // Idempotent: replacing the same section changes nothing.
        assert_eq!(json_merge::upsert_section(&once, "socket", sock), once);
        // Round trip: what section() pulls out, upsert puts back.
        let pulled = json_merge::section(&once, "socket").unwrap();
        assert_eq!(pulled, sock);
    }

    #[test]
    fn remove_fixes_the_dangling_comma() {
        let sock = "{\n    \"peers\": 250\n  }";
        let doc = json_merge::upsert_section(DOC, "socket", sock);
        assert_eq!(json_merge::remove_section(&doc, "socket"), DOC);
        // Removing a middle section leaves the rest intact.
        let gone = json_merge::remove_section(DOC, "serviced");
        assert!(gone.contains("\"queries\": 480"));
        assert!(!gone.contains("qps_1"));
        assert!(gone.ends_with("  \"floor_8v1\": 2\n}\n"));
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
