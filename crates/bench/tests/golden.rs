//! Golden-trace regression tests: every `exp_*` binary runs at the
//! reduced `MQP_EXP_SCALE=golden` scale and its stdout is diffed
//! byte-for-byte against the snapshot under `tests/golden/` at the
//! workspace root.
//!
//! The snapshots pin down *everything* an experiment prints — routing
//! decisions, message/byte accounting, recall, provenance audits —
//! so any behavioral drift in any layer (xml, algebra, engine, net,
//! peer, baselines, workloads) shows up as a readable diff. Wall-clock
//! measurements are elided at golden scale (see `mqp_bench::fmt_ms`),
//! which is what makes byte-equality meaningful across machines.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mqp-bench --test golden
//! ```
//!
//! and commit the updated snapshots together with the change (DESIGN.md
//! treats a snapshot edit like an invariant edit: it needs the *why* in
//! the same PR).

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Runs `bin` at golden scale twice — once for the snapshot diff, once
/// to prove the run itself is deterministic — and compares against
/// `tests/golden/<name>.txt`.
fn check(name: &str, bin: &str) {
    let run = || {
        let out = Command::new(bin)
            .env("MQP_EXP_SCALE", "golden")
            .output()
            .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
        assert!(
            out.status.success(),
            "{name} exited with {:?}\nstderr:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("experiment output is UTF-8")
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "{name}: two runs with the same seed diverged (DESIGN.md invariant 6)"
    );

    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &first).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p mqp-bench --test golden",
            path.display()
        )
    });
    if first != want {
        // Line-level context first; full dump only if the shape matches.
        let got_lines: Vec<&str> = first.lines().collect();
        let want_lines: Vec<&str> = want.lines().collect();
        for (i, (g, w)) in got_lines.iter().zip(&want_lines).enumerate() {
            assert_eq!(
                g,
                w,
                "{name}: first divergence at line {} (run UPDATE_GOLDEN=1 to accept)",
                i + 1
            );
        }
        assert_eq!(
            got_lines.len(),
            want_lines.len(),
            "{name}: output length changed (run UPDATE_GOLDEN=1 to accept)"
        );
        // Same lines, different bytes: trailing-terminator drift.
        assert_eq!(
            first, want,
            "{name}: line content matches but raw bytes differ (trailing \
             newline?); run UPDATE_GOLDEN=1 to accept"
        );
    }
}

macro_rules! golden {
    ($($test:ident => $bin:ident),* $(,)?) => {$(
        #[test]
        fn $test() {
            check(stringify!($bin), env!(concat!("CARGO_BIN_EXE_", stringify!($bin))));
        }
    )*};
}

golden! {
    golden_fig1_gene_routing => exp_fig1_gene_routing,
    golden_fig2_pipeline => exp_fig2_pipeline,
    golden_fig3_mqp_trace => exp_fig3_mqp_trace,
    golden_fig5_namespace_routing => exp_fig5_namespace_routing,
    golden_routing_comparison => exp_routing_comparison,
    golden_rewrite_ablation => exp_rewrite_ablation,
    golden_intensional_redundancy => exp_intensional_redundancy,
    golden_currency_latency => exp_currency_latency,
    golden_provenance_spoofing => exp_provenance_spoofing,
    golden_index_detail_tradeoff => exp_index_detail_tradeoff,
    golden_lang => exp_lang,
    golden_churn_resilience => exp_churn_resilience,
    golden_scale => exp_scale,
    golden_socket_soak => exp_socket_soak,
    golden_crash_recovery => exp_crash_recovery,
    golden_moas => exp_moas,
}
