//! Resilience invariants at six-digit scale: the message-accounting
//! identity (`sent = delivered + dropped + lost + in-flight`) must hold
//! exactly after an adversarial run over a 100k-peer lazy world — with
//! loss, duplication, retries, and seller churn all active — and the
//! lazy harness must stay lazy while it happens.

use mqp_net::{FaultPlan, NodeId};
use mqp_peer::RetryPolicy;
use mqp_workloads::scale::{build, ScaleConfig};

#[test]
fn accounting_identity_at_100k_peers() {
    let mut w = build(ScaleConfig {
        sellers: 100_000,
        cities: 0,
        seed: 7,
    });
    assert!(
        w.harness.len() > 100_000,
        "world too small: {}",
        w.harness.len()
    );

    // Crash/rejoin schedule over the first thousand sellers, plus loss
    // and duplication — every fault class that mutates the counters.
    let eligible: Vec<NodeId> = (0..1_000).map(|s| w.seller_node(s)).collect();
    w.harness.retry = Some(RetryPolicy {
        timeout_us: 300_000,
        max_retries: 3,
    });
    w.harness.net.set_fault_plan(
        FaultPlan::new(7)
            .with_loss(0.05)
            .with_duplication(0.02)
            .with_generated_churn(&eligible, 64, 60_000_000, 5_000_000),
    );

    for q in 0..8 {
        let s = q * w.sellers / 8;
        let plan = w.query(w.seller_city(s), w.seller_category(s));
        w.harness.submit(w.client, plan);
        w.harness.run(1_000_000);
    }

    let in_flight = w.harness.net.in_flight();
    let stats = w.harness.net.stats();
    assert!(stats.messages_sent > 0, "the run must exchange messages");
    assert!(
        stats.balances(in_flight),
        "accounting identity violated at 100k peers: sent {} != delivered {} \
         + dropped {} + lost {} + in-flight {in_flight}",
        stats.messages_sent,
        stats.messages_delivered,
        stats.messages_dropped,
        stats.messages_lost,
    );
    assert!(stats.events_processed >= stats.messages_delivered);

    // Eight queries through 100k peers touch a few dozen of them.
    let materialized = w.harness.materialized();
    assert!(
        materialized < 200,
        "lazy world over-materialized: {materialized} peers"
    );
}
