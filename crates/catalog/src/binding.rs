//! Bindings: what a catalog says a resource name can be replaced with.
//!
//! A [`Binding`] is a set of [`BindingAlternative`]s — the paper's `Or`
//! (conjoint union, §4.2): each alternative alone suffices for the
//! query's interest area, but they differ in how many servers must be
//! visited (latency), and how stale the answer may be (currency, §4.3).

use mqp_algebra::plan::{OrAlt, Plan, UrlRef};
use mqp_namespace::InterestArea;

use crate::entry::{Level, ServerId};

/// One way to satisfy an interest area.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingAlternative {
    /// Servers to visit; the answer is the union of their holdings.
    /// Each carries the level the binding addresses it at — a base
    /// server supplies data, an index server continues resolution
    /// (§4.2 Example 2 routes to `index[…]@R`).
    pub servers: Vec<(ServerId, Level)>,
    /// Upper bound on answer staleness, in minutes (0 = current).
    pub staleness: u32,
    /// Human-readable derivation, e.g. the statement that licensed it.
    pub note: String,
}

impl BindingAlternative {
    /// Number of distinct servers this alternative visits — the latency
    /// proxy of §4.3 ("the need to visit two sites rather than one").
    pub fn fanout(&self) -> usize {
        self.servers.len()
    }
}

/// All known ways to satisfy an interest area.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The query area being bound.
    pub area: InterestArea,
    /// The alternatives; index 0 is the *default* binding (the plain
    /// union of overlapping base servers, always current).
    pub alternatives: Vec<BindingAlternative>,
}

/// Query-issuer preference between the §4.3 tradeoffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preference {
    /// Minimize staleness first, then fanout: the "current" choice.
    Current,
    /// Minimize fanout first (fewer sites ⇒ lower latency), accepting
    /// staleness: the "fast" choice.
    Fast,
}

/// The outcome of choosing an alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct BindChoice {
    /// Index into [`Binding::alternatives`].
    pub index: usize,
    /// The chosen alternative (cloned for convenience).
    pub alternative: BindingAlternative,
}

impl Binding {
    /// True when the catalog knew nothing for the area.
    pub fn is_empty(&self) -> bool {
        self.alternatives.is_empty()
    }

    /// Chooses an alternative under the given preference.
    pub fn choose(&self, pref: Preference) -> Option<BindChoice> {
        let idx = match pref {
            Preference::Current => {
                self.alternatives
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, a)| (a.staleness, a.fanout()))?
                    .0
            }
            Preference::Fast => {
                self.alternatives
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, a)| (a.fanout(), a.staleness))?
                    .0
            }
        };
        Some(BindChoice {
            index: idx,
            alternative: self.alternatives[idx].clone(),
        })
    }

    /// Converts the binding into plan form: a single alternative becomes
    /// a union of `url` leaves; several become the `Or` of §4.2, each
    /// alternative tagged with its staleness bound.
    ///
    /// Every `url` leaf carries two annotations: `level` (how the
    /// server is being addressed — base data vs. index continuation)
    /// and `area` (the query's interest area, so the serving peer
    /// returns only items from overlapping collections).
    pub fn to_plan(&self) -> Option<Plan> {
        let alts: Vec<OrAlt> = self
            .alternatives
            .iter()
            .map(|a| OrAlt {
                plan: alternative_plan(a, &self.area),
                staleness: Some(a.staleness),
            })
            .collect();
        match alts.len() {
            0 => None,
            1 => Some(alts.into_iter().next().unwrap().plan),
            _ => Some(Plan::Or(alts)),
        }
    }
}

fn alternative_plan(a: &BindingAlternative, area: &InterestArea) -> Plan {
    let urls: Vec<Plan> = a
        .servers
        .iter()
        .map(|(s, level)| {
            let mut u = UrlRef::new(s.to_url());
            u.meta.set("level", level.name());
            u.meta.set("area", mqp_namespace::urn::encode_area(area));
            Plan::Url(u)
        })
        .collect();
    if urls.len() == 1 {
        urls.into_iter().next().unwrap()
    } else {
        Plan::union(urls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt(servers: &[&str], staleness: u32) -> BindingAlternative {
        BindingAlternative {
            servers: servers
                .iter()
                .map(|s| (ServerId::new(*s), Level::Base))
                .collect(),
            staleness,
            note: String::new(),
        }
    }

    fn example3_binding() -> Binding {
        // §4.3: base[Portland, CDs]@R{30} | (R ∪ S){0}
        Binding {
            area: InterestArea::parse(&[&["Portland", "CDs"]]),
            alternatives: vec![alt(&["R", "S"], 0), alt(&["R"], 30)],
        }
    }

    #[test]
    fn current_prefers_fresh_fast_prefers_few() {
        let b = example3_binding();
        let current = b.choose(Preference::Current).unwrap();
        assert_eq!(current.alternative.servers.len(), 2);
        assert_eq!(current.alternative.staleness, 0);
        let fast = b.choose(Preference::Fast).unwrap();
        assert_eq!(fast.alternative.servers.len(), 1);
        assert_eq!(fast.alternative.staleness, 30);
    }

    #[test]
    fn to_plan_emits_or_with_staleness() {
        let plan = example3_binding().to_plan().unwrap();
        match &plan {
            Plan::Or(alts) => {
                assert_eq!(alts.len(), 2);
                assert_eq!(alts[0].staleness, Some(0));
                assert_eq!(alts[1].staleness, Some(30));
                assert!(matches!(alts[0].plan, Plan::Union(_)));
                assert!(matches!(alts[1].plan, Plan::Url(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn single_alternative_skips_or() {
        let b = Binding {
            area: InterestArea::parse(&[&["Portland", "CDs"]]),
            alternatives: vec![alt(&["R"], 0)],
        };
        assert!(matches!(b.to_plan(), Some(Plan::Url(_))));
    }

    #[test]
    fn empty_binding_has_no_plan() {
        let b = Binding {
            area: InterestArea::parse(&[&["Portland", "CDs"]]),
            alternatives: vec![],
        };
        assert!(b.is_empty());
        assert!(b.to_plan().is_none());
        assert!(b.choose(Preference::Fast).is_none());
    }

    #[test]
    fn url_leaves_carry_level() {
        let b = Binding {
            area: InterestArea::parse(&[&["Portland", "CDs"]]),
            alternatives: vec![BindingAlternative {
                servers: vec![(ServerId::new("R"), Level::Index)],
                staleness: 0,
                note: String::new(),
            }],
        };
        match b.to_plan().unwrap() {
            Plan::Url(u) => {
                assert_eq!(u.href, "mqp://R/");
                assert_eq!(u.meta.get("level"), Some("index"));
            }
            other => panic!("expected Url, got {other:?}"),
        }
    }
}
