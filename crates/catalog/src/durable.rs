//! Crash-consistent persistence for the catalog (DESIGN.md §12).
//!
//! A peer's registrations are the only state it cannot recompute after
//! a crash: its own data collections come back from disk, but what it
//! *knew about the federation* — and, for index/meta-index servers,
//! what the federation registered *with it* — is gone unless it was
//! journaled. This module is that journal:
//!
//! * an append-only **WAL** of [`CatalogOp`] records, each framed as
//!   `u32be len | u32be crc32 | payload` — the same length-prefix
//!   grammar discipline as the socket framing in `mqp_peer::framing`,
//!   plus a checksum because a disk tail (unlike a TCP stream) can be
//!   torn mid-record by a crash;
//! * periodic **compacted snapshots**: [`Catalog::snapshot_ops`]
//!   re-expressed as the same record grammar, written atomically, after
//!   which the WAL restarts empty;
//! * a **recovery** routine that replays snapshot-then-WAL and, on the
//!   first torn or corrupt record, *truncates* instead of poisoning:
//!   the recovered catalog is always the replay of some prefix of what
//!   was logged (the prefix-consistency invariant, property-tested
//!   below). Contrast `FrameDecoder`, which poisons on a corrupt length
//!   — a live TCP stream has a peer to disconnect; a WAL tail has
//!   nothing to blame but the crash that tore it.
//!
//! Because every catalog mutation is idempotent (register merges by
//! `(server, level)`, `map_urn` and `add_statement` dedup, unregister
//! retains), a snapshot followed by a *stale* WAL replays to the same
//! catalog as the full log — so a crash landing between snapshot commit
//! and WAL truncate is harmless. That window is exactly the kind of
//! kill point [`FaultyDisk`] exists to exercise deterministically.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mqp_namespace::urn::{decode_area, encode_area};
use mqp_net::{DiskFaults, Retrier};

use crate::entry::{CatalogEntry, Level, ServerId};
use crate::intension::IntensionalStatement;
use crate::store::Catalog;
use crate::trust::TrustRecord;

// ----------------------------------------------------------------------
// CRC32 (IEEE, reflected) — bitwise, no table: WAL records are small
// and appended once per registration, not per packet.
// ----------------------------------------------------------------------

/// CRC-32/ISO-HDLC of `bytes` (the common zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ----------------------------------------------------------------------
// The op grammar
// ----------------------------------------------------------------------

/// One durable catalog mutation. The text codec mirrors the `reg` wire
/// frame's field layout (`mqp_peer::wire`): a space-separated header
/// line carrying the enum tags and flags, then one field per line. Every
/// op is idempotent under replay — the property compaction and
/// crash-in-compaction safety both lean on.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogOp {
    /// Register (or refresh) an entry — the dominant record.
    Register(CatalogEntry),
    /// Drop every entry a server registered.
    Unregister(ServerId),
    /// Map a named URN to a server (+ optional collection id).
    MapUrn {
        /// The named URN, e.g. `urn:ForSale:Portland-CDs`.
        urn: String,
        /// The server it resolves to.
        server: ServerId,
        /// Optional collection id at that server.
        collection: Option<String>,
    },
    /// Retain an intensional statement.
    Statement(IntensionalStatement),
    /// Record a trust transition (DESIGN.md §14): the server's full
    /// provenance aggregate, journaled whenever its level changes so a
    /// quarantined hijacker cannot launder its binding through
    /// crash/rejoin. Replay merges commutatively (`TrustBook::install`),
    /// so the op is idempotent like every other record.
    Trust(TrustRecord),
}

fn flag(b: bool) -> u8 {
    u8::from(b)
}

fn parse_flag(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag {other:?}")),
    }
}

impl CatalogOp {
    /// Encodes the op as the WAL's text payload.
    pub fn encode(&self) -> String {
        match self {
            CatalogOp::Register(e) => {
                let mut s = format!(
                    "reg {} {} {}\n{}\n{}",
                    e.level.name(),
                    flag(e.authoritative),
                    flag(e.collection.is_some()),
                    e.server.as_str(),
                    encode_area(&e.area)
                );
                if let Some(c) = &e.collection {
                    s.push('\n');
                    s.push_str(c);
                }
                s
            }
            CatalogOp::Unregister(server) => format!("unreg\n{}", server.as_str()),
            CatalogOp::MapUrn {
                urn,
                server,
                collection,
            } => {
                let mut s = format!(
                    "urn {}\n{}\n{}",
                    flag(collection.is_some()),
                    urn,
                    server.as_str()
                );
                if let Some(c) = collection {
                    s.push('\n');
                    s.push_str(c);
                }
                s
            }
            CatalogOp::Statement(stmt) => format!("stmt\n{stmt}"),
            CatalogOp::Trust(r) => {
                let mut s = format!(
                    "trust {} {} {} {} {} {} {} {} {}\n{}",
                    r.registrar,
                    r.first_seen,
                    r.last_seen,
                    r.registrations,
                    r.strikes,
                    r.clears,
                    r.stale_marks,
                    r.last_strike_at,
                    r.areas.len(),
                    r.server.as_str(),
                );
                for area in &r.areas {
                    s.push('\n');
                    s.push_str(area);
                }
                s
            }
        }
    }

    /// Decodes a WAL payload. Errors name the field that failed — a
    /// decode error truncates recovery at that record, so the message
    /// ends up in operator-facing reports.
    pub fn decode(payload: &str) -> Result<CatalogOp, String> {
        let (head, rest) = payload.split_once('\n').unwrap_or((payload, ""));
        let mut words = head.split_whitespace();
        match words.next() {
            Some("reg") => {
                let level = words
                    .next()
                    .and_then(Level::parse)
                    .ok_or("reg: bad level")?;
                let authoritative = parse_flag(words.next().ok_or("reg: missing auth flag")?)?;
                let has_collection = parse_flag(words.next().ok_or("reg: missing coll flag")?)?;
                let mut lines = rest.splitn(if has_collection { 3 } else { 2 }, '\n');
                let server = match lines.next() {
                    Some(s) if !s.is_empty() => s,
                    _ => return Err("reg: missing server".into()),
                };
                let area = decode_area(lines.next().ok_or("reg: missing area")?)
                    .map_err(|e| format!("reg: {e}"))?;
                let collection = if has_collection {
                    Some(lines.next().ok_or("reg: missing collection")?.to_owned())
                } else {
                    None
                };
                Ok(CatalogOp::Register(CatalogEntry {
                    server: ServerId::new(server),
                    level,
                    area,
                    collection,
                    authoritative,
                }))
            }
            Some("unreg") => match rest {
                "" => Err("unreg: missing server".into()),
                s => Ok(CatalogOp::Unregister(ServerId::new(s))),
            },
            Some("urn") => {
                let has_collection = parse_flag(words.next().ok_or("urn: missing coll flag")?)?;
                let mut lines = rest.splitn(if has_collection { 3 } else { 2 }, '\n');
                let urn = match lines.next() {
                    Some(s) if !s.is_empty() => s.to_owned(),
                    _ => return Err("urn: missing urn".into()),
                };
                let server = match lines.next() {
                    Some(s) if !s.is_empty() => ServerId::new(s),
                    _ => return Err("urn: missing server".into()),
                };
                let collection = if has_collection {
                    Some(lines.next().ok_or("urn: missing collection")?.to_owned())
                } else {
                    None
                };
                Ok(CatalogOp::MapUrn {
                    urn,
                    server,
                    collection,
                })
            }
            Some("stmt") => rest
                .parse::<IntensionalStatement>()
                .map(CatalogOp::Statement)
                .map_err(|e| format!("stmt: {e}")),
            Some("trust") => {
                let mut num = || -> Result<u64, String> {
                    words
                        .next()
                        .ok_or("trust: missing field")?
                        .parse::<u64>()
                        .map_err(|e| format!("trust: {e}"))
                };
                let registrar = num()?;
                let first_seen = num()?;
                let last_seen = num()?;
                let registrations = num()?;
                let strikes = num()?;
                let clears = num()?;
                let stale_marks = num()?;
                let last_strike_at = num()?;
                let n_areas = num()? as usize;
                let mut lines = rest.split('\n');
                let server = match lines.next() {
                    Some(s) if !s.is_empty() => ServerId::new(s),
                    _ => return Err("trust: missing server".into()),
                };
                let mut areas = Vec::with_capacity(n_areas);
                for _ in 0..n_areas {
                    areas.push(lines.next().ok_or("trust: missing area")?.to_owned());
                }
                areas.sort();
                areas.dedup();
                Ok(CatalogOp::Trust(TrustRecord {
                    server,
                    registrar,
                    first_seen,
                    last_seen,
                    registrations,
                    strikes,
                    clears,
                    stale_marks,
                    last_strike_at,
                    areas,
                }))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Replays the op into a catalog.
    pub fn apply(&self, catalog: &mut Catalog) {
        match self {
            CatalogOp::Register(e) => catalog.register(e.clone()),
            CatalogOp::Unregister(s) => catalog.unregister(s),
            CatalogOp::MapUrn {
                urn,
                server,
                collection,
            } => catalog.map_urn(urn, server.clone(), collection.clone()),
            CatalogOp::Statement(stmt) => catalog.add_statement(stmt.clone()),
            CatalogOp::Trust(r) => catalog.trust_mut().install(r.clone()),
        }
    }
}

// ----------------------------------------------------------------------
// Record framing: u32be len | u32be crc32 | payload
// ----------------------------------------------------------------------

/// Sanity cap on a single record; anything larger is treated as a torn
/// length, not a giant allocation (`mqp_peer::framing` makes the same
/// move with `MAX_FRAME`).
const MAX_RECORD: usize = 1 << 20;
/// Bytes of framing per record (length + checksum).
const HEADER: usize = 8;

/// Appends one framed record to `out`.
fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_RECORD,
        "record payload must be 1..={MAX_RECORD} bytes"
    );
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Scans a log image into `(offset, payload)` records, stopping at the
/// first record that is torn (header or payload runs past the end),
/// implausible (zero or oversized length), or checksum-corrupt. Returns
/// the records before the damage and the byte offset where scanning
/// stopped (`None` = the whole image parsed cleanly).
fn scan_records(bytes: &[u8]) -> (Vec<(usize, &[u8])>, Option<usize>) {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes.len() - pos < HEADER {
            return (out, Some(pos));
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD || bytes.len() - pos - HEADER < len {
            return (out, Some(pos));
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + len];
        if crc32(payload) != crc {
            return (out, Some(pos));
        }
        out.push((pos, payload));
        pos += HEADER + len;
    }
    (out, None)
}

// ----------------------------------------------------------------------
// The disk abstraction and its shims
// ----------------------------------------------------------------------

/// A disk operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// fsync failed transiently — retried by the WAL's [`Retrier`].
    SyncFailed,
    /// Any other I/O failure.
    Io(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::SyncFailed => f.write_str("fsync failed"),
            DiskError::Io(msg) => write!(f, "disk i/o: {msg}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// What the durable catalog needs from storage: an appendable WAL with
/// an explicit sync barrier, an atomically-replaced snapshot, and a
/// crash operation that models power loss (everything unsynced may be
/// lost, possibly mid-record).
pub trait Disk: fmt::Debug + Send {
    /// The current WAL image, including unsynced bytes (a live reader
    /// sees its own writes; only a crash discards them).
    fn wal_read(&mut self) -> Result<Vec<u8>, DiskError>;
    /// Appends bytes to the WAL (not durable until [`Disk::sync`]).
    fn wal_append(&mut self, bytes: &[u8]) -> Result<(), DiskError>;
    /// Empties the WAL (the post-snapshot compaction step).
    fn wal_truncate(&mut self) -> Result<(), DiskError>;
    /// Makes all appended WAL bytes crash-durable.
    fn sync(&mut self) -> Result<(), DiskError>;
    /// The current snapshot, if one was ever written.
    fn snapshot_read(&mut self) -> Result<Option<Vec<u8>>, DiskError>;
    /// Atomically replaces the snapshot (the temp-file + rename model:
    /// after this returns, a crash sees the new image, never a blend).
    fn snapshot_write(&mut self, bytes: &[u8]) -> Result<(), DiskError>;
    /// Simulated power loss: unsynced WAL bytes vanish (shims may keep
    /// a torn prefix of them).
    fn crash(&mut self);
}

/// The plain in-memory disk: a WAL byte vector with a synced-watermark,
/// plus a snapshot slot. Crash truncates the WAL to the watermark —
/// clean loss, never torn.
#[derive(Debug, Default)]
pub struct MemDisk {
    wal: Vec<u8>,
    /// `wal[..synced]` survives a crash.
    synced: usize,
    snapshot: Option<Vec<u8>>,
}

impl MemDisk {
    /// An empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Total WAL bytes (synced or not).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Crash-durable WAL bytes.
    pub fn synced_len(&self) -> usize {
        self.synced
    }
}

impl Disk for MemDisk {
    fn wal_read(&mut self) -> Result<Vec<u8>, DiskError> {
        Ok(self.wal.clone())
    }

    fn wal_append(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        self.wal.extend_from_slice(bytes);
        Ok(())
    }

    fn wal_truncate(&mut self) -> Result<(), DiskError> {
        self.wal.clear();
        self.synced = 0;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), DiskError> {
        self.synced = self.wal.len();
        Ok(())
    }

    fn snapshot_read(&mut self) -> Result<Option<Vec<u8>>, DiskError> {
        Ok(self.snapshot.clone())
    }

    fn snapshot_write(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        self.snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn crash(&mut self) {
        self.wal.truncate(self.synced);
    }
}

/// The no-durability baseline: accepts every write, persists nothing.
/// Recovery always yields an empty catalog. `exp_crash_recovery` runs
/// this arm through the *identical* code path as the durable arms, so
/// the recall gap it reports is attributable to the WAL alone.
#[derive(Debug, Default)]
pub struct NullDisk;

impl Disk for NullDisk {
    fn wal_read(&mut self) -> Result<Vec<u8>, DiskError> {
        Ok(Vec::new())
    }

    fn wal_append(&mut self, _bytes: &[u8]) -> Result<(), DiskError> {
        Ok(())
    }

    fn wal_truncate(&mut self) -> Result<(), DiskError> {
        Ok(())
    }

    fn sync(&mut self) -> Result<(), DiskError> {
        Ok(())
    }

    fn snapshot_read(&mut self) -> Result<Option<Vec<u8>>, DiskError> {
        Ok(None)
    }

    fn snapshot_write(&mut self, _bytes: &[u8]) -> Result<(), DiskError> {
        Ok(())
    }

    fn crash(&mut self) {}
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`MemDisk`] wrapped in seeded fault injection, configured by the
/// fault plan's [`DiskFaults`] knobs:
///
/// * `torn_tail` — a crash keeps a seeded *prefix* of the unsynced tail
///   instead of dropping it whole, leaving a mid-record tear for
///   recovery to truncate;
/// * `corrupt_read` — each WAL read-back flips one seeded byte in the
///   returned copy (the underlying bytes stay intact), modelling media
///   rot between write and replay;
/// * `sync_fail_period` — every Nth fsync fails transiently, exercising
///   the [`Retrier`] path.
///
/// All draws are splitmix64 off the seed and a per-operation counter:
/// same seed, same op sequence ⇒ same faults, which is what makes
/// recovery property-testable and the experiment golden-checkable.
#[derive(Debug)]
pub struct FaultyDisk {
    mem: MemDisk,
    cfg: DiskFaults,
    syncs: u64,
    reads: u64,
    crashes: u64,
}

impl FaultyDisk {
    /// Wraps a fresh [`MemDisk`] in the given fault knobs.
    pub fn new(cfg: DiskFaults) -> Self {
        FaultyDisk {
            mem: MemDisk::new(),
            cfg,
            syncs: 0,
            reads: 0,
            crashes: 0,
        }
    }

    /// Total WAL bytes (synced or not).
    pub fn wal_len(&self) -> usize {
        self.mem.wal_len()
    }

    /// Crash-durable WAL bytes.
    pub fn synced_len(&self) -> usize {
        self.mem.synced_len()
    }
}

impl Disk for FaultyDisk {
    fn wal_read(&mut self) -> Result<Vec<u8>, DiskError> {
        self.reads += 1;
        let mut data = self.mem.wal_read()?;
        if self.cfg.corrupt_read && !data.is_empty() {
            let i = (splitmix64(self.cfg.seed ^ (self.reads << 16)) as usize) % data.len();
            data[i] ^= 0x40;
        }
        Ok(data)
    }

    fn wal_append(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        self.mem.wal_append(bytes)
    }

    fn wal_truncate(&mut self) -> Result<(), DiskError> {
        self.mem.wal_truncate()
    }

    fn sync(&mut self) -> Result<(), DiskError> {
        self.syncs += 1;
        if self.cfg.sync_fail_period > 0 && self.syncs.is_multiple_of(self.cfg.sync_fail_period) {
            return Err(DiskError::SyncFailed);
        }
        self.mem.sync()
    }

    fn snapshot_read(&mut self) -> Result<Option<Vec<u8>>, DiskError> {
        self.mem.snapshot_read()
    }

    fn snapshot_write(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        self.mem.snapshot_write(bytes)
    }

    fn crash(&mut self) {
        self.crashes += 1;
        let tail = self.mem.wal.len() - self.mem.synced;
        if self.cfg.torn_tail && tail > 0 {
            // Keep a strict prefix of the unsynced tail: 0..tail-1 bytes.
            let keep = (splitmix64(self.cfg.seed ^ (self.crashes << 32)) as usize) % tail;
            self.mem.wal.truncate(self.mem.synced + keep);
            self.mem.synced = self.mem.wal.len().min(self.mem.synced);
        } else {
            self.mem.crash();
        }
    }
}

/// A cloneable handle to a [`Disk`]: the durable catalog inside a peer
/// and the test/experiment harness observing it share the same storage.
#[derive(Clone)]
pub struct SharedDisk(Arc<Mutex<dyn Disk>>);

impl fmt::Debug for SharedDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.lock() {
            Ok(d) => write!(f, "SharedDisk({d:?})"),
            Err(_) => f.write_str("SharedDisk(<poisoned>)"),
        }
    }
}

impl SharedDisk {
    /// Wraps a disk in a shared handle.
    pub fn new(disk: impl Disk + 'static) -> Self {
        SharedDisk(Arc::new(Mutex::new(disk)))
    }

    /// Runs `f` with exclusive access to the disk. A poisoned lock is
    /// recovered — the disk models hardware, and hardware does not care
    /// that some thread panicked while holding the handle.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn Disk) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut *guard)
    }
}

// ----------------------------------------------------------------------
// The durable catalog
// ----------------------------------------------------------------------

/// What recovery found and did — surfaced to drivers as
/// `Effect::Recovered` so harnesses can report it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed from the snapshot.
    pub snapshot_records: usize,
    /// Records replayed from the WAL tail.
    pub wal_records: usize,
    /// Byte offset in the WAL where replay stopped on a torn/corrupt
    /// record (`None` = the whole WAL parsed cleanly).
    pub truncated_at: Option<usize>,
    /// WAL bytes discarded past the truncation point.
    pub dropped_bytes: usize,
    /// Catalog entries alive after recovery.
    pub entries: usize,
}

/// Write-path counters for the durable catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Records appended to the WAL.
    pub records_appended: u64,
    /// Successful sync barriers.
    pub syncs: u64,
    /// Transient sync failures absorbed by the retrier.
    pub sync_retries: u64,
    /// Snapshots written (compactions).
    pub snapshots: u64,
}

/// Deterministic jitter seed for the WAL fsync retrier.
const WAL_RETRY_SEED: u64 = 0xD15C_FA17;

/// The crash-consistent catalog journal: log ops as they happen,
/// compact every `snapshot_every` records, recover after a crash.
///
/// Cloning shares the underlying [`SharedDisk`] — a clone is "the same
/// peer's disk seen from elsewhere", which is exactly what a restart
/// needs (the restarted peer recovers from the disk the dead
/// incarnation wrote).
#[derive(Debug, Clone)]
pub struct DurableCatalog {
    disk: SharedDisk,
    /// Compact after this many WAL records (0 = never).
    snapshot_every: usize,
    since_snapshot: usize,
    /// Sync once per this many logged ops (1 = every op). Larger values
    /// widen the crash-before-fsync window — deliberately, for the
    /// kill-point sweep.
    sync_every: usize,
    since_sync: usize,
    retry: Retrier,
    stats: DurableStats,
}

impl DurableCatalog {
    /// A durable catalog over `disk`: sync every op, compact every 64
    /// records, fsync retries paced 20µs→2ms with an 8-attempt budget.
    pub fn new(disk: SharedDisk) -> Self {
        DurableCatalog {
            disk,
            snapshot_every: 64,
            since_snapshot: 0,
            sync_every: 1,
            since_sync: 0,
            retry: Retrier::new(
                Duration::from_micros(20),
                Duration::from_millis(2),
                WAL_RETRY_SEED,
                8,
            ),
            stats: DurableStats::default(),
        }
    }

    /// Sets the compaction threshold (0 = never compact).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Sets the sync cadence: barrier once per `every` logged ops
    /// (clamped to ≥ 1). Values above 1 leave a crash-before-fsync
    /// window of up to `every - 1` records.
    pub fn with_sync_every(mut self, every: usize) -> Self {
        self.sync_every = every.max(1);
        self
    }

    /// The shared disk handle.
    pub fn disk(&self) -> &SharedDisk {
        &self.disk
    }

    /// Write-path counters.
    pub fn stats(&self) -> DurableStats {
        self.stats
    }

    /// Journals one op: append, then sync if the cadence says so.
    pub fn log(&mut self, op: &CatalogOp) -> Result<(), DiskError> {
        let mut rec = Vec::new();
        append_record(&mut rec, op.encode().as_bytes());
        self.disk.with(|d| d.wal_append(&rec))?;
        self.stats.records_appended += 1;
        self.since_snapshot += 1;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.barrier()?;
        }
        Ok(())
    }

    /// Forces a sync barrier regardless of cadence.
    pub fn flush(&mut self) -> Result<(), DiskError> {
        if self.since_sync > 0 {
            self.barrier()?;
        }
        Ok(())
    }

    /// The fsync with retry pacing — the same [`Retrier`] the TCP
    /// driver uses for link reconnects.
    fn barrier(&mut self) -> Result<(), DiskError> {
        let disk = self.disk.clone();
        let mut attempts = 0u64;
        let r = self.retry.run_blocking(|| {
            attempts += 1;
            disk.with(|d| d.sync())
        });
        self.stats.sync_retries += attempts.saturating_sub(1);
        if r.is_ok() {
            self.stats.syncs += 1;
            self.since_sync = 0;
        }
        r
    }

    /// Seeds the journal with a catalog's current content: writes it as
    /// the snapshot and starts the WAL empty. Called once when a peer
    /// turns durability on with state already in hand.
    pub fn seed(&mut self, catalog: &Catalog) -> Result<(), DiskError> {
        self.compact(catalog)
    }

    /// Compacts if the WAL has grown past the threshold. Returns
    /// whether a snapshot was written.
    pub fn maybe_compact(&mut self, catalog: &Catalog) -> Result<bool, DiskError> {
        if self.snapshot_every == 0 || self.since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.compact(catalog)?;
        Ok(true)
    }

    /// Writes `catalog` as the snapshot, then truncates the WAL. A
    /// crash between the two steps leaves snapshot + stale WAL — safe,
    /// because replaying the stale ops over the snapshot is idempotent
    /// (property-tested below).
    pub fn compact(&mut self, catalog: &Catalog) -> Result<(), DiskError> {
        let mut snap = Vec::new();
        for op in catalog.snapshot_ops() {
            append_record(&mut snap, op.encode().as_bytes());
        }
        self.disk.with(|d| d.snapshot_write(&snap))?;
        self.disk.with(|d| d.wal_truncate())?;
        self.since_sync = 0;
        self.stats.snapshots += 1;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Simulated power loss on the underlying disk.
    pub fn crash(&mut self) {
        self.disk.with(|d| d.crash());
        self.since_sync = 0;
        self.since_snapshot = 0;
    }

    /// Recovers the catalog: replay the snapshot, then the WAL,
    /// truncating at the first torn/corrupt/undecodable record. The
    /// result is always the replay of a prefix of what was logged.
    /// Finishes by re-compacting, so the damaged tail is physically
    /// gone and cannot resurrect on a later recovery.
    pub fn recover(&mut self) -> Result<(Catalog, RecoveryReport), DiskError> {
        let snap = self.disk.with(|d| d.snapshot_read())?;
        let wal = self.disk.with(|d| d.wal_read())?;
        let mut catalog = Catalog::new();
        let mut report = RecoveryReport::default();

        if let Some(snap) = &snap {
            let (records, _) = scan_records(snap);
            for (_, payload) in records {
                let Ok(text) = std::str::from_utf8(payload) else {
                    break;
                };
                let Ok(op) = CatalogOp::decode(text) else {
                    break;
                };
                op.apply(&mut catalog);
                report.snapshot_records += 1;
            }
        }

        let (records, torn_at) = scan_records(&wal);
        let mut stopped_at = torn_at;
        for (offset, payload) in records {
            let op = std::str::from_utf8(payload)
                .map_err(|e| e.to_string())
                .and_then(CatalogOp::decode);
            match op {
                Ok(op) => {
                    op.apply(&mut catalog);
                    report.wal_records += 1;
                }
                Err(_) => {
                    // CRC-clean but undecodable: same truncation rule.
                    stopped_at = Some(offset);
                    break;
                }
            }
        }
        report.truncated_at = stopped_at;
        report.dropped_bytes = stopped_at.map_or(0, |at| wal.len() - at);
        report.entries = catalog.entries().len();

        self.compact(&catalog)?;
        Ok((catalog, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::InterestArea;

    fn area(cells: &[&[&str]]) -> InterestArea {
        InterestArea::parse(cells)
    }

    fn reg(server: &str, cell: &[&str]) -> CatalogOp {
        CatalogOp::Register(CatalogEntry::base(server, area(&[cell])))
    }

    /// A varied op sequence: registrations at every level, flags on and
    /// off, URN mappings, statements, an unregister.
    fn sample_ops() -> Vec<CatalogOp> {
        vec![
            reg("seller-1", &["Oregon/Portland", "Recreation"]),
            CatalogOp::Register(
                CatalogEntry::base("seller-2", area(&[&["Oregon", "Music/CDs"]]))
                    .with_collection("/data[@id='245']"),
            ),
            CatalogOp::Register(
                CatalogEntry::index("idx-pdx", area(&[&["Oregon/Portland", "*"]])).authoritative(),
            ),
            CatalogOp::Register(CatalogEntry::meta_index("meta", area(&[&["*", "*"]]))),
            CatalogOp::MapUrn {
                urn: "urn:ForSale:Portland-CDs".to_owned(),
                server: ServerId::new("seller-2"),
                collection: Some("/data[@id='245']".to_owned()),
            },
            CatalogOp::MapUrn {
                urn: "urn:ForSale:Anything".to_owned(),
                server: ServerId::new("seller-1"),
                collection: None,
            },
            CatalogOp::Statement(
                "base[Oregon.Portland, Recreation]@seller-1 = \
                 base[Oregon.Portland, Recreation]@seller-2"
                    .parse()
                    .unwrap(),
            ),
            CatalogOp::Unregister(ServerId::new("seller-1")),
            reg("seller-1", &["Oregon/Portland", "Recreation/SportingGoods"]),
            CatalogOp::Trust(TrustRecord {
                server: ServerId::new("hijack-7"),
                registrar: 3,
                first_seen: 10,
                last_seen: 400,
                registrations: 5,
                strikes: 2,
                clears: 1,
                stale_marks: 0,
                last_strike_at: 400,
                areas: vec![encode_area(&area(&[&["Oregon/Portland", "Recreation"]]))],
            }),
        ]
    }

    fn replay(ops: &[CatalogOp]) -> Catalog {
        let mut c = Catalog::new();
        for op in ops {
            op.apply(&mut c);
        }
        c
    }

    /// Canonical comparable digest of a catalog's durable content.
    fn digest(c: &Catalog) -> Vec<CatalogOp> {
        c.snapshot_ops()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn op_codec_roundtrips() {
        for op in sample_ops() {
            let text = op.encode();
            let back = CatalogOp::decode(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(back, op);
        }
    }

    #[test]
    fn op_decode_rejects_garbage() {
        for bad in [
            "",
            "bogus",
            "reg base 1",
            "reg base 2 0\nS\n+a",
            "reg tower 0 0\nS\n+a",
            "reg base 0 1\nS\n+a",
            "unreg",
            "urn 1\nurn:X:y\nS",
            "stmt\nnot a statement",
            "trust 1 2 3",
            "trust a 2 3 4 5 6 7 8 0\nS",
            "trust 1 2 3 4 5 6 7 8 2\nS\n+only-one-area",
        ] {
            assert!(CatalogOp::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn record_scan_stops_at_damage() {
        let mut log = Vec::new();
        for op in sample_ops() {
            append_record(&mut log, op.encode().as_bytes());
        }
        let (records, torn) = scan_records(&log);
        assert_eq!(records.len(), sample_ops().len());
        assert_eq!(torn, None);

        // Flip a byte in the middle: scanning stops at that record.
        let mid = log.len() / 2;
        let mut bad = log.clone();
        bad[mid] ^= 0xFF;
        let (prefix, torn) = scan_records(&bad);
        assert!(prefix.len() < records.len());
        assert!(torn.is_some());

        // Truncate mid-record: same.
        let (prefix, torn) = scan_records(&log[..log.len() - 3]);
        assert_eq!(prefix.len(), records.len() - 1);
        assert!(torn.is_some());
    }

    #[test]
    fn log_crash_recover_roundtrips_synced_ops() {
        let mut d = DurableCatalog::new(SharedDisk::new(MemDisk::new())).with_snapshot_every(0);
        let ops = sample_ops();
        for op in &ops {
            d.log(op).unwrap();
        }
        d.crash();
        let (catalog, report) = d.recover().unwrap();
        assert_eq!(digest(&catalog), digest(&replay(&ops)));
        assert_eq!(report.wal_records, ops.len());
        assert_eq!(report.truncated_at, None);
        assert_eq!(report.entries, catalog.entries().len());
    }

    #[test]
    fn crash_before_fsync_loses_exactly_the_unsynced_tail() {
        let disk = SharedDisk::new(MemDisk::new());
        let mut d = DurableCatalog::new(disk)
            .with_snapshot_every(0)
            .with_sync_every(100); // never syncs within this test
        let ops = sample_ops();
        for op in &ops[..4] {
            d.log(op).unwrap();
        }
        d.flush().unwrap(); // first 4 durable
        for op in &ops[4..] {
            d.log(op).unwrap();
        }
        d.crash(); // rest vanish
        let (catalog, report) = d.recover().unwrap();
        assert_eq!(report.wal_records, 4);
        assert_eq!(digest(&catalog), digest(&replay(&ops[..4])));
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_wal() {
        let disk = SharedDisk::new(MemDisk::new());
        let mut d = DurableCatalog::new(disk.clone()).with_snapshot_every(3);
        let ops = sample_ops();
        let mut shadow = Catalog::new();
        for op in &ops {
            op.apply(&mut shadow);
            d.log(op).unwrap();
            d.maybe_compact(&shadow).unwrap();
        }
        assert!(d.stats().snapshots >= 2, "threshold 3 over 9 ops");
        let wal_len = disk.with(|dk| dk.wal_read().unwrap().len());
        let full_len = {
            let mut all = Vec::new();
            for op in &ops {
                append_record(&mut all, op.encode().as_bytes());
            }
            all.len()
        };
        assert!(wal_len < full_len, "compaction must shrink the live WAL");
        d.crash();
        let (catalog, _) = d.recover().unwrap();
        assert_eq!(digest(&catalog), digest(&shadow));
    }

    #[test]
    fn crash_between_snapshot_and_truncate_is_harmless() {
        // Simulate the torn compaction window by hand: write the
        // snapshot, "crash" before truncating, leave the full WAL.
        let ops = sample_ops();
        let full = replay(&ops);
        let disk = SharedDisk::new(MemDisk::new());
        disk.with(|d| {
            let mut snap = Vec::new();
            for op in full.snapshot_ops() {
                append_record(&mut snap, op.encode().as_bytes());
            }
            d.snapshot_write(&snap).unwrap();
            let mut wal = Vec::new();
            for op in &ops {
                append_record(&mut wal, op.encode().as_bytes());
            }
            d.wal_append(&wal).unwrap();
            d.sync().unwrap();
        });
        let mut d = DurableCatalog::new(disk);
        let (catalog, report) = d.recover().unwrap();
        assert_eq!(digest(&catalog), digest(&full));
        assert_eq!(report.snapshot_records, full.snapshot_ops().len());
        assert_eq!(report.wal_records, ops.len());
    }

    #[test]
    fn faulty_disk_torn_tail_truncates_to_a_prefix() {
        let faults = DiskFaults {
            seed: 11,
            torn_tail: true,
            ..DiskFaults::default()
        };
        let disk = SharedDisk::new(FaultyDisk::new(faults));
        let mut d = DurableCatalog::new(disk)
            .with_snapshot_every(0)
            .with_sync_every(100);
        let ops = sample_ops();
        for op in &ops[..2] {
            d.log(op).unwrap();
        }
        d.flush().unwrap();
        for op in &ops[2..] {
            d.log(op).unwrap();
        }
        d.crash(); // keeps a seeded partial tail past the synced 2
        let (catalog, report) = d.recover().unwrap();
        assert!(report.wal_records >= 2, "synced prefix always survives");
        let k = report.wal_records;
        assert_eq!(digest(&catalog), digest(&replay(&ops[..k])));
    }

    #[test]
    fn faulty_disk_sync_failures_are_retried_transparently() {
        let faults = DiskFaults {
            seed: 7,
            sync_fail_period: 2, // every 2nd fsync fails
            ..DiskFaults::default()
        };
        let mut d =
            DurableCatalog::new(SharedDisk::new(FaultyDisk::new(faults))).with_snapshot_every(0);
        let ops = sample_ops();
        for op in &ops {
            d.log(op).unwrap();
        }
        assert!(d.stats().sync_retries > 0, "period-2 must trip retries");
        d.crash();
        let (catalog, _) = d.recover().unwrap();
        assert_eq!(digest(&catalog), digest(&replay(&ops)));
    }

    #[test]
    fn trust_transitions_survive_crash_and_recovery() {
        use crate::trust::TrustLevel;

        // The laundering bug this op exists to close: without journaled
        // trust transitions, recovery replays the hijacker's `reg` with
        // a clean slate and the quarantine evaporates.
        let mut d = DurableCatalog::new(SharedDisk::new(MemDisk::new()));
        d.log(&reg("hijack-7", &["Oregon/Portland", "Recreation"]))
            .unwrap();
        let CatalogOp::Trust(mut rec) = sample_ops().pop().unwrap() else {
            panic!("sample_ops must end with a trust op");
        };
        rec.clears = 0; // two unpaid strikes: squarely quarantined
        d.log(&CatalogOp::Trust(rec)).unwrap();
        d.crash();
        let (catalog, _) = d.recover().unwrap();
        let hijack = ServerId::new("hijack-7");
        assert_eq!(catalog.trust().level_of(&hijack), TrustLevel::Quarantined);
        assert_eq!(catalog.trust().record(&hijack).unwrap().strikes, 2);
        // Crash again straight off the compacted snapshot: still there.
        d.crash();
        let (again, _) = d.recover().unwrap();
        assert_eq!(again.trust().level_of(&hijack), TrustLevel::Quarantined);
        assert_eq!(digest(&catalog), digest(&again));
    }

    #[test]
    fn null_disk_recovers_nothing() {
        let mut d = DurableCatalog::new(SharedDisk::new(NullDisk));
        for op in &sample_ops() {
            d.log(op).unwrap();
        }
        d.crash();
        let (catalog, report) = d.recover().unwrap();
        assert!(catalog.entries().is_empty());
        assert_eq!(report, RecoveryReport::default());
    }

    #[test]
    fn recovery_physically_discards_the_damaged_tail() {
        let disk = SharedDisk::new(MemDisk::new());
        let mut d = DurableCatalog::new(disk.clone()).with_snapshot_every(0);
        for op in &sample_ops() {
            d.log(op).unwrap();
        }
        // Corrupt the last record in place, synced and all.
        disk.with(|dk| {
            let n = dk.wal_read().unwrap().len();
            let mut img = dk.wal_read().unwrap();
            img[n - 1] ^= 0x01;
            dk.wal_truncate().unwrap();
            dk.wal_append(&img).unwrap();
            dk.sync().unwrap();
        });
        let (first, report) = d.recover().unwrap();
        assert!(report.truncated_at.is_some());
        assert!(report.dropped_bytes > 0);
        // Second recovery sees a clean compacted image: same catalog,
        // no damage left to report.
        let (second, report2) = d.recover().unwrap();
        assert_eq!(digest(&first), digest(&second));
        assert_eq!(report2.truncated_at, None);
        assert_eq!(report2.dropped_bytes, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_op() -> impl Strategy<Value = CatalogOp> {
            (0usize..sample_ops().len()).prop_map(|i| sample_ops()[i].clone())
        }

        proptest! {
            /// Prefix consistency: damage the WAL image at ANY byte
            /// (flip or truncate) — recovery yields exactly the replay
            /// of some prefix of the logged ops.
            #[test]
            fn recovery_from_arbitrary_damage_is_a_prefix(
                ops in proptest::collection::vec(arb_op(), 1..20),
                at in 0usize..4096,
                flip in 0u8..2,
            ) {
                let mut img = Vec::new();
                for op in &ops {
                    append_record(&mut img, op.encode().as_bytes());
                }
                let at = at % img.len();
                if flip == 1 {
                    img[at] ^= 0x20;
                } else {
                    img.truncate(at);
                }
                let disk = SharedDisk::new(MemDisk::new());
                disk.with(|d| {
                    d.wal_append(&img).unwrap();
                    d.sync().unwrap();
                });
                let mut d = DurableCatalog::new(disk);
                let (catalog, report) = d.recover().unwrap();
                let k = report.wal_records;
                prop_assert!(k <= ops.len());
                prop_assert_eq!(digest(&catalog), digest(&replay(&ops[..k])));
            }

            /// Snapshot + WAL tail replays to the same catalog as the
            /// full log, wherever the compaction point falls.
            #[test]
            fn snapshot_plus_tail_equals_full_replay(
                ops in proptest::collection::vec(arb_op(), 1..20),
                cut in 0usize..20,
            ) {
                let cut = cut % (ops.len() + 1);
                let disk = SharedDisk::new(MemDisk::new());
                let mut d = DurableCatalog::new(disk).with_snapshot_every(0);
                let mut shadow = Catalog::new();
                for (i, op) in ops.iter().enumerate() {
                    if i == cut {
                        d.compact(&shadow).unwrap();
                    }
                    op.apply(&mut shadow);
                    d.log(op).unwrap();
                }
                d.crash();
                let (catalog, _) = d.recover().unwrap();
                prop_assert_eq!(digest(&catalog), digest(&replay(&ops)));
            }

            /// FaultyDisk torn-tail crashes never lose synced records,
            /// and always recover a prefix.
            #[test]
            fn torn_crash_recovers_synced_prefix(
                ops in proptest::collection::vec(arb_op(), 2..20),
                synced in 0usize..20,
                seed in 0u64..1000,
            ) {
                let synced = synced % ops.len();
                let faults = DiskFaults { seed, torn_tail: true, ..DiskFaults::default() };
                let disk = SharedDisk::new(FaultyDisk::new(faults));
                let mut d = DurableCatalog::new(disk)
                    .with_snapshot_every(0)
                    .with_sync_every(ops.len() + 1);
                for op in &ops[..synced] {
                    d.log(op).unwrap();
                }
                d.flush().unwrap();
                for op in &ops[synced..] {
                    d.log(op).unwrap();
                }
                d.crash();
                let (catalog, report) = d.recover().unwrap();
                let k = report.wal_records;
                prop_assert!(k >= synced, "synced records must survive");
                prop_assert!(k <= ops.len());
                prop_assert_eq!(digest(&catalog), digest(&replay(&ops[..k])));
            }
        }
    }
}
