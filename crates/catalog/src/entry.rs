//! Catalog entries: who serves what, at which level.

use std::fmt;

use mqp_namespace::InterestArea;
use mqp_xml::Name;

/// Identifies a peer. In the simulator this is a logical name
/// (`"peer-17"`); the wire form of a server address is the URL
/// `mqp://<id>/` so plan leaves can reference peers uniformly.
///
/// Backed by an interned [`Name`]: a 100k-peer world mentions every
/// seller id in its own catalog, its city's index server, the global
/// directory, and each travelling plan's provenance — one shared
/// allocation instead of a `String` per mention, and `clone` is a
/// reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(Name);

impl ServerId {
    /// Creates a server id.
    pub fn new(s: impl AsRef<str>) -> Self {
        ServerId(Name::new(s.as_ref()))
    }

    /// The id as a string.
    pub fn as_str(&self) -> &str {
        self.0.as_str()
    }

    /// URL form used in plan `url` leaves, e.g. `mqp://peer-17/`.
    pub fn to_url(&self) -> String {
        format!("mqp://{}/", self.0)
    }

    /// Parses the URL form back to a server id.
    pub fn from_url(url: &str) -> Option<ServerId> {
        let rest = url.strip_prefix("mqp://")?;
        let id = rest.strip_suffix('/').unwrap_or(rest);
        if id.is_empty() {
            None
        } else {
            Some(ServerId(Name::new(id)))
        }
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0.as_str())
    }
}

impl From<&str> for ServerId {
    fn from(s: &str) -> Self {
        ServerId(Name::new(s))
    }
}

impl From<Name> for ServerId {
    fn from(n: Name) -> Self {
        ServerId(n)
    }
}

/// What kind of holding an entry (or intensional-statement reference)
/// describes — the paper's `base[...]` / `index[...]` levels, with
/// meta-index as the index-of-indexes level (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Actual data collections.
    Base,
    /// Index over base servers (may also carry attribute indexes).
    Index,
    /// Index over servers only (namespace indices, no data attributes).
    MetaIndex,
}

impl Level {
    /// Wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Base => "base",
            Level::Index => "index",
            Level::MetaIndex => "meta",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "base" => Level::Base,
            "index" => Level::Index,
            "meta" | "meta-index" | "metaindex" => Level::MetaIndex,
            _ => return None,
        })
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One catalog entry: a server known to hold data (or indexes) for an
/// interest area. Index-server entries for base data also carry the
/// collection identifier — the paper's
/// `(http://10.3.4.5, /data[id=245])` pairs (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The server.
    pub server: ServerId,
    /// What the entry describes: base data, an index, or a meta-index.
    pub level: Level,
    /// The interest area the server declares for this holding.
    pub area: InterestArea,
    /// XPath collection identifier at the server (base entries only).
    pub collection: Option<String>,
    /// Whether the server claims to be authoritative for this area
    /// (§3.3: "strives to know about all base servers within its area").
    pub authoritative: bool,
}

impl CatalogEntry {
    /// A base-data entry.
    pub fn base(server: impl Into<ServerId>, area: InterestArea) -> Self {
        CatalogEntry {
            server: server.into(),
            level: Level::Base,
            area,
            collection: None,
            authoritative: false,
        }
    }

    /// An index-server entry.
    pub fn index(server: impl Into<ServerId>, area: InterestArea) -> Self {
        CatalogEntry {
            server: server.into(),
            level: Level::Index,
            area,
            collection: None,
            authoritative: false,
        }
    }

    /// A meta-index-server entry.
    pub fn meta_index(server: impl Into<ServerId>, area: InterestArea) -> Self {
        CatalogEntry {
            server: server.into(),
            level: Level::MetaIndex,
            area,
            collection: None,
            authoritative: false,
        }
    }

    /// Sets the collection identifier; returns `self` for chaining.
    pub fn with_collection(mut self, path: impl Into<String>) -> Self {
        self.collection = Some(path.into());
        self
    }

    /// Marks the entry authoritative; returns `self` for chaining.
    pub fn authoritative(mut self) -> Self {
        self.authoritative = true;
        self
    }
}

impl From<String> for ServerId {
    fn from(s: String) -> Self {
        ServerId(Name::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::InterestArea;

    #[test]
    fn server_id_url_roundtrip() {
        let id = ServerId::new("peer-17");
        assert_eq!(id.to_url(), "mqp://peer-17/");
        assert_eq!(ServerId::from_url(&id.to_url()), Some(id.clone()));
        assert_eq!(ServerId::from_url("mqp://x"), Some(ServerId::new("x")));
        assert_eq!(ServerId::from_url("http://x/"), None);
        assert_eq!(ServerId::from_url("mqp:///"), None);
    }

    #[test]
    fn level_names_roundtrip() {
        for l in [Level::Base, Level::Index, Level::MetaIndex] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("super"), None);
    }

    #[test]
    fn entry_builders() {
        let area = InterestArea::parse(&[&["USA/OR", "*"]]);
        let e = CatalogEntry::index("idx-1", area.clone()).authoritative();
        assert_eq!(e.level, Level::Index);
        assert!(e.authoritative);
        let b = CatalogEntry::base("seller", area).with_collection("/data[@id='245']");
        assert_eq!(b.collection.as_deref(), Some("/data[@id='245']"));
    }
}
