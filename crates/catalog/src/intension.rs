//! Intensional statements (paper §4.1): coordination formulas that let
//! catalogs reason about replication, index coverage, redundancy, and
//! currency.
//!
//! Text syntax (used in tests, examples, and peer registration
//! messages) mirrors the paper, with `U` for set union and `{m}` for
//! the delay factor in minutes:
//!
//! ```text
//! base[Portland, *]@R = base[Portland, *]@S
//! base[Portland, *]@R >= base[Portland, *]@S{30}
//! index[Oregon, Golf Clubs]@R = base[Oregon, Golf Clubs]@S U
//!                               base[Oregon, Golf Clubs]@T
//! ```

use std::fmt;
use std::str::FromStr;

use mqp_namespace::{Cell, InterestArea};

use crate::entry::{Level, ServerId};

/// One side's holding reference: `level[cell]@server{delay}`.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldingRef {
    /// Holding level (`base`, `index`, `meta`).
    pub level: Level,
    /// The referenced area (a single cell in the paper's statements,
    /// but any area is accepted).
    pub area: InterestArea,
    /// Whose holding.
    pub server: ServerId,
    /// Replication delay bound in minutes (§4.3); 0 = current.
    pub delay: u32,
}

impl HoldingRef {
    /// Builds a reference from a cell given as path strings.
    pub fn new(level: Level, cell: &[&str], server: impl Into<ServerId>) -> Self {
        HoldingRef {
            level,
            area: InterestArea::of(Cell::parse(cell.iter().copied())),
            server: server.into(),
            delay: 0,
        }
    }

    /// Sets the delay factor; returns `self` for chaining.
    pub fn with_delay(mut self, minutes: u32) -> Self {
        self.delay = minutes;
        self
    }
}

impl fmt::Display for HoldingRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.level)?;
        // Areas display as "[cell] + [cell]"; statement refs are almost
        // always single-cell, printed exactly like the paper.
        write!(f, "{}", self.area)?;
        write!(f, "@{}", self.server)?;
        if self.delay > 0 {
            write!(f, "{{{}}}", self.delay)?;
        }
        Ok(())
    }
}

/// Relationship asserted by a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// Exact replication: lhs holds exactly the union of the rhs.
    Equal,
    /// Containment: lhs holds everything the rhs does, possibly more
    /// (paper `³` / `≥`).
    Superset,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rel::Equal => "=",
            Rel::Superset => ">=",
        })
    }
}

/// An intensional statement: `lhs (=|>=) rhs1 U rhs2 U …`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensionalStatement {
    /// Left-hand holding.
    pub lhs: HoldingRef,
    /// Asserted relation.
    pub rel: Rel,
    /// Right-hand union of holdings.
    pub rhs: Vec<HoldingRef>,
}

impl IntensionalStatement {
    /// Builds a statement.
    pub fn new(lhs: HoldingRef, rel: Rel, rhs: impl IntoIterator<Item = HoldingRef>) -> Self {
        IntensionalStatement {
            lhs,
            rel,
            rhs: rhs.into_iter().collect(),
        }
    }

    /// The staleness bound (minutes) a consumer inherits by reading the
    /// lhs *instead of* the rhs: the lhs's own delay plus the largest
    /// rhs delay (data flowed rhs → lhs).
    pub fn lhs_staleness(&self) -> u32 {
        self.lhs.delay + self.rhs.iter().map(|r| r.delay).max().unwrap_or(0)
    }

    /// True when reading `lhs` restricted to `query` is guaranteed to
    /// return everything the rhs servers hold for `query`: the statement
    /// is *usable* for that query area iff the lhs area covers it.
    ///
    /// (With `Rel::Equal` the lhs holds exactly the rhs union; with
    /// `Rel::Superset` at least it. Either way, nothing within
    /// `lhs.area` that the rhs servers hold is missing from lhs.)
    pub fn lhs_answers(&self, query: &InterestArea) -> bool {
        self.lhs.area.covers(query)
    }

    /// The rhs servers whose holdings (restricted to `query`) the lhs
    /// subsumes — all of them when the statement applies, restricted to
    /// those whose area overlaps the query.
    pub fn subsumed_servers(&self, query: &InterestArea) -> Vec<&ServerId> {
        if !self.lhs_answers(query) {
            return Vec::new();
        }
        self.rhs
            .iter()
            .filter(|r| r.area.overlaps(query))
            .map(|r| &r.server)
            .collect()
    }

    /// Parses the text syntax. See the module docs for the grammar.
    pub fn parse(input: &str) -> Result<Self, String> {
        let (lhs_src, rest) = split_rel(input)?;
        let (rel, rhs_src) = rest;
        let lhs = parse_ref(lhs_src.trim())?;
        let rhs: Result<Vec<HoldingRef>, String> = split_union(rhs_src)
            .into_iter()
            .map(|r| parse_ref(r.trim()))
            .collect();
        let rhs = rhs?;
        if rhs.is_empty() {
            return Err("statement needs at least one rhs reference".into());
        }
        Ok(IntensionalStatement { lhs, rel, rhs })
    }
}

impl FromStr for IntensionalStatement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IntensionalStatement::parse(s)
    }
}

impl fmt::Display for IntensionalStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.lhs, self.rel)?;
        for (i, r) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, " U ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Splits at the top-level `=` or `>=` (not inside brackets).
fn split_rel(input: &str) -> Result<(&str, (Rel, &str)), String> {
    let bytes = input.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'>' if depth == 0 && bytes.get(i + 1) == Some(&b'=') => {
                return Ok((&input[..i], (Rel::Superset, &input[i + 2..])));
            }
            b'=' if depth == 0 => {
                return Ok((&input[..i], (Rel::Equal, &input[i + 1..])));
            }
            _ => {}
        }
        i += 1;
    }
    Err(format!("no relation (= or >=) in {input:?}"))
}

/// Splits the rhs at top-level `U` (union) tokens.
fn split_union(input: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let bytes = input.as_bytes();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'U' if depth == 0 => {
                // Union token only when standing alone between spaces.
                let before_ws = i == 0 || bytes[i - 1].is_ascii_whitespace();
                let after_ws = i + 1 >= bytes.len() || bytes[i + 1].is_ascii_whitespace();
                if before_ws && after_ws {
                    parts.push(&input[start..i]);
                    start = i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&input[start..]);
    parts
}

/// Parses `level[c1, c2, …]@server{delay}`.
fn parse_ref(src: &str) -> Result<HoldingRef, String> {
    let bracket = src
        .find('[')
        .ok_or_else(|| format!("missing '[' in {src:?}"))?;
    let level =
        Level::parse(src[..bracket].trim()).ok_or_else(|| format!("unknown level in {src:?}"))?;
    let close = src
        .rfind(']')
        .ok_or_else(|| format!("missing ']' in {src:?}"))?;
    if close < bracket {
        return Err(format!("mismatched brackets in {src:?}"));
    }
    let coords_src = &src[bracket + 1..close];
    if coords_src.trim().is_empty() {
        return Err(format!("empty cell in {src:?}"));
    }
    // "Golf Clubs" → "GolfClubs"; '.' is the level separator (URN
    // style), '/' also accepted.
    let coords: Vec<mqp_namespace::CategoryPath> = coords_src
        .split(',')
        .map(|c| c.trim().replace(' ', "").replace('.', "/"))
        .map(|c| c.parse().expect("infallible"))
        .collect();
    let after = &src[close + 1..];
    let at = after
        .find('@')
        .ok_or_else(|| format!("missing '@server' in {src:?}"))?;
    let server_and_delay = after[at + 1..].trim();
    let (server, delay) = match server_and_delay.find('{') {
        Some(b) => {
            let close_b = server_and_delay
                .rfind('}')
                .ok_or_else(|| format!("missing '}}' in {src:?}"))?;
            let delay: u32 = server_and_delay[b + 1..close_b]
                .trim()
                .parse()
                .map_err(|_| format!("bad delay in {src:?}"))?;
            (server_and_delay[..b].trim(), delay)
        }
        None => (server_and_delay, 0),
    };
    if server.is_empty() {
        return Err(format!("empty server in {src:?}"));
    }
    Ok(HoldingRef {
        level,
        area: InterestArea::of(Cell::new(coords)),
        server: ServerId::new(server),
        delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_replication() {
        let s = IntensionalStatement::parse("base[Portland, *]@R = base[Portland, *]@S").unwrap();
        assert_eq!(s.rel, Rel::Equal);
        assert_eq!(s.lhs.level, Level::Base);
        assert_eq!(s.lhs.server, ServerId::new("R"));
        assert_eq!(s.rhs.len(), 1);
        assert_eq!(s.rhs[0].server, ServerId::new("S"));
        // [Portland, *] decodes into a 2-dim cell.
        assert_eq!(s.lhs.area.cells()[0].arity(), 2);
    }

    #[test]
    fn parse_superset_with_delay() {
        // §4.3's example: R replicates S with up to 30 minutes lag.
        let s =
            IntensionalStatement::parse("base[Portland, *]@R >= base[Portland, *]@S{30}").unwrap();
        assert_eq!(s.rel, Rel::Superset);
        assert_eq!(s.rhs[0].delay, 30);
        assert_eq!(s.lhs_staleness(), 30);
    }

    #[test]
    fn parse_index_coverage_union() {
        // §4.1: R's index covers base data at S, T and U.
        let s = IntensionalStatement::parse(
            "index[Oregon, Golf Clubs]@R = base[Oregon, Golf Clubs]@S U \
             base[Oregon, Golf Clubs]@T U base[Oregon, Golf Clubs]@U",
        )
        .unwrap();
        assert_eq!(s.lhs.level, Level::Index);
        assert_eq!(s.rhs.len(), 3);
        let servers: Vec<&str> = s.rhs.iter().map(|r| r.server.as_str()).collect();
        assert_eq!(servers, ["S", "T", "U"]);
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "base[Portland, *]@R = base[Portland, *]@S",
            "base[Portland, *]@R >= base[Portland, *]@S{30}",
            "index[Oregon, GolfClubs]@R = base[Portland, GolfClubs]@S U base[Eugene, GolfClubs]@T",
        ] {
            let s = IntensionalStatement::parse(src).unwrap();
            let shown = s.to_string();
            let back =
                IntensionalStatement::parse(&shown).unwrap_or_else(|e| panic!("{shown}: {e}"));
            assert_eq!(back, s, "{src} -> {shown}");
        }
    }

    #[test]
    fn lhs_answers_requires_cover() {
        let s = IntensionalStatement::parse(
            "base[USA.OR, SportingGoods]@R = base[USA.OR.Portland, SportingGoods.GolfClubs]@S",
        )
        .unwrap();
        let q_covered = InterestArea::parse(&[&["USA/OR/Portland", "SportingGoods/GolfClubs"]]);
        let q_wider = InterestArea::parse(&[&["USA", "SportingGoods"]]);
        assert!(s.lhs_answers(&q_covered));
        assert!(!s.lhs_answers(&q_wider));
        assert_eq!(s.subsumed_servers(&q_covered).len(), 1);
        assert!(s.subsumed_servers(&q_wider).is_empty());
    }

    #[test]
    fn subsumed_servers_filters_by_overlap() {
        // Paper §4.1: R's Oregon sporting goods = Portland + Eugene golf
        // clubs at S. A Portland query only subsumes the Portland ref.
        // Written with full paths: the paper's "[Portland, Golf Clubs]"
        // shorthand means USA/OR/Portland × SportingGoods/GolfClubs.
        let s = IntensionalStatement::parse(
            "base[Oregon, SportingGoods]@R = \
             base[Oregon.Portland, SportingGoods.GolfClubs]@S U \
             base[Oregon.Eugene, SportingGoods.GolfClubs]@S2",
        )
        .unwrap();
        let q = InterestArea::parse(&[&["Oregon/Portland", "SportingGoods/GolfClubs"]]);
        let subsumed = s.subsumed_servers(&q);
        assert_eq!(subsumed, vec![&ServerId::new("S")]);
    }

    #[test]
    fn spaces_in_categories_collapse() {
        let s =
            IntensionalStatement::parse("index[Oregon, Golf Clubs]@R = base[Oregon, Golf Clubs]@S")
                .unwrap();
        let cell = &s.lhs.area.cells()[0];
        assert_eq!(cell.coords()[1].to_string(), "GolfClubs");
    }

    #[test]
    fn bad_statements_rejected() {
        for bad in [
            "",
            "base[Portland]@R",                 // no relation
            "base[Portland]@R = ",              // empty rhs
            "base Portland @R = base[X]@S",     // missing brackets
            "base[Portland]@R = basement[X]@S", // unknown level
            "base[Portland]@ = base[X]@S",      // empty server
            "base[Portland]@R{x} = base[X]@S",  // bad delay
        ] {
            assert!(IntensionalStatement::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn delay_zero_not_displayed() {
        let r = HoldingRef::new(Level::Base, &["Portland", "*"], "R");
        assert!(!r.to_string().contains('{'));
        let r30 = r.with_delay(30);
        assert!(r30.to_string().ends_with("{30}"));
    }
}
