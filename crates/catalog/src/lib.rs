//! # mqp-catalog — distributed catalogs over multi-hierarchic namespaces
//! (paper §3–§4)
//!
//! Each peer keeps a local catalog: which servers it knows, what interest
//! areas they serve, at which level (base / index / meta-index), plus
//! named-URN mappings and *intensional statements* about replication and
//! index coverage. The catalog answers three questions during mutant
//! query processing:
//!
//! 1. **Resolution** (§3.4): which known servers hold data for this
//!    interest area? → [`Catalog::base_entries_overlapping`].
//! 2. **Routing** (§3.4): if I can't resolve it, who should see the plan
//!    next? → [`Catalog::route_for`].
//! 3. **Binding with alternatives** (§4.2): what `Or` alternatives do
//!    the intensional statements license, and how stale may each be?
//!    → [`Catalog::bind_area`].
//!
//! Peer roles (§3.2) are represented by [`Level`] plus the
//! `authoritative` flag on entries (§3.3); category servers are a peer
//! behaviour built on [`mqp_namespace::Hierarchy`] and live in
//! `mqp-peer`.

//!
//! The catalog is also the only peer state worth persisting:
//! [`durable`] journals every mutation to a checksummed write-ahead log
//! with compacted snapshots, and recovers a prefix-consistent catalog
//! after a crash (DESIGN.md §12).

pub mod binding;
pub mod durable;
pub mod entry;
pub mod intension;
pub mod store;
pub mod trust;

pub use binding::{BindChoice, Binding, BindingAlternative, Preference};
pub use durable::{
    CatalogOp, Disk, DiskError, DurableCatalog, DurableStats, FaultyDisk, MemDisk, NullDisk,
    RecoveryReport, SharedDisk,
};
pub use entry::{CatalogEntry, Level, ServerId};
pub use intension::{HoldingRef, IntensionalStatement, Rel};
pub use store::Catalog;
pub use trust::{classify, ConflictClass, Observation, TrustBook, TrustLevel, TrustRecord};
