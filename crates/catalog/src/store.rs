//! The per-peer catalog store: entries, named-URN mappings, intensional
//! statements, the binding algorithm, routing, and the route cache.

use std::collections::BTreeMap;
use std::sync::Arc;

use mqp_namespace::{InterestArea, Urn};

use crate::binding::{Binding, BindingAlternative};
use crate::entry::{CatalogEntry, Level, ServerId};
use crate::intension::IntensionalStatement;
use crate::trust::TrustBook;

/// A peer's local catalog (paper §2: "we resolve URNs by consulting a
/// catalog, which we maintain locally at each peer. A catalog contains
/// mappings from URNs to (sets of) URLs, or from URNs to servers that
/// know how to resolve them.").
///
/// Entries are `Arc`-shared: in a large federation the same index- and
/// meta-index entries are replicated into thousands of peer catalogs,
/// so registration can hand the same allocation to every subscriber.
/// Merging a re-registration copies-on-write ([`Arc::make_mut`]) only
/// when the merge actually changes the entry.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: Vec<Arc<CatalogEntry>>,
    statements: Vec<IntensionalStatement>,
    /// Named-URN mappings: `urn:ForSale:Portland-CDs` → servers (+
    /// collection ids).
    urn_map: BTreeMap<String, Vec<(ServerId, Option<String>)>>,
    /// Route cache (§3.4: "peers maintain caches of index and meta-index
    /// servers for interest areas, so that they can route plans more
    /// efficiently in the future").
    route_cache: BTreeMap<String, ServerId>,
    route_cache_cap: usize,
    cache_hits: u64,
    cache_misses: u64,
    /// Binding provenance + quarantine state (DESIGN.md §14). Empty
    /// and disarmed unless a peer enables the multi-origin defense.
    trust: TrustBook,
}

impl Catalog {
    /// An empty catalog with the default route-cache capacity (256).
    pub fn new() -> Self {
        Catalog {
            route_cache_cap: 256,
            ..Default::default()
        }
    }

    /// Sets the route-cache capacity (0 disables caching).
    pub fn with_cache_cap(mut self, cap: usize) -> Self {
        self.route_cache_cap = cap;
        self
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers (or refreshes) an entry. Entries are keyed by
    /// `(server, level)`: a re-registration replaces the server's area
    /// at that level (areas are unioned — a server's declared interest
    /// can grow).
    ///
    /// Accepts an `Arc` so a world builder can share one allocation
    /// across every catalog that learns the entry; a plain
    /// [`CatalogEntry`] converts implicitly.
    pub fn register(&mut self, entry: impl Into<Arc<CatalogEntry>>) {
        let entry = entry.into();
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.server == entry.server && e.level == entry.level)
        {
            let area = existing.area.union(&entry.area);
            let authoritative = existing.authoritative || entry.authoritative;
            let collection = entry
                .collection
                .clone()
                .or_else(|| existing.collection.clone());
            if area == existing.area
                && authoritative == existing.authoritative
                && collection == existing.collection
            {
                // Refresh with nothing new: keep sharing the allocation.
                return;
            }
            let e = Arc::make_mut(existing);
            e.area = area;
            e.authoritative = authoritative;
            e.collection = collection;
        } else {
            self.entries.push(entry);
        }
    }

    /// Removes all entries for a server (e.g. when it leaves).
    pub fn unregister(&mut self, server: &ServerId) {
        self.entries.retain(|e| &e.server != server);
        self.route_cache.retain(|_, s| s != server);
    }

    /// Records an intensional statement (§4.2: "whenever a server
    /// registers an interest area with a meta-index server, it can also
    /// provide intensional statements that the meta-index server can
    /// retain").
    pub fn add_statement(&mut self, stmt: IntensionalStatement) {
        if !self.statements.contains(&stmt) {
            self.statements.push(stmt);
        }
    }

    /// Maps a named URN to a server (+ optional collection id).
    pub fn map_urn(&mut self, urn: &str, server: impl Into<ServerId>, collection: Option<String>) {
        let list = self.urn_map.entry(urn.to_owned()).or_default();
        let pair = (server.into(), collection);
        if !list.contains(&pair) {
            list.push(pair);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// All entries.
    pub fn entries(&self) -> &[Arc<CatalogEntry>] {
        &self.entries
    }

    /// All statements.
    pub fn statements(&self) -> &[IntensionalStatement] {
        &self.statements
    }

    /// (cache hits, cache misses) since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The trust book (read side): levels, records, claimants.
    pub fn trust(&self) -> &TrustBook {
        &self.trust
    }

    /// The trust book (write side): observe registrations, apply
    /// verdict rounds, arm the defense.
    pub fn trust_mut(&mut self) -> &mut TrustBook {
        &mut self.trust
    }

    /// Approximate in-memory footprint: number of entries + statements +
    /// URN mappings. Used by the index-detail experiments (E10).
    pub fn size(&self) -> usize {
        self.entries.len()
            + self.statements.len()
            + self.urn_map.values().map(Vec::len).sum::<usize>()
    }

    /// The catalog's durable content as a replayable op sequence —
    /// exactly what a `durable` snapshot writes. Entries in insertion
    /// order, then statements, then URN mappings in map order:
    /// deterministic, and replaying into an empty catalog reproduces
    /// the durable state. The route cache and its hit/miss counters are
    /// deliberately volatile — routes are re-learned, not recovered.
    pub fn snapshot_ops(&self) -> Vec<crate::durable::CatalogOp> {
        use crate::durable::CatalogOp;
        let mut ops = Vec::with_capacity(self.size());
        for e in &self.entries {
            ops.push(CatalogOp::Register((**e).clone()));
        }
        for s in &self.statements {
            ops.push(CatalogOp::Statement(s.clone()));
        }
        for (urn, list) in &self.urn_map {
            for (server, collection) in list {
                ops.push(CatalogOp::MapUrn {
                    urn: urn.clone(),
                    server: server.clone(),
                    collection: collection.clone(),
                });
            }
        }
        for rec in self.trust.records() {
            ops.push(CatalogOp::Trust(rec.clone()));
        }
        ops
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolves a named URN to its mapped servers.
    pub fn resolve_named(&self, urn: &Urn) -> Vec<(ServerId, Option<String>)> {
        match urn {
            Urn::Named { .. } => self
                .urn_map
                .get(&urn.to_string())
                .cloned()
                .unwrap_or_default(),
            Urn::InterestArea(_) => Vec::new(),
        }
    }

    /// Base entries whose area overlaps the query area — the servers
    /// that *might* hold pertinent items (§3.1).
    pub fn base_entries_overlapping(&self, area: &InterestArea) -> Vec<&CatalogEntry> {
        let mut v: Vec<&CatalogEntry> = self
            .entries
            .iter()
            .filter(|e| e.level == Level::Base && e.area.overlaps(area))
            .map(|e| &**e)
            .collect();
        // Deterministic order: most specific first, then by id.
        v.sort_by(|a, b| {
            b.area
                .specificity()
                .cmp(&a.area.specificity())
                .then_with(|| a.server.cmp(&b.server))
        });
        v
    }

    /// The binding algorithm of §4.2: the default union of overlapping
    /// base servers, plus every alternative the intensional statements
    /// license. Alternative 0 is always the default (staleness 0).
    pub fn bind_area(&self, area: &InterestArea) -> Binding {
        let mut default_servers: Vec<ServerId> = self
            .base_entries_overlapping(area)
            .iter()
            .map(|e| e.server.clone())
            .collect();
        // Quarantined servers are shunned exactly like dead hops: only
        // when a non-quarantined survivor remains (a poisoned answer
        // beats no answer).
        if !self.trust.is_empty() {
            let kept: Vec<ServerId> = default_servers
                .iter()
                .filter(|s| !self.trust.excluded(s))
                .cloned()
                .collect();
            if !kept.is_empty() {
                default_servers = kept;
            }
        }
        let mut alternatives = Vec::new();
        if !default_servers.is_empty() {
            alternatives.push(BindingAlternative {
                servers: default_servers
                    .iter()
                    .map(|s| (s.clone(), Level::Base))
                    .collect(),
                staleness: 0,
                note: "default: union of overlapping base servers".to_owned(),
            });
        }

        for stmt in &self.statements {
            if !stmt.lhs_answers(area) {
                continue;
            }
            let subsumed = stmt.subsumed_servers(area);
            if subsumed.is_empty() {
                continue;
            }
            // Replace the subsumed servers with the lhs holder. Whatever
            // of the default the statement does not speak about stays.
            let mut servers: Vec<(ServerId, Level)> = default_servers
                .iter()
                .filter(|s| !subsumed.contains(s))
                .map(|s| (s.clone(), Level::Base))
                .collect();
            let lhs_pair = (stmt.lhs.server.clone(), stmt.lhs.level);
            if !servers.contains(&lhs_pair) {
                servers.push(lhs_pair);
            }
            let alt = BindingAlternative {
                servers,
                staleness: stmt.lhs_staleness(),
                note: format!("via statement: {stmt}"),
            };
            if !alternatives
                .iter()
                .any(|a: &BindingAlternative| a.servers == alt.servers)
            {
                alternatives.push(alt);
            }
        }

        // Statement-licensed alternatives touching a quarantined
        // server are dropped while any clean alternative survives.
        if !self.trust.is_empty()
            && alternatives.iter().any(|a: &BindingAlternative| {
                a.servers.iter().all(|(s, _)| !self.trust.excluded(s))
            })
        {
            alternatives.retain(|a| a.servers.iter().all(|(s, _)| !self.trust.excluded(s)));
        }

        Binding {
            area: area.clone(),
            alternatives,
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Where to forward a plan whose area this catalog cannot fully
    /// bind (§3.4). Consults the route cache, then picks the best
    /// index/meta-index entry overlapping the area:
    ///
    /// 1. entries covering the whole area beat partial overlaps;
    /// 2. more specific areas beat broader ones (avoids flooding
    ///    high-level servers, §3.4);
    /// 3. authoritative beats non-authoritative (§3.3);
    /// 4. `Index` beats `MetaIndex` (richer indices route better);
    /// 5. server id breaks ties (determinism).
    ///
    /// `exclude` lists servers the plan already visited (loop
    /// avoidance).
    pub fn route_for(&self, area: &InterestArea, exclude: &[ServerId]) -> Option<ServerId> {
        let key = cache_key(area);
        if let Some(s) = self.route_cache.get(&key) {
            if !exclude.contains(s) && !self.trust.excluded(s) {
                return Some(s.clone());
            }
        }
        self.pick_route(area, exclude, true)
            .or_else(|| self.pick_route(area, exclude, false))
    }

    /// The catalog-entry scan behind [`Catalog::route_for`]. With
    /// `shun` set, quarantined servers are skipped — the caller falls
    /// back to a second pass without it, so quarantine (like the
    /// visited-set) never strands a plan with zero next hops.
    fn pick_route(
        &self,
        area: &InterestArea,
        exclude: &[ServerId],
        shun: bool,
    ) -> Option<ServerId> {
        self.entries
            .iter()
            .filter(|e| {
                matches!(e.level, Level::Index | Level::MetaIndex)
                    && e.area.overlaps(area)
                    && !exclude.contains(&e.server)
                    && !(shun && self.trust.excluded(&e.server))
            })
            .max_by(|a, b| {
                let cover = |e: &&Arc<CatalogEntry>| e.area.covers(area);
                cover(a)
                    .cmp(&cover(b))
                    .then(a.area.specificity().cmp(&b.area.specificity()))
                    .then(a.authoritative.cmp(&b.authoritative))
                    .then((a.level == Level::Index).cmp(&(b.level == Level::Index)))
                    .then(b.server.cmp(&a.server)) // reversed: smaller id wins
            })
            .map(|e| e.server.clone())
    }

    /// Looks up the route cache (counts hit/miss).
    pub fn cached_route(&mut self, area: &InterestArea) -> Option<ServerId> {
        match self.route_cache.get(&cache_key(area)) {
            Some(s) => {
                self.cache_hits += 1;
                Some(s.clone())
            }
            None => {
                self.cache_misses += 1;
                None
            }
        }
    }

    /// Records that `server` successfully handled `area` (populates the
    /// cache used by [`Catalog::route_for`]).
    pub fn record_route(&mut self, area: &InterestArea, server: ServerId) {
        if self.route_cache_cap == 0 {
            return;
        }
        if self.route_cache.len() >= self.route_cache_cap
            && !self.route_cache.contains_key(&cache_key(area))
        {
            // Evict the lexicographically first entry: cheap, deterministic.
            if let Some(k) = self.route_cache.keys().next().cloned() {
                self.route_cache.remove(&k);
            }
        }
        self.route_cache.insert(cache_key(area), server);
    }
}

fn cache_key(area: &InterestArea) -> String {
    mqp_namespace::urn::encode_area(area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::InterestArea;

    fn area(cells: &[&[&str]]) -> InterestArea {
        InterestArea::parse(cells)
    }

    /// The catalog of §4.2 Example 1: meta-index server M knows R
    /// ([Portland, Recreation]) and S ([Oregon, Sporting Goods]).
    fn example1_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(CatalogEntry::base(
            "R",
            area(&[&["Oregon/Portland", "Recreation"]]),
        ));
        c.register(CatalogEntry::base(
            "S",
            area(&[&["Oregon", "Recreation/SportingGoods"]]),
        ));
        c
    }

    #[test]
    fn default_binding_unions_overlapping_bases() {
        let c = example1_catalog();
        let q = area(&[&["Oregon/Portland", "Recreation/SportingGoods/GolfClubs"]]);
        let b = c.bind_area(&q);
        assert_eq!(b.alternatives.len(), 1);
        let servers: Vec<&str> = b.alternatives[0]
            .servers
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        assert_eq!(servers, ["R", "S"]);
    }

    #[test]
    fn example1_statement_licenses_single_server() {
        let mut c = example1_catalog();
        c.add_statement(
            "base[Oregon.Portland, Recreation.SportingGoods]@R = \
             base[Oregon.Portland, Recreation.SportingGoods]@S"
                .parse()
                .unwrap(),
        );
        let q = area(&[&["Oregon/Portland", "Recreation/SportingGoods/GolfClubs"]]);
        let b = c.bind_area(&q);
        // Default (R ∪ S) plus the licensed R-only alternative.
        assert_eq!(b.alternatives.len(), 2);
        assert_eq!(b.alternatives[1].servers.len(), 1);
        assert_eq!(b.alternatives[1].servers[0].0.as_str(), "R");
        assert_eq!(b.alternatives[1].staleness, 0);
    }

    #[test]
    fn example3_containment_with_delay() {
        // base[Portland, *]@R >= base[Portland, *]@S{30}
        let mut c = Catalog::new();
        c.register(CatalogEntry::base("R", area(&[&["Portland", "*"]])));
        c.register(CatalogEntry::base("S", area(&[&["Portland", "*"]])));
        c.add_statement(
            "base[Portland, *]@R >= base[Portland, *]@S{30}"
                .parse()
                .unwrap(),
        );
        let q = area(&[&["Portland", "CDs"]]);
        let b = c.bind_area(&q);
        assert_eq!(b.alternatives.len(), 2);
        // Default: both, current.
        assert_eq!(b.alternatives[0].fanout(), 2);
        assert_eq!(b.alternatives[0].staleness, 0);
        // Alternative: R alone, up to 30 minutes stale.
        assert_eq!(b.alternatives[1].fanout(), 1);
        assert_eq!(b.alternatives[1].staleness, 30);
    }

    #[test]
    fn example2_index_coverage_routes_to_index_server() {
        let mut c = Catalog::new();
        for s in ["S", "T", "U"] {
            c.register(CatalogEntry::base(s, area(&[&["Oregon", "GolfClubs"]])));
        }
        c.add_statement(
            "index[Oregon, GolfClubs]@R = base[Oregon, GolfClubs]@S U \
             base[Oregon, GolfClubs]@T U base[Oregon, GolfClubs]@U"
                .parse()
                .unwrap(),
        );
        let q = area(&[&["Oregon/Portland", "GolfClubs/Putters"]]);
        let b = c.bind_area(&q);
        assert_eq!(b.alternatives.len(), 2);
        let idx_alt = &b.alternatives[1];
        assert_eq!(idx_alt.fanout(), 1);
        assert_eq!(idx_alt.servers[0].0.as_str(), "R");
        assert_eq!(idx_alt.servers[0].1, Level::Index);
    }

    #[test]
    fn statement_not_covering_query_ignored() {
        let mut c = example1_catalog();
        c.add_statement(
            // Statement about Eugene doesn't help a Portland query.
            "base[Oregon.Eugene, Recreation]@R = base[Oregon.Eugene, Recreation]@S"
                .parse()
                .unwrap(),
        );
        let q = area(&[&["Oregon/Portland", "Recreation/SportingGoods"]]);
        assert_eq!(c.bind_area(&q).alternatives.len(), 1);
    }

    #[test]
    fn unknown_area_binds_empty() {
        let c = example1_catalog();
        let q = area(&[&["France", "Cheese"]]);
        assert!(c.bind_area(&q).is_empty());
    }

    #[test]
    fn named_urn_resolution() {
        let mut c = Catalog::new();
        let urn = Urn::named("ForSale", "Portland-CDs");
        c.map_urn(
            "urn:ForSale:Portland-CDs",
            "seller-1",
            Some("/data[@id='245']".to_owned()),
        );
        c.map_urn("urn:ForSale:Portland-CDs", "seller-2", None);
        let hits = c.resolve_named(&urn);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0.as_str(), "seller-1");
        assert_eq!(hits[0].1.as_deref(), Some("/data[@id='245']"));
        assert!(c
            .resolve_named(&Urn::named("ForSale", "Nothing"))
            .is_empty());
    }

    #[test]
    fn register_merges_same_server_level() {
        let mut c = Catalog::new();
        c.register(CatalogEntry::base("R", area(&[&["Portland", "CDs"]])));
        c.register(CatalogEntry::base("R", area(&[&["Portland", "Books"]])));
        assert_eq!(c.entries().len(), 1);
        let q = area(&[&["Portland", "Books"]]);
        assert!(!c.bind_area(&q).is_empty());
    }

    #[test]
    fn unregister_removes_server() {
        let mut c = example1_catalog();
        c.unregister(&ServerId::new("R"));
        let q = area(&[&["Oregon/Portland", "Recreation"]]);
        let b = c.bind_area(&q);
        assert_eq!(b.alternatives.len(), 1);
        assert_eq!(b.alternatives[0].servers[0].0.as_str(), "S");
    }

    #[test]
    fn route_prefers_covering_authoritative_specific() {
        let mut c = Catalog::new();
        c.register(CatalogEntry::meta_index("broad", area(&[&["*", "*"]])));
        c.register(CatalogEntry::meta_index("usa", area(&[&["USA", "*"]])).authoritative());
        c.register(CatalogEntry::index(
            "or-music",
            area(&[&["USA/OR", "Music"]]),
        ));
        let q = area(&[&["USA/OR/Portland", "Music/CDs"]]);
        // or-music covers the query, is most specific, and is an index.
        assert_eq!(c.route_for(&q, &[]).unwrap().as_str(), "or-music");
        // Excluding it falls back to the authoritative USA meta-index.
        assert_eq!(
            c.route_for(&q, &[ServerId::new("or-music")])
                .unwrap()
                .as_str(),
            "usa"
        );
        // Excluding both leaves the broad one.
        assert_eq!(
            c.route_for(&q, &[ServerId::new("or-music"), ServerId::new("usa")])
                .unwrap()
                .as_str(),
            "broad"
        );
    }

    #[test]
    fn route_cache_hit_and_eviction() {
        let mut c = Catalog::new().with_cache_cap(2);
        let a1 = area(&[&["USA/OR", "Music"]]);
        let a2 = area(&[&["USA/WA", "Music"]]);
        let a3 = area(&[&["France", "Music"]]);
        assert!(c.cached_route(&a1).is_none());
        c.record_route(&a1, ServerId::new("x"));
        c.record_route(&a2, ServerId::new("y"));
        assert_eq!(c.cached_route(&a1).unwrap().as_str(), "x");
        c.record_route(&a3, ServerId::new("z")); // evicts one
        let present = [&a1, &a2, &a3]
            .iter()
            .filter(|a| c.cached_route(a).is_some())
            .count();
        assert_eq!(present, 2);
        let (hits, misses) = c.cache_stats();
        assert!(hits >= 1 && misses >= 1);
    }

    #[test]
    fn cached_route_respected_by_route_for() {
        let mut c = Catalog::new();
        c.register(CatalogEntry::index("idx", area(&[&["USA", "*"]])));
        let q = area(&[&["USA/OR", "Music"]]);
        c.record_route(&q, ServerId::new("fastpath"));
        assert_eq!(c.route_for(&q, &[]).unwrap().as_str(), "fastpath");
        // Excluded cache entry falls through to catalog entries.
        assert_eq!(
            c.route_for(&q, &[ServerId::new("fastpath")])
                .unwrap()
                .as_str(),
            "idx"
        );
    }

    #[test]
    fn catalog_size_counts_components() {
        let mut c = example1_catalog();
        c.map_urn("urn:X:y", "s", None);
        c.add_statement("base[A]@R = base[A]@S".parse().unwrap());
        assert_eq!(c.size(), 2 + 1 + 1);
    }
}
