//! Trust scoring and quarantine for multi-origin bindings (DESIGN.md
//! §14, ROADMAP item 2).
//!
//! A catalog at scale sees many servers claim the same interest area —
//! some legitimately (mirrors, §4.2 intensional equivalences), some
//! maliciously (a spoofed `reg` frame diverting answers). This module
//! is the defense layer: every binding gains provenance aggregates
//! ([`TrustRecord`]), a conflict [`classify`]-er sorts same-area
//! multi-origin sets into [`ConflictClass`]es from `count(σ(B))`-style
//! cross-check observations, and a quarantine state machine
//! ([`TrustLevel`]: `Trusted → Probation → Quarantined`, with decay
//! back on sustained consistency) tells binding and routing which
//! servers to shun.
//!
//! **Order independence is the design invariant.** Every field of a
//! [`TrustRecord`] is a commutative aggregate (min, max, count, set
//! union) over the event multiset, and [`classify`] is a pure function
//! of one verification round's observations — so any permutation of
//! the same events yields the same final trust states (property-tested
//! below). That is what makes the defense driver-agnostic: sim,
//! threaded and tcp deliver the same frames in different orders, and
//! must still quarantine the same servers.
//!
//! The book is **disabled by default**: legacy worlds pay nothing and
//! every pre-existing golden trace stays byte-identical. Enabling it
//! only arms bookkeeping — strikes still require a verification round
//! (or an administrative `quarantine` policy action) to accrue.

use std::collections::BTreeMap;

use crate::entry::ServerId;

// ----------------------------------------------------------------------
// Levels and conflict classes
// ----------------------------------------------------------------------

/// The quarantine state machine. Ordered so that `a < b` means "less
/// trusted than": `Quarantined < Probation < Trusted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrustLevel {
    /// Excluded from binding and routing wherever survivors remain.
    Quarantined,
    /// Under observation: still served, but policy may demand
    /// verification before its answers are trusted.
    Probation,
    /// The default: no unresolved inconsistency on record.
    Trusted,
}

impl TrustLevel {
    /// Wire/DSL name (`trusted`, `probation`, `quarantined`).
    pub fn name(self) -> &'static str {
        match self {
            TrustLevel::Quarantined => "quarantined",
            TrustLevel::Probation => "probation",
            TrustLevel::Trusted => "trusted",
        }
    }

    /// Parses a wire/DSL name.
    pub fn parse(s: &str) -> Option<TrustLevel> {
        match s {
            "quarantined" => Some(TrustLevel::Quarantined),
            "probation" => Some(TrustLevel::Probation),
            "trusted" => Some(TrustLevel::Trusted),
            _ => None,
        }
    }
}

/// What the conflict detector concluded about one claimant in one
/// verification round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictClass {
    /// Agrees with the majority: an honest replica. Clears a strike.
    Mirror,
    /// Disagrees, but has not re-registered recently — likely a
    /// forgotten binding, not an attack. Probation at worst.
    Stale,
    /// Disagrees *and* is actively re-registering: the hijack
    /// signature. Accrues a strike.
    Suspect,
}

impl ConflictClass {
    /// Display name for provenance details and reports.
    pub fn name(self) -> &'static str {
        match self {
            ConflictClass::Mirror => "mirror",
            ConflictClass::Stale => "stale",
            ConflictClass::Suspect => "suspect",
        }
    }
}

// ----------------------------------------------------------------------
// Per-server provenance aggregates
// ----------------------------------------------------------------------

/// Strike weight: one `Suspect` verdict outweighs one `Mirror` clear,
/// so a flapper cannot stay `Trusted` by alternating.
const STRIKE_WEIGHT: u64 = 2;
/// Net penalty at which a server is quarantined.
const QUARANTINE_AT: u64 = 4;

/// Provenance metadata for one server's bindings — every field is a
/// commutative aggregate over the registration/verdict event multiset,
/// so replay order cannot change the final record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustRecord {
    /// The server whose bindings this record scores.
    pub server: ServerId,
    /// Smallest registrar node id ever observed announcing it (min).
    pub registrar: u64,
    /// Earliest registration sim-time (min, µs).
    pub first_seen: u64,
    /// Latest registration sim-time (max, µs).
    pub last_seen: u64,
    /// Total registrations observed (count).
    pub registrations: u64,
    /// `Suspect` verdicts (count).
    pub strikes: u64,
    /// `Mirror` verdicts (count).
    pub clears: u64,
    /// `Stale` verdicts (count).
    pub stale_marks: u64,
    /// Latest sim-time a strike landed (max, µs) — with `first_seen`,
    /// this bounds time-to-quarantine.
    pub last_strike_at: u64,
    /// Area keys (`encode_area`) this server has claimed (set union,
    /// kept sorted).
    pub areas: Vec<String>,
}

impl TrustRecord {
    fn new(server: ServerId) -> Self {
        TrustRecord {
            server,
            registrar: u64::MAX,
            first_seen: u64::MAX,
            last_seen: 0,
            registrations: 0,
            strikes: 0,
            clears: 0,
            stale_marks: 0,
            last_strike_at: 0,
            areas: Vec::new(),
        }
    }

    /// Net penalty: strikes weigh [`STRIKE_WEIGHT`], any staleness on
    /// record weighs one, and every clear repays one.
    fn penalty(&self) -> u64 {
        (self.strikes * STRIKE_WEIGHT + u64::from(self.stale_marks > 0)).saturating_sub(self.clears)
    }

    /// The quarantine state machine, derived (never stored): zero net
    /// penalty is `Trusted`; a strike-driven penalty reaching
    /// [`QUARANTINE_AT`] is `Quarantined`; anything between is
    /// `Probation`. Because clears keep counting, a quarantined server
    /// that returns to sustained consistency decays back through
    /// `Probation` to `Trusted`.
    pub fn level(&self) -> TrustLevel {
        if self.penalty() == 0 {
            TrustLevel::Trusted
        } else if self.strikes * STRIKE_WEIGHT >= self.clears + QUARANTINE_AT {
            TrustLevel::Quarantined
        } else {
            TrustLevel::Probation
        }
    }

    /// How far into "sustained consistency" the server is: clears net
    /// of all penalties (0 while any inconsistency is unpaid).
    pub fn consistency_streak(&self) -> u64 {
        self.clears
            .saturating_sub(self.strikes * STRIKE_WEIGHT + u64::from(self.stale_marks > 0))
    }
}

// ----------------------------------------------------------------------
// The conflict classifier
// ----------------------------------------------------------------------

/// One claimant's answer to the `count(σ(B))` cross-check probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The claimant that answered.
    pub server: ServerId,
    /// Cardinality it reported for the contested area.
    pub count: u64,
    /// Content fingerprint of its answer items.
    pub fingerprint: u64,
    /// Whether the claimant registered recently relative to the
    /// contest (computed by the caller from its book — carried in the
    /// observation so classification stays a pure function).
    pub fresh: bool,
}

/// Classifies one verification round. The majority `(count,
/// fingerprint)` group — ties broken toward more claimants, then
/// smaller count, then smaller fingerprint, so the outcome is a pure
/// function of the observation multiset — is `Mirror`; dissenters are
/// `Suspect` if fresh, `Stale` otherwise.
pub fn classify(obs: &[Observation]) -> Vec<(ServerId, ConflictClass)> {
    if obs.is_empty() {
        return Vec::new();
    }
    let mut groups: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for o in obs {
        *groups.entry((o.count, o.fingerprint)).or_default() += 1;
    }
    let majority = groups
        .iter()
        .max_by(|a, b| {
            a.1.cmp(b.1)
                .then(b.0 .0.cmp(&a.0 .0)) // reversed: smaller count wins ties
                .then(b.0 .1.cmp(&a.0 .1)) // reversed: smaller fingerprint wins
        })
        .map(|(k, _)| *k)
        .expect("non-empty");
    obs.iter()
        .map(|o| {
            let class = if (o.count, o.fingerprint) == majority {
                ConflictClass::Mirror
            } else if o.fresh {
                ConflictClass::Suspect
            } else {
                ConflictClass::Stale
            };
            (o.server.clone(), class)
        })
        .collect()
}

/// FNV-1a content fingerprint — the "σ(B) fingerprint" the probes
/// compare. Stable, dependency-free, and cheap enough to run over
/// every probe answer.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------------------
// The book
// ----------------------------------------------------------------------

/// A server re-registering within this window of the latest claim is
/// "fresh" — its disagreement reads as hijack, not staleness (µs).
pub const FRESH_WINDOW_US: u64 = 60_000_000;

/// The per-catalog trust book: provenance records by server plus the
/// claim index that detects same-area multi-origin sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustBook {
    enabled: bool,
    servers: BTreeMap<ServerId, TrustRecord>,
    /// Area key (`encode_area`) → base-level claimants, kept sorted.
    claims: BTreeMap<String, Vec<ServerId>>,
}

impl TrustBook {
    /// An empty, disabled book.
    pub fn new() -> Self {
        TrustBook::default()
    }

    /// Whether the defense is armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Arms (or disarms) the defense. Disarmed books keep their
    /// records but exclude nothing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when no server has a record — the cheap gate legacy worlds
    /// take on every binding.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Observes one base-level registration: merges the commutative
    /// aggregates and indexes the claim. Returns the full (sorted)
    /// claimant set for the area — length ≥ 2 means a multi-origin
    /// conflict worth verifying.
    pub fn observe(&mut self, server: &ServerId, registrar: u64, area_key: &str, at: u64) -> usize {
        let rec = self
            .servers
            .entry(server.clone())
            .or_insert_with(|| TrustRecord::new(server.clone()));
        rec.registrar = rec.registrar.min(registrar);
        rec.first_seen = rec.first_seen.min(at);
        rec.last_seen = rec.last_seen.max(at);
        rec.registrations += 1;
        if let Err(i) = rec.areas.binary_search_by(|a| a.as_str().cmp(area_key)) {
            rec.areas.insert(i, area_key.to_owned());
        }
        let claimants = self.claims.entry(area_key.to_owned()).or_default();
        if let Err(i) = claimants.binary_search(server) {
            claimants.insert(i, server.clone());
        }
        claimants.len()
    }

    /// The sorted claimant set for an area key.
    pub fn claimants(&self, area_key: &str) -> &[ServerId] {
        self.claims.get(area_key).map_or(&[], Vec::as_slice)
    }

    /// The provenance record for a server, if any event ever touched it.
    pub fn record(&self, server: &ServerId) -> Option<&TrustRecord> {
        self.servers.get(server)
    }

    /// All records, in server order.
    pub fn records(&self) -> impl Iterator<Item = &TrustRecord> {
        self.servers.values()
    }

    /// The server's current level (`Trusted` when unrecorded).
    pub fn level_of(&self, server: &ServerId) -> TrustLevel {
        self.servers
            .get(server)
            .map_or(TrustLevel::Trusted, TrustRecord::level)
    }

    /// Whether binding/routing should shun this server *now*: armed
    /// and quarantined.
    pub fn excluded(&self, server: &ServerId) -> bool {
        self.enabled && self.level_of(server) == TrustLevel::Quarantined
    }

    /// Every currently quarantined server, in id order.
    pub fn quarantined(&self) -> Vec<ServerId> {
        self.servers
            .values()
            .filter(|r| r.level() == TrustLevel::Quarantined)
            .map(|r| r.server.clone())
            .collect()
    }

    /// Whether `server` looks freshly (re-)registered relative to
    /// `now` — the staleness signal [`classify`] consumes.
    pub fn is_fresh(&self, server: &ServerId, now: u64) -> bool {
        self.servers
            .get(server)
            .is_some_and(|r| r.last_seen + FRESH_WINDOW_US >= now)
    }

    /// Applies one round of verdicts. Returns the servers whose level
    /// *changed*, with old and new level — the transitions a durable
    /// peer journals.
    pub fn apply_round(
        &mut self,
        verdicts: &[(ServerId, ConflictClass)],
        at: u64,
    ) -> Vec<(ServerId, TrustLevel, TrustLevel)> {
        let mut transitions = Vec::new();
        for (server, class) in verdicts {
            let rec = self
                .servers
                .entry(server.clone())
                .or_insert_with(|| TrustRecord::new(server.clone()));
            let before = rec.level();
            match class {
                ConflictClass::Mirror => rec.clears += 1,
                ConflictClass::Stale => rec.stale_marks += 1,
                ConflictClass::Suspect => {
                    rec.strikes += 1;
                    rec.last_strike_at = rec.last_strike_at.max(at);
                }
            }
            let after = rec.level();
            if before != after {
                transitions.push((server.clone(), before, after));
            }
        }
        transitions
    }

    /// Administrative quarantine (the `quarantine` policy action):
    /// lands strikes until the level reads `Quarantined`.
    pub fn force_quarantine(&mut self, server: &ServerId, at: u64) -> bool {
        let rec = self
            .servers
            .entry(server.clone())
            .or_insert_with(|| TrustRecord::new(server.clone()));
        let before = rec.level();
        while rec.level() != TrustLevel::Quarantined {
            rec.strikes += 1;
            rec.last_strike_at = rec.last_strike_at.max(at);
        }
        before != TrustLevel::Quarantined
    }

    /// Installs a record verbatim (WAL replay): merges the commutative
    /// aggregates with whatever is already on book and re-indexes the
    /// record's claims, so recovery cannot launder a quarantine away.
    pub fn install(&mut self, record: TrustRecord) {
        for area in &record.areas {
            let claimants = self.claims.entry(area.clone()).or_default();
            if let Err(i) = claimants.binary_search(&record.server) {
                claimants.insert(i, record.server.clone());
            }
        }
        match self.servers.entry(record.server.clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(record);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let rec = o.get_mut();
                rec.registrar = rec.registrar.min(record.registrar);
                rec.first_seen = rec.first_seen.min(record.first_seen);
                rec.last_seen = rec.last_seen.max(record.last_seen);
                rec.registrations = rec.registrations.max(record.registrations);
                rec.strikes = rec.strikes.max(record.strikes);
                rec.clears = rec.clears.max(record.clears);
                rec.stale_marks = rec.stale_marks.max(record.stale_marks);
                rec.last_strike_at = rec.last_strike_at.max(record.last_strike_at);
                for area in record.areas {
                    if let Err(i) = rec.areas.binary_search(&area) {
                        rec.areas.insert(i, area);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(s: &str) -> ServerId {
        ServerId::new(s)
    }

    fn obs(server: &str, count: u64, fp: u64, fresh: bool) -> Observation {
        Observation {
            server: sid(server),
            count,
            fingerprint: fp,
            fresh,
        }
    }

    #[test]
    fn level_names_roundtrip() {
        for l in [
            TrustLevel::Trusted,
            TrustLevel::Probation,
            TrustLevel::Quarantined,
        ] {
            assert_eq!(TrustLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TrustLevel::parse("bogus"), None);
        assert!(TrustLevel::Quarantined < TrustLevel::Probation);
        assert!(TrustLevel::Probation < TrustLevel::Trusted);
    }

    #[test]
    fn classifier_majority_is_mirror_dissent_splits_on_freshness() {
        let verdicts = classify(&[
            obs("origin", 10, 0xAA, true),
            obs("mirror", 10, 0xAA, true),
            obs("hijack", 3, 0xBB, true),
            obs("sleepy", 7, 0xCC, false),
        ]);
        let of = |s: &str| verdicts.iter().find(|(id, _)| id == &sid(s)).unwrap().1;
        assert_eq!(of("origin"), ConflictClass::Mirror);
        assert_eq!(of("mirror"), ConflictClass::Mirror);
        assert_eq!(of("hijack"), ConflictClass::Suspect);
        assert_eq!(of("sleepy"), ConflictClass::Stale);
    }

    #[test]
    fn classifier_tie_breaks_deterministically() {
        // 1-vs-1 disagreement: the smaller (count, fingerprint) group
        // is the designated majority — arbitrary but stable, and the
        // workloads guarantee ≥ 2 honest claimants so real conflicts
        // never ride this edge.
        let a = classify(&[obs("x", 5, 1, true), obs("y", 9, 2, true)]);
        let b = classify(&[obs("y", 9, 2, true), obs("x", 5, 1, true)]);
        let of = |vs: &[(ServerId, ConflictClass)], s: &str| {
            vs.iter().find(|(id, _)| id == &sid(s)).unwrap().1
        };
        assert_eq!(of(&a, "x"), of(&b, "x"));
        assert_eq!(of(&a, "y"), of(&b, "y"));
        assert_eq!(of(&a, "x"), ConflictClass::Mirror);
        assert_eq!(of(&a, "y"), ConflictClass::Suspect);
    }

    #[test]
    fn two_strikes_quarantine_and_clears_decay_back() {
        let mut book = TrustBook::new();
        book.set_enabled(true);
        let h = sid("hijack");
        book.observe(&h, 9, "+a", 1_000);
        assert_eq!(book.level_of(&h), TrustLevel::Trusted);

        let t = book.apply_round(&[(h.clone(), ConflictClass::Suspect)], 2_000);
        assert_eq!(
            t,
            vec![(h.clone(), TrustLevel::Trusted, TrustLevel::Probation)]
        );
        let t = book.apply_round(&[(h.clone(), ConflictClass::Suspect)], 3_000);
        assert_eq!(
            t,
            vec![(h.clone(), TrustLevel::Probation, TrustLevel::Quarantined)]
        );
        assert!(book.excluded(&h));
        assert_eq!(book.quarantined(), vec![h.clone()]);

        // Sustained consistency: clears walk it back down to Trusted.
        book.apply_round(&[(h.clone(), ConflictClass::Mirror)], 4_000);
        assert_eq!(book.level_of(&h), TrustLevel::Probation);
        book.apply_round(&[(h.clone(), ConflictClass::Mirror)], 5_000);
        book.apply_round(&[(h.clone(), ConflictClass::Mirror)], 6_000);
        assert_eq!(book.level_of(&h), TrustLevel::Probation);
        book.apply_round(&[(h.clone(), ConflictClass::Mirror)], 7_000);
        assert_eq!(book.level_of(&h), TrustLevel::Trusted);
        assert!(!book.excluded(&h));
        assert_eq!(book.record(&h).unwrap().consistency_streak(), 0);
        book.apply_round(&[(h.clone(), ConflictClass::Mirror)], 8_000);
        assert_eq!(book.record(&h).unwrap().consistency_streak(), 1);
    }

    #[test]
    fn stale_marks_reach_probation_never_quarantine() {
        let mut book = TrustBook::new();
        book.set_enabled(true);
        let s = sid("sleepy");
        for at in 0..10 {
            book.apply_round(&[(s.clone(), ConflictClass::Stale)], at);
        }
        assert_eq!(book.level_of(&s), TrustLevel::Probation);
        assert!(!book.excluded(&s));
    }

    #[test]
    fn disabled_book_excludes_nothing() {
        let mut book = TrustBook::new();
        let h = sid("hijack");
        book.force_quarantine(&h, 1);
        assert_eq!(book.level_of(&h), TrustLevel::Quarantined);
        assert!(!book.excluded(&h), "disarmed books never exclude");
        book.set_enabled(true);
        assert!(book.excluded(&h));
    }

    #[test]
    fn observe_indexes_claims_and_reports_conflicts() {
        let mut book = TrustBook::new();
        assert_eq!(book.observe(&sid("origin"), 2, "+a", 10), 1);
        assert_eq!(book.observe(&sid("origin"), 2, "+a", 20), 1);
        assert_eq!(book.observe(&sid("mirror"), 3, "+a", 30), 2);
        assert_eq!(book.observe(&sid("hijack"), 9, "+a", 40), 3);
        assert_eq!(book.claimants("+a").len(), 3);
        assert_eq!(book.claimants("+other"), &[] as &[ServerId]);
        let rec = book.record(&sid("origin")).unwrap();
        assert_eq!(rec.registrations, 2);
        assert_eq!(rec.first_seen, 10);
        assert_eq!(rec.last_seen, 20);
        assert_eq!(rec.registrar, 2);
        assert_eq!(rec.areas, vec!["+a".to_owned()]);
    }

    #[test]
    fn freshness_window() {
        let mut book = TrustBook::new();
        let s = sid("s");
        book.observe(&s, 1, "+a", 1_000_000);
        assert!(book.is_fresh(&s, 1_000_000 + FRESH_WINDOW_US));
        assert!(!book.is_fresh(&s, 1_000_001 + FRESH_WINDOW_US));
        assert!(!book.is_fresh(&sid("unknown"), 0));
    }

    #[test]
    fn install_merges_and_survives_enable_cycle() {
        let mut book = TrustBook::new();
        let h = sid("hijack");
        book.observe(&h, 9, "+a", 100);
        book.apply_round(&[(h.clone(), ConflictClass::Suspect)], 200);
        book.apply_round(&[(h.clone(), ConflictClass::Suspect)], 300);
        let rec = book.record(&h).unwrap().clone();

        // Replay into a fresh book (the recover path): same level,
        // claims re-indexed.
        let mut fresh = TrustBook::new();
        fresh.install(rec.clone());
        fresh.set_enabled(true);
        assert_eq!(fresh.level_of(&h), TrustLevel::Quarantined);
        assert_eq!(fresh.claimants("+a"), std::slice::from_ref(&h));

        // Installing the same record again is idempotent.
        fresh.install(rec);
        assert_eq!(fresh.record(&h).unwrap().strikes, 2);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One trust-relevant event: a registration observation or a
        /// full verdict round.
        #[derive(Debug, Clone)]
        enum Ev {
            Obs {
                server: usize,
                registrar: u64,
                area: usize,
                at: u64,
            },
            Round {
                verdicts: Vec<(usize, u8)>,
                at: u64,
            },
        }

        const SERVERS: [&str; 4] = ["origin", "mirror", "hijack", "flapper"];
        const AREAS: [&str; 3] = ["+a", "+b", "+c"];

        fn arb_ev() -> impl Strategy<Value = Ev> {
            prop_oneof![
                (
                    0usize..SERVERS.len(),
                    0u64..16,
                    0usize..AREAS.len(),
                    0u64..1_000_000
                )
                    .prop_map(|(server, registrar, area, at)| Ev::Obs {
                        server,
                        registrar,
                        area,
                        at
                    }),
                (
                    proptest::collection::vec((0usize..SERVERS.len(), 0u8..3), 1..4),
                    0u64..1_000_000
                )
                    .prop_map(|(verdicts, at)| Ev::Round { verdicts, at }),
            ]
        }

        fn apply(events: &[Ev]) -> TrustBook {
            let mut book = TrustBook::new();
            book.set_enabled(true);
            for ev in events {
                match ev {
                    Ev::Obs {
                        server,
                        registrar,
                        area,
                        at,
                    } => {
                        book.observe(
                            &ServerId::new(SERVERS[*server]),
                            *registrar,
                            AREAS[*area],
                            *at,
                        );
                    }
                    Ev::Round { verdicts, at } => {
                        let vs: Vec<_> = verdicts
                            .iter()
                            .map(|(s, c)| {
                                let class = match c {
                                    0 => ConflictClass::Mirror,
                                    1 => ConflictClass::Stale,
                                    _ => ConflictClass::Suspect,
                                };
                                (ServerId::new(SERVERS[*s]), class)
                            })
                            .collect();
                        book.apply_round(&vs, *at);
                    }
                }
            }
            book
        }

        fn splitmix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        proptest! {
            /// The tentpole invariant: any permutation of the same
            /// event multiset yields the same final trust states.
            #[test]
            fn trust_state_is_order_independent(
                events in proptest::collection::vec(arb_ev(), 0..24),
                seed in 0u64..1_000,
            ) {
                let baseline = apply(&events);
                // Seeded Fisher–Yates permutation of the same events.
                let mut shuffled = events.clone();
                for i in (1..shuffled.len()).rev() {
                    let j = (splitmix64(seed ^ (i as u64)) as usize) % (i + 1);
                    shuffled.swap(i, j);
                }
                let permuted = apply(&shuffled);
                prop_assert_eq!(baseline, permuted);
            }

            /// Classification is itself permutation-invariant over the
            /// observation multiset.
            #[test]
            fn classify_is_order_independent(
                mut obs in proptest::collection::vec(
                    (0usize..SERVERS.len(), 0u64..5, 0u64..5, any::<bool>()).prop_map(
                        |(s, count, fp, fresh)| Observation {
                            server: ServerId::new(SERVERS[s]),
                            count,
                            fingerprint: fp,
                            fresh,
                        }
                    ),
                    1..8
                ),
                seed in 0u64..1_000,
            ) {
                // Canonical multiset order: a server may legitimately
                // appear twice (two probes), so sort by class too.
                let canon = |mut vs: Vec<(ServerId, ConflictClass)>| {
                    vs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.name().cmp(b.1.name())));
                    vs
                };
                let baseline = canon(classify(&obs));
                for i in (1..obs.len()).rev() {
                    let j = (splitmix64(seed ^ (i as u64)) as usize) % (i + 1);
                    obs.swap(i, j);
                }
                let permuted = canon(classify(&obs));
                prop_assert_eq!(baseline, permuted);
            }
        }
    }
}
