//! Ordering and transfer policies (paper §5.2): "MQPs will need to
//! incorporate ordering and transfer policies, such as 'do not bind
//! preferences until playlist is bound' or 'only let this MQP
//! pass through servers on this list.'"
//!
//! Constraints ride in the MQP envelope as XML:
//!
//! ```text
//! <constraints>
//!   <allow server="irs"/> <allow server="state"/>
//!   <bind-after first="urn:State:FrontOrgs" then="urn:IRS:Preferences"/>
//! </constraints>
//! ```

use mqp_catalog::ServerId;
use mqp_xml::{Element, Node};

/// Query-issuer constraints on how an MQP may be processed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Constraints {
    /// When non-empty, the MQP may only be routed to (and processed by)
    /// these servers — §5.2's transfer policy.
    pub allowed_servers: Vec<ServerId>,
    /// Ordering rules: `(first, then)` — the resource named `then` must
    /// not be bound while `first` is still unbound. §5.2's "do not bind
    /// preferences until playlist is bound".
    pub bind_after: Vec<(String, String)>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// True when nothing is constrained.
    pub fn is_empty(&self) -> bool {
        self.allowed_servers.is_empty() && self.bind_after.is_empty()
    }

    /// Restricts routing to the given servers; returns `self`.
    pub fn allow_only<S: Into<ServerId>>(mut self, servers: impl IntoIterator<Item = S>) -> Self {
        self.allowed_servers = servers.into_iter().map(Into::into).collect();
        self
    }

    /// Adds an ordering rule; returns `self`.
    pub fn bind_after(mut self, first: impl Into<String>, then: impl Into<String>) -> Self {
        self.bind_after.push((first.into(), then.into()));
        self
    }

    /// May the MQP be sent to (or processed by) `server`?
    pub fn server_allowed(&self, server: &ServerId) -> bool {
        self.allowed_servers.is_empty() || self.allowed_servers.contains(server)
    }

    /// May the resource named `urn` be bound now, given the set of URNs
    /// still unbound in the plan? Binding `then` is blocked while any
    /// rule's `first` remains unbound (and is a different resource).
    pub fn may_bind(&self, urn: &str, still_unbound: &[String]) -> bool {
        for (first, then) in &self.bind_after {
            if then == urn && first != urn && still_unbound.iter().any(|u| u == first) {
                return false;
            }
        }
        true
    }

    /// Serializes to the `<constraints>` element (omitted from
    /// envelopes when empty).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("constraints");
        for s in &self.allowed_servers {
            e.push_child(Node::Element(
                Element::new("allow").attr("server", s.as_str()),
            ));
        }
        for (first, then) in &self.bind_after {
            e.push_child(Node::Element(
                Element::new("bind-after")
                    .attr("first", first)
                    .attr("then", then),
            ));
        }
        e
    }

    /// Parses the `<constraints>` element.
    pub fn from_xml(e: &Element) -> Option<Constraints> {
        if e.name() != "constraints" {
            return None;
        }
        let mut c = Constraints::default();
        for child in e.child_elements() {
            match child.name() {
                "allow" => c
                    .allowed_servers
                    .push(ServerId::new(child.get_attr("server")?)),
                "bind-after" => c.bind_after.push((
                    child.get_attr("first")?.to_owned(),
                    child.get_attr("then")?.to_owned(),
                )),
                _ => return None,
            }
        }
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_constraints_allow_everything() {
        let c = Constraints::none();
        assert!(c.is_empty());
        assert!(c.server_allowed(&ServerId::new("anyone")));
        assert!(c.may_bind("urn:A:x", &["urn:B:y".into()]));
    }

    #[test]
    fn transfer_policy_restricts_servers() {
        let c = Constraints::none().allow_only(["irs", "state"]);
        assert!(c.server_allowed(&ServerId::new("irs")));
        assert!(!c.server_allowed(&ServerId::new("tracker")));
    }

    #[test]
    fn ordering_policy_blocks_until_first_bound() {
        // "Do not bind preferences until playlist is bound."
        let c = Constraints::none().bind_after("urn:CD:Playlist", "urn:My:Preferences");
        let both_unbound = vec![
            "urn:CD:Playlist".to_owned(),
            "urn:My:Preferences".to_owned(),
        ];
        assert!(!c.may_bind("urn:My:Preferences", &both_unbound));
        assert!(c.may_bind("urn:CD:Playlist", &both_unbound));
        // Once the playlist is bound, preferences may bind.
        let later = vec!["urn:My:Preferences".to_owned()];
        assert!(c.may_bind("urn:My:Preferences", &later));
    }

    #[test]
    fn xml_roundtrip() {
        let c = Constraints::none()
            .allow_only(["irs", "state"])
            .bind_after("urn:A:x", "urn:B:y");
        let back = Constraints::from_xml(&c.to_xml()).unwrap();
        assert_eq!(back, c);
        assert!(Constraints::from_xml(&Element::new("nope")).is_none());
    }

    #[test]
    fn self_rule_does_not_deadlock() {
        // A rule naming the same resource twice must not block it.
        let c = Constraints::none().bind_after("urn:A:x", "urn:A:x");
        assert!(c.may_bind("urn:A:x", &["urn:A:x".to_owned()]));
    }
}
