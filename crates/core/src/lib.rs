//! # mqp-core — the mutant query processor (the paper's contribution)
//!
//! "A server can choose to mutate an incoming MQP in two ways. It can
//! resolve a URN to one or more URLs, or a URL to its corresponding
//! data. The server can also reduce the MQP by evaluating a sub-graph of
//! the plan that contains only data at the leaves, and substituting the
//! results in place of the sub-plan." (§2)
//!
//! This crate implements that server-side pipeline (Figure 2) and the
//! surrounding machinery:
//!
//! * [`Mqp`] — the travelling envelope: the plan, its provenance trail
//!   (§5.1), and optionally the original plan, XML-serializable end to
//!   end.
//! * [`rewrite`] — plan rewrites: select-pushdown through union/or,
//!   union consolidation/flattening, `Or` commitment (`A | B → A`), and
//!   the *absorption* rewrite `(A ⋈ X) ⋈ B → (A ⋈ B) ⋈ X` that trades
//!   local work for smaller shipped plans (§2).
//! * [`policy`] — the policy manager: which locally-evaluable sub-plans
//!   to reduce (deferment, §5.1), and which `Or` alternative to commit
//!   under a completeness/currency/latency preference (§4.3).
//! * [`processor`] — the Figure-2 loop: parse → resolve → rewrite →
//!   optimize → policy → evaluate → substitute → route.
//! * [`provenance`] — visit records, spoofing detection, and
//!   verification queries (§5.1).
//! * [`constraints`] — the ordering and transfer policies of §5.2
//!   ("do not bind X until Y is bound"; "only pass through servers on
//!   this list"), enforced by the processor.

pub mod constraints;
pub mod mqp;
pub mod policy;
pub mod processor;
pub mod provenance;
pub mod query;
pub mod rewrite;
pub mod rules;

pub use constraints::Constraints;
pub use mqp::Mqp;
pub use policy::Policy;
pub use processor::{Outcome, Processor, ServerContext};
pub use provenance::{unaccounted_sources, verification_query, Action, VisitRecord};
pub use query::{QueryId, QueryOutcome};
pub use rules::{Cond, Decision, Rule, RuleAction, RuleCtx, RuleSet};
