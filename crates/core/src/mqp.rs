//! The MQP envelope: what actually travels between servers.
//!
//! §5.1 argues for carrying more than the bare plan: provenance, and a
//! copy of the original query ("Maintaining the original query along
//! with the partially evaluated query also allows a server to improve or
//! enhance bindings (or even undo them)"). The envelope is itself XML:
//!
//! ```text
//! <mqp>
//!   <plan> current plan </plan>
//!   <original> original plan </original>      (optional)
//!   <provenance> <visit …/>* </provenance>
//! </mqp>
//! ```

use mqp_algebra::codec::{plan_from_xml, plan_to_xml, CodecError};
use mqp_algebra::plan::Plan;
use mqp_xml::{Element, Node};

use crate::constraints::Constraints;
use crate::provenance::VisitRecord;

/// A mutant query plan in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Mqp {
    /// The current (partially evaluated) plan.
    pub plan: Plan,
    /// The original plan as submitted by the client, if carried.
    pub original: Option<Plan>,
    /// The visit history.
    pub provenance: Vec<VisitRecord>,
    /// Ordering/transfer policies (§5.2).
    pub constraints: Constraints,
}

impl Mqp {
    /// Wraps a fresh client plan; keeps a copy as the original.
    pub fn new(plan: Plan) -> Self {
        Mqp {
            original: Some(plan.clone()),
            plan,
            provenance: Vec::new(),
            constraints: Constraints::none(),
        }
    }

    /// Attaches §5.2 constraints; returns `self` for chaining.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Wraps a plan without keeping the original (leaner envelopes; the
    /// tradeoff §5.1 discusses).
    pub fn without_original(plan: Plan) -> Self {
        Mqp {
            plan,
            original: None,
            provenance: Vec::new(),
            constraints: Constraints::none(),
        }
    }

    /// Appends a provenance record.
    pub fn record(&mut self, visit: VisitRecord) {
        self.provenance.push(visit);
    }

    /// Servers visited so far, in order, without duplicates.
    pub fn visited(&self) -> Vec<mqp_catalog::ServerId> {
        let mut out = Vec::new();
        for v in &self.provenance {
            if !out.contains(&v.server) {
                out.push(v.server.clone());
            }
        }
        out
    }

    /// Worst-case staleness of any information used so far (minutes).
    pub fn staleness(&self) -> u32 {
        self.provenance
            .iter()
            .map(|v| v.staleness)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the envelope to XML.
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("mqp");
        e.push_child(Node::Element(
            Element::new("plan").child(plan_to_xml(&self.plan)),
        ));
        if let Some(orig) = &self.original {
            e.push_child(Node::Element(
                Element::new("original").child(plan_to_xml(orig)),
            ));
        }
        let mut prov = Element::new("provenance");
        for v in &self.provenance {
            prov.push_child(Node::Element(v.to_xml()));
        }
        e.push_child(Node::Element(prov));
        if !self.constraints.is_empty() {
            e.push_child(Node::Element(self.constraints.to_xml()));
        }
        e
    }

    /// Parses an envelope from XML.
    pub fn from_xml(e: &Element) -> Result<Mqp, CodecError> {
        let bad = |m: &str| CodecError::Malformed(m.to_owned());
        if e.name() != "mqp" {
            return Err(bad("envelope root must be <mqp>"));
        }
        let plan_el = e
            .first("plan")
            .and_then(|p| p.child_elements().next())
            .ok_or_else(|| bad("missing <plan>"))?;
        let plan = plan_from_xml(plan_el)?;
        let original = match e.first("original").and_then(|o| o.child_elements().next()) {
            Some(el) => Some(plan_from_xml(el)?),
            None => None,
        };
        let mut provenance = Vec::new();
        if let Some(prov) = e.first("provenance") {
            for v in prov.child_elements() {
                provenance.push(VisitRecord::from_xml(v).ok_or_else(|| bad("bad <visit> record"))?);
            }
        }
        let constraints = match e.first("constraints") {
            Some(c) => Constraints::from_xml(c).ok_or_else(|| bad("bad <constraints>"))?,
            None => Constraints::none(),
        };
        Ok(Mqp {
            plan,
            original,
            provenance,
            constraints,
        })
    }

    /// Serializes to the compact wire string.
    pub fn to_wire(&self) -> String {
        mqp_xml::serialize(&self.to_xml())
    }

    /// Parses from the wire string.
    pub fn from_wire(s: &str) -> Result<Mqp, CodecError> {
        let root = mqp_xml::parse(s)?;
        Mqp::from_xml(&root)
    }

    /// Byte size of the envelope on the wire — what the network charges
    /// per hop.
    pub fn wire_size(&self) -> usize {
        self.to_xml().serialized_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Action;
    use mqp_catalog::ServerId;

    fn sample() -> Mqp {
        let plan = Plan::display(
            "client:9020",
            Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
        );
        let mut m = Mqp::new(plan);
        m.record(VisitRecord {
            server: ServerId::new("meta-usa"),
            action: Action::Bound,
            detail: "urn:ForSale:Portland-CDs -> mqp://seller-1/".to_owned(),
            at: 1000,
            staleness: 0,
        });
        m
    }

    #[test]
    fn envelope_roundtrip() {
        let m = sample();
        let wire = m.to_wire();
        let back = Mqp::from_wire(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn envelope_without_original_roundtrip() {
        let m = Mqp::without_original(Plan::data([]));
        let back = Mqp::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back, m);
        assert!(back.original.is_none());
    }

    #[test]
    fn wire_size_matches() {
        let m = sample();
        assert_eq!(m.wire_size(), m.to_wire().len());
    }

    #[test]
    fn visited_dedups_in_order() {
        let mut m = sample();
        for s in ["a", "b", "a"] {
            m.record(VisitRecord {
                server: ServerId::new(s),
                action: Action::Forwarded,
                detail: String::new(),
                at: 0,
                staleness: 0,
            });
        }
        let visited: Vec<String> = m.visited().iter().map(|s| s.as_str().to_owned()).collect();
        assert_eq!(visited, ["meta-usa", "a", "b"]);
    }

    #[test]
    fn staleness_is_max() {
        let mut m = sample();
        m.record(VisitRecord {
            server: ServerId::new("r"),
            action: Action::Evaluated,
            detail: String::new(),
            at: 5,
            staleness: 30,
        });
        assert_eq!(m.staleness(), 30);
    }

    #[test]
    fn constraints_roundtrip() {
        let m = sample().with_constraints(
            Constraints::none()
                .allow_only(["irs", "state"])
                .bind_after("urn:A:x", "urn:B:y"),
        );
        let back = Mqp::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back, m);
        assert!(!back.constraints.is_empty());
    }

    #[test]
    fn malformed_envelopes_rejected() {
        for bad in [
            "<notmqp/>",
            "<mqp/>",
            "<mqp><plan/></mqp>",
            "<mqp><plan><mystery/></plan></mqp>",
            "<mqp><plan><data/></plan><provenance><visit/></provenance></mqp>",
        ] {
            assert!(Mqp::from_wire(bad).is_err(), "{bad}");
        }
    }
}
