//! The MQP envelope: what actually travels between servers.
//!
//! §5.1 argues for carrying more than the bare plan: provenance, and a
//! copy of the original query ("Maintaining the original query along
//! with the partially evaluated query also allows a server to improve or
//! enhance bindings (or even undo them)"). The envelope is itself XML:
//!
//! ```text
//! <mqp>
//!   <plan> current plan </plan>
//!   <original> original plan </original>      (optional)
//!   <provenance> <visit …/>* </provenance>
//! </mqp>
//! ```
//!
//! ## Incremental re-serialization
//!
//! The Figure-2 loop re-parses and re-serializes the envelope at every
//! hop, so each section's wire bytes are cached and spliced instead of
//! rebuilt (DESIGN.md §7):
//!
//! * the **plan** fragment is invalidated by a dirty bit whenever the
//!   plan is touched through [`Mqp::plan_mut`];
//! * the **original** never changes after construction;
//! * **provenance** is append-only, so cached `<visit/>` fragments stay
//!   valid and only new records serialize;
//! * [`Mqp::from_wire`] seeds all of these straight from the incoming
//!   bytes when the input is canonical (always true on the wire path),
//!   which is sound because the canonical parser guarantees each
//!   element's byte span re-serializes to itself.
//!
//! Invariants (property-tested in `tests/properties.rs`):
//! [`Mqp::wire_size`] is always exactly `to_wire().len()`, and for any
//! envelope whose sections were produced by this codec — every
//! programmatically built envelope, and everything travelling the wire
//! path, since peers only emit [`Mqp::to_wire`] — `to_wire()` is
//! byte-identical to serializing [`Mqp::to_xml`]. (An envelope parsed
//! from *foreign* canonical XML that spells a section differently than
//! this codec would — say `pred="a&lt;1"` where our predicate printer
//! writes `a &lt; 1` — forwards those received bytes verbatim, which
//! is deliberate: faithful forwarding, still reparsing to the same
//! plan.)

use std::cell::{OnceCell, RefCell};
use std::fmt;

use mqp_algebra::codec::{
    plan_from_canonical, plan_from_tokens, plan_from_xml, plan_to_xml, write_plan, CodecError,
    ItemSink,
};
use mqp_algebra::plan::Plan;
use mqp_xml::{Element, Node, Token, Tokenizer, TreeBuilder};

use crate::constraints::Constraints;
use crate::provenance::VisitRecord;

/// Cached wire fragments (see module docs). Interior-mutable so
/// `to_wire(&self)` can memoize; never observable — every accessor
/// yields the same bytes a cold cache would.
///
/// One slot is more than a memo: for an envelope parsed from canonical
/// wire bytes, `original` holds the *only* copy of the original plan —
/// validated at parse time, decoded into `Mqp::original_plan` the
/// first time someone (the §5.1 audit) actually asks. Intermediate
/// hops never pay to materialize a section they never read.
#[derive(Clone, Default)]
struct WireCache {
    /// Serialized current plan (the single child of `<plan>`); `None`
    /// when the plan is dirty.
    plan: RefCell<Option<String>>,
    /// Serialized original plan (the single child of `<original>`).
    /// Never invalidated: the original is immutable.
    original: RefCell<Option<String>>,
    /// Serialized `<visit …/>` fragments for a prefix of the
    /// provenance list (append-only, so a prefix never goes stale).
    visits: RefCell<Vec<String>>,
    /// Serialized `<constraints>…</constraints>` element.
    constraints: RefCell<Option<String>>,
}

/// A mutant query plan in flight.
#[derive(Clone)]
pub struct Mqp {
    /// The current (partially evaluated) plan.
    plan: Plan,
    /// The original plan as submitted by the client, if carried.
    /// Either this cell or `cache.original` is populated when an
    /// original is carried (see [`WireCache`]); both empty means the
    /// envelope travels without one.
    original_plan: OnceCell<Plan>,
    /// The visit history.
    provenance: Vec<VisitRecord>,
    /// Ordering/transfer policies (§5.2).
    constraints: Constraints,
    cache: WireCache,
}

impl Mqp {
    /// Wraps a fresh client plan; keeps a copy as the original.
    pub fn new(plan: Plan) -> Self {
        let original_plan = OnceCell::new();
        original_plan.set(plan.clone()).expect("fresh cell");
        Mqp {
            original_plan,
            plan,
            provenance: Vec::new(),
            constraints: Constraints::none(),
            cache: WireCache::default(),
        }
    }

    /// Attaches §5.2 constraints; returns `self` for chaining.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        *self.cache.constraints.borrow_mut() = None;
        self
    }

    /// Wraps a plan without keeping the original (leaner envelopes; the
    /// tradeoff §5.1 discusses).
    pub fn without_original(plan: Plan) -> Self {
        Mqp {
            plan,
            original_plan: OnceCell::new(),
            provenance: Vec::new(),
            constraints: Constraints::none(),
            cache: WireCache::default(),
        }
    }

    /// The current plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Mutable access to the plan. Marks the cached plan fragment dirty
    /// — the next serialization rebuilds (only) the `<plan>` section.
    pub fn plan_mut(&mut self) -> &mut Plan {
        *self.cache.plan.borrow_mut() = None;
        &mut self.plan
    }

    /// Plan access that does *not* invalidate the cached wire fragment.
    /// The processor uses this for pipeline stages that report whether
    /// they changed anything, pairing it with
    /// [`Mqp::invalidate_plan_cache`] so a pure-forward hop keeps its
    /// splice-only serialization.
    pub(crate) fn plan_untracked_mut(&mut self) -> &mut Plan {
        &mut self.plan
    }

    /// Marks the cached plan fragment dirty (see
    /// [`Mqp::plan_untracked_mut`]).
    pub(crate) fn invalidate_plan_cache(&self) {
        *self.cache.plan.borrow_mut() = None;
    }

    /// The original plan as submitted by the client, if carried.
    ///
    /// For an envelope parsed from canonical wire bytes this is where
    /// the `<original>` section is first materialized (it was only
    /// *validated* during parsing); the decode is memoized, and
    /// envelopes that are merely forwarded never pay for it.
    pub fn original(&self) -> Option<&Plan> {
        if self.original_plan.get().is_none() {
            let wire = self.cache.original.borrow();
            let frag = wire.as_deref()?;
            let plan = plan_from_canonical(frag)
                .expect("original section was token-validated when the envelope was parsed");
            drop(wire);
            let _ = self.original_plan.set(plan);
        }
        self.original_plan.get()
    }

    /// The visit history, oldest first.
    pub fn provenance(&self) -> &[VisitRecord] {
        &self.provenance
    }

    /// The §5.2 constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Appends a provenance record. (Provenance is append-only, which
    /// is what lets its serialized fragments be cached.)
    pub fn record(&mut self, visit: VisitRecord) {
        self.provenance.push(visit);
    }

    /// Servers visited so far, in order, without duplicates.
    pub fn visited(&self) -> Vec<mqp_catalog::ServerId> {
        let mut out = Vec::new();
        for v in &self.provenance {
            if !out.contains(&v.server) {
                out.push(v.server.clone());
            }
        }
        out
    }

    /// Worst-case staleness of any information used so far (minutes).
    pub fn staleness(&self) -> u32 {
        self.provenance
            .iter()
            .map(|v| v.staleness)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the envelope to XML. (The tree form is the spec the
    /// spliced [`Mqp::to_wire`] is property-tested against; the wire
    /// path itself never builds it.)
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("mqp");
        e.push_child(Node::Element(
            Element::new("plan").child(plan_to_xml(&self.plan)),
        ));
        if let Some(orig) = self.original() {
            e.push_child(Node::Element(
                Element::new("original").child(plan_to_xml(orig)),
            ));
        }
        let mut prov = Element::new("provenance");
        for v in &self.provenance {
            prov.push_child(Node::Element(v.to_xml()));
        }
        e.push_child(Node::Element(prov));
        if !self.constraints.is_empty() {
            e.push_child(Node::Element(self.constraints.to_xml()));
        }
        e
    }

    /// Parses an envelope from XML.
    pub fn from_xml(e: &Element) -> Result<Mqp, CodecError> {
        let bad = |m: &str| CodecError::Malformed(m.to_owned());
        if e.name() != "mqp" {
            return Err(bad("envelope root must be <mqp>"));
        }
        let plan_el = e
            .first("plan")
            .and_then(|p| p.child_elements().next())
            .ok_or_else(|| bad("missing <plan>"))?;
        let plan = plan_from_xml(plan_el)?;
        let original_plan = OnceCell::new();
        if let Some(el) = e.first("original").and_then(|o| o.child_elements().next()) {
            original_plan.set(plan_from_xml(el)?).expect("fresh cell");
        }
        let mut provenance = Vec::new();
        if let Some(prov) = e.first("provenance") {
            for v in prov.child_elements() {
                provenance.push(VisitRecord::from_xml(v).ok_or_else(|| bad("bad <visit> record"))?);
            }
        }
        let constraints = match e.first("constraints") {
            Some(c) => Constraints::from_xml(c).ok_or_else(|| bad("bad <constraints>"))?,
            None => Constraints::none(),
        };
        Ok(Mqp {
            plan,
            original_plan,
            provenance,
            constraints,
            cache: WireCache::default(),
        })
    }

    /// Serializes to the compact wire string, splicing cached fragments
    /// for every section that did not change since the envelope was
    /// parsed (byte-identical to `serialize(&self.to_xml())`).
    pub fn to_wire(&self) -> String {
        self.ensure_fragments();
        let plan = self.cache.plan.borrow();
        let original = self.cache.original.borrow();
        let visits = self.cache.visits.borrow();
        let constraints = self.cache.constraints.borrow();
        let plan = plan.as_deref().expect("ensured");
        let orig = original.as_deref();
        let cons = (!self.constraints.is_empty()).then(|| constraints.as_deref().expect("ensured"));
        let mut out = String::with_capacity(assembled_len(plan, orig, &visits, cons));
        out.push_str("<mqp><plan>");
        out.push_str(plan);
        out.push_str("</plan>");
        if let Some(o) = orig {
            out.push_str("<original>");
            out.push_str(o);
            out.push_str("</original>");
        }
        if visits.is_empty() {
            out.push_str("<provenance/>");
        } else {
            out.push_str("<provenance>");
            for v in visits.iter() {
                out.push_str(v);
            }
            out.push_str("</provenance>");
        }
        if let Some(c) = cons {
            out.push_str(c);
        }
        out.push_str("</mqp>");
        out
    }

    /// Parses from the wire string. Canonical input (everything our own
    /// serializer produced — i.e. the entire hop-to-hop path) walks the
    /// zero-copy tokenizer once: the current plan decodes straight from
    /// tokens (no intermediate XML tree), the `<original>` section is
    /// *validated but not materialized* (its bytes become the cached
    /// fragment, decoded lazily by [`Mqp::original`]), and every
    /// section's byte span seeds the splice cache. Anything else falls
    /// back to the lenient tree path with cold caches — which also
    /// reproduces the precise error for malformed envelopes.
    pub fn from_wire(s: &str) -> Result<Mqp, CodecError> {
        if let Some(mqp) = Mqp::from_wire_canonical(s) {
            return Ok(mqp);
        }
        let root = mqp_xml::parse(s)?;
        Mqp::from_xml(&root)
    }

    /// The canonical token walk behind [`Mqp::from_wire`]; `None` means
    /// fall back (non-canonical bytes, or any shape/semantic problem —
    /// the fallback rediscovers the exact error).
    fn from_wire_canonical(s: &str) -> Option<Mqp> {
        let mut tok = Tokenizer::new(s);
        match tok.next_token() {
            Ok(Some(Token::Open("mqp"))) => {}
            _ => return None,
        }
        match tok.next_token() {
            Ok(Some(Token::OpenEnd)) => {}
            _ => return None, // attrs on <mqp>, or <mqp/> (missing plan)
        }
        let mut tb = TreeBuilder::new();
        let mut plan: Option<Plan> = None;
        let mut plan_frag: Option<&str> = None;
        let mut seen_plan = false;
        let mut original_frag: Option<&str> = None;
        let mut seen_original = false;
        let mut seen_provenance = false;
        let mut visits: Vec<VisitRecord> = Vec::new();
        let mut visit_frags: Vec<&str> = Vec::new();
        let mut constraints: Option<Constraints> = None;
        let mut constraints_frag: Option<&str> = None;
        loop {
            let section_start = tok.pos();
            match tok.next_token().ok()?? {
                Token::Close("mqp") => break,
                Token::Text(_) => {} // stray text: ignored, like from_xml
                Token::Open("plan") if !seen_plan => {
                    seen_plan = true;
                    match tok.next_token().ok()?? {
                        Token::OpenEnd => {}
                        _ => return None, // attrs on <plan>, or empty <plan/>
                    }
                    loop {
                        let inner_start = tok.pos();
                        match tok.next_token().ok()?? {
                            Token::Open(n) => {
                                if plan.is_none() {
                                    plan = Some(
                                        plan_from_tokens(
                                            &mut tok,
                                            &mut ItemSink::Build(&mut tb),
                                            n,
                                        )
                                        .ok()?,
                                    );
                                    plan_frag = Some(&s[inner_start..tok.pos()]);
                                } else {
                                    // from_xml takes the first element
                                    // child; skip (and validate) extras.
                                    mqp_xml::skip_subtree(&mut tok, n).ok()?;
                                }
                            }
                            Token::Text(_) => {}
                            Token::Close("plan") => break,
                            _ => return None,
                        }
                    }
                }
                Token::Open("original") if !seen_original => {
                    seen_original = true;
                    match tok.next_token().ok()?? {
                        Token::OpenEnd => {}
                        _ => return None,
                    }
                    loop {
                        let inner_start = tok.pos();
                        match tok.next_token().ok()?? {
                            Token::Open(n) => {
                                if original_frag.is_none() {
                                    // Validate without materializing:
                                    // the skip-mode decoder accepts
                                    // exactly what the build-mode one
                                    // does, so the lazy decode in
                                    // `original()` cannot fail.
                                    plan_from_tokens(&mut tok, &mut ItemSink::Skip, n).ok()?;
                                    original_frag = Some(&s[inner_start..tok.pos()]);
                                } else {
                                    mqp_xml::skip_subtree(&mut tok, n).ok()?;
                                }
                            }
                            Token::Text(_) => {}
                            Token::Close("original") => break,
                            _ => return None,
                        }
                    }
                }
                Token::Open("provenance") if !seen_provenance => {
                    seen_provenance = true;
                    let mut self_closed = false;
                    match tok.next_token().ok()?? {
                        Token::OpenEnd => {}
                        Token::SelfClose => self_closed = true,
                        _ => return None,
                    }
                    if !self_closed {
                        loop {
                            let visit_start = tok.pos();
                            match tok.next_token().ok()?? {
                                Token::Open(n) => {
                                    let el = tb.build(&mut tok, n).ok()?;
                                    visits.push(VisitRecord::from_xml(&el)?);
                                    visit_frags.push(&s[visit_start..tok.pos()]);
                                }
                                Token::Text(_) => {}
                                Token::Close("provenance") => break,
                                _ => return None,
                            }
                        }
                    }
                }
                Token::Open("constraints") if constraints.is_none() => {
                    let el = tb.build(&mut tok, "constraints").ok()?;
                    constraints = Some(Constraints::from_xml(&el)?);
                    constraints_frag = Some(&s[section_start..tok.pos()]);
                }
                // Unknown sections: from_xml ignores them; skip past.
                Token::Open(n) => mqp_xml::skip_subtree(&mut tok, n).ok()?,
                _ => return None,
            }
        }
        if !matches!(tok.next_token(), Ok(None)) {
            return None; // trailing content
        }
        let plan = plan?; // a canonical <mqp> without a plan: fall back to the real error
        let mqp = Mqp {
            plan,
            original_plan: OnceCell::new(),
            provenance: visits,
            constraints: constraints.unwrap_or_else(Constraints::none),
            cache: WireCache {
                plan: RefCell::new(plan_frag.map(str::to_owned)),
                original: RefCell::new(original_frag.map(str::to_owned)),
                visits: RefCell::new(visit_frags.iter().map(|f| (*f).to_owned()).collect()),
                constraints: RefCell::new(constraints_frag.map(str::to_owned)),
            },
        };
        Some(mqp)
    }

    /// Byte size of the envelope on the wire — what the network charges
    /// per hop. Always exactly `to_wire().len()`.
    pub fn wire_size(&self) -> usize {
        self.ensure_fragments();
        let plan = self.cache.plan.borrow();
        let original = self.cache.original.borrow();
        let visits = self.cache.visits.borrow();
        let constraints = self.cache.constraints.borrow();
        assembled_len(
            plan.as_deref().expect("ensured"),
            original.as_deref(),
            &visits,
            (!self.constraints.is_empty()).then(|| constraints.as_deref().expect("ensured")),
        )
    }

    /// Fills every cache slot that is currently cold.
    fn ensure_fragments(&self) {
        {
            let mut plan = self.cache.plan.borrow_mut();
            if plan.is_none() {
                let mut s = String::with_capacity(128);
                write_plan(&self.plan, &mut s);
                *plan = Some(s);
            }
        }
        if let Some(orig) = self.original_plan.get() {
            let mut original = self.cache.original.borrow_mut();
            if original.is_none() {
                let mut s = String::with_capacity(128);
                write_plan(orig, &mut s);
                *original = Some(s);
            }
        }
        {
            let mut visits = self.cache.visits.borrow_mut();
            for v in &self.provenance[visits.len()..] {
                visits.push(mqp_xml::serialize(&v.to_xml()));
            }
        }
        if !self.constraints.is_empty() {
            let mut cons = self.cache.constraints.borrow_mut();
            if cons.is_none() {
                *cons = Some(mqp_xml::serialize(&self.constraints.to_xml()));
            }
        }
    }
}

/// Length of the assembled envelope for the given fragments.
fn assembled_len(
    plan: &str,
    original: Option<&str>,
    visits: &[String],
    constraints: Option<&str>,
) -> usize {
    let mut n = "<mqp>".len() + "<plan>".len() + plan.len() + "</plan>".len() + "</mqp>".len();
    if let Some(o) = original {
        n += "<original>".len() + o.len() + "</original>".len();
    }
    n += if visits.is_empty() {
        "<provenance/>".len()
    } else {
        "<provenance>".len() + visits.iter().map(String::len).sum::<usize>() + "</provenance>".len()
    };
    if let Some(c) = constraints {
        n += c.len();
    }
    n
}

impl PartialEq for Mqp {
    fn eq(&self, other: &Self) -> bool {
        // Caches are memoization, not state (comparing originals may
        // materialize a lazily-held section on either side).
        self.plan == other.plan
            && self.original() == other.original()
            && self.provenance == other.provenance
            && self.constraints == other.constraints
    }
}

impl fmt::Debug for Mqp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mqp")
            .field("plan", &self.plan)
            .field("original", &self.original())
            .field("provenance", &self.provenance)
            .field("constraints", &self.constraints)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Action;
    use mqp_catalog::ServerId;

    fn sample() -> Mqp {
        let plan = Plan::display(
            "client:9020",
            Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
        );
        let mut m = Mqp::new(plan);
        m.record(VisitRecord {
            server: ServerId::new("meta-usa"),
            action: Action::Bound,
            detail: "urn:ForSale:Portland-CDs -> mqp://seller-1/".to_owned(),
            at: 1000,
            staleness: 0,
        });
        m
    }

    #[test]
    fn envelope_roundtrip() {
        let m = sample();
        let wire = m.to_wire();
        let back = Mqp::from_wire(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn envelope_without_original_roundtrip() {
        let m = Mqp::without_original(Plan::data([]));
        let back = Mqp::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back, m);
        assert!(back.original().is_none());
    }

    #[test]
    fn wire_size_matches() {
        let m = sample();
        assert_eq!(m.wire_size(), m.to_wire().len());
    }

    #[test]
    fn to_wire_matches_tree_serialization() {
        let m = sample();
        assert_eq!(m.to_wire(), mqp_xml::serialize(&m.to_xml()));
    }

    #[test]
    fn reparsed_envelope_reserializes_identically() {
        // The seeded-cache path: from_wire on canonical bytes must
        // splice back to the identical wire string.
        let wire = sample().to_wire();
        let back = Mqp::from_wire(&wire).unwrap();
        assert_eq!(back.to_wire(), wire);
        assert_eq!(back.wire_size(), wire.len());
    }

    #[test]
    fn plan_mutation_invalidates_cached_fragment() {
        let mut m = Mqp::from_wire(&sample().to_wire()).unwrap();
        *m.plan_mut() = Plan::display("client:9020", Plan::data([]));
        assert_eq!(m.to_wire(), mqp_xml::serialize(&m.to_xml()));
        assert!(m.to_wire().contains("<plan><display"));
    }

    #[test]
    fn record_after_reparse_appends_fragment() {
        let mut m = Mqp::from_wire(&sample().to_wire()).unwrap();
        m.record(VisitRecord {
            server: ServerId::new("seller-1"),
            action: Action::Evaluated,
            detail: "reduced select at /0".to_owned(),
            at: 2000,
            staleness: 0,
        });
        assert_eq!(m.to_wire(), mqp_xml::serialize(&m.to_xml()));
        assert_eq!(m.wire_size(), m.to_wire().len());
    }

    #[test]
    fn visited_dedups_in_order() {
        let mut m = sample();
        for s in ["a", "b", "a"] {
            m.record(VisitRecord {
                server: ServerId::new(s),
                action: Action::Forwarded,
                detail: String::new(),
                at: 0,
                staleness: 0,
            });
        }
        let visited: Vec<String> = m.visited().iter().map(|s| s.as_str().to_owned()).collect();
        assert_eq!(visited, ["meta-usa", "a", "b"]);
    }

    #[test]
    fn staleness_is_max() {
        let mut m = sample();
        m.record(VisitRecord {
            server: ServerId::new("r"),
            action: Action::Evaluated,
            detail: String::new(),
            at: 5,
            staleness: 30,
        });
        assert_eq!(m.staleness(), 30);
    }

    #[test]
    fn constraints_roundtrip() {
        let m = sample().with_constraints(
            Constraints::none()
                .allow_only(["irs", "state"])
                .bind_after("urn:A:x", "urn:B:y"),
        );
        let back = Mqp::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back, m);
        assert!(!back.constraints().is_empty());
        assert_eq!(back.to_wire(), m.to_wire());
    }

    #[test]
    fn malformed_envelopes_rejected() {
        for bad in [
            "<notmqp/>",
            "<mqp/>",
            "<mqp><plan/></mqp>",
            "<mqp><plan><mystery/></plan></mqp>",
            "<mqp><plan><data/></plan><provenance><visit/></provenance></mqp>",
        ] {
            assert!(Mqp::from_wire(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn foreign_spelling_is_forwarded_verbatim() {
        // Canonical XML that spells a section differently than our
        // codec would (visit attributes in a foreign order): the
        // received bytes are spliced onward verbatim — deliberate
        // faithful forwarding (see module docs) — while reparsing
        // still yields the same envelope.
        let wire = "<mqp><plan><data cardinality=\"0\"/></plan><provenance>\
                    <visit action=\"forwarded\" server=\"s\" detail=\"\" at=\"0\" staleness=\"0\"/>\
                    </provenance></mqp>";
        let m = Mqp::from_wire(wire).unwrap();
        assert_eq!(m.to_wire(), wire);
        assert_eq!(m.wire_size(), wire.len());
        assert_ne!(m.to_wire(), mqp_xml::serialize(&m.to_xml()));
        assert_eq!(Mqp::from_wire(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn non_canonical_input_still_parses_and_reserializes_canonically() {
        // Pretty-ish spacing knocks the input off the canonical
        // grammar; the lenient fallback must still produce an envelope
        // whose wire form matches the tree serialization.
        let m = Mqp::new(Plan::data([]));
        let wire = m.to_wire();
        let spaced = wire.replace("<provenance/>", "<provenance></provenance>");
        assert_ne!(spaced, wire);
        let back = Mqp::from_wire(&spaced).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_wire(), wire);
    }
}
