//! The policy manager (Figure 2): decides which locally-evaluable
//! sub-plans to reduce, and which `Or` alternative to commit.

use mqp_algebra::plan::{OrAlt, Plan};
use mqp_catalog::Preference;
use mqp_engine::Estimate;

/// Per-server processing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Completeness/currency/latency preference for `Or` commitment
    /// (§4.3's "binary preference").
    pub preference: Preference,
    /// Deferment threshold (§5.1): decline to evaluate a sub-plan whose
    /// estimated result exceeds this many bytes ("S may decline to
    /// evaluate B at this point, because of the size of res(B)") —
    /// another server may later hold enough of the plan to shrink the
    /// result. Reductions that complete the plan are never deferred.
    pub defer_bytes: f64,
    /// Maximum staleness (minutes) the query issuer accepts; `Or`
    /// alternatives above the bound are never chosen.
    pub max_staleness: Option<u32>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            preference: Preference::Current,
            defer_bytes: 64.0 * 1024.0,
            max_staleness: None,
        }
    }
}

impl Policy {
    /// A policy preferring current answers (default).
    pub fn current() -> Self {
        Policy::default()
    }

    /// A policy preferring fast answers (fewest sites).
    pub fn fast() -> Self {
        Policy {
            preference: Preference::Fast,
            ..Policy::default()
        }
    }

    /// Caps acceptable staleness; returns `self` for chaining.
    pub fn with_max_staleness(mut self, minutes: u32) -> Self {
        self.max_staleness = Some(minutes);
        self
    }

    /// Sets the deferment threshold; returns `self` for chaining.
    pub fn with_defer_bytes(mut self, bytes: f64) -> Self {
        self.defer_bytes = bytes;
        self
    }

    /// Should this locally evaluable sub-plan be reduced now?
    ///
    /// * always, when reducing completes the whole plan (the result is
    ///   leaving the network anyway);
    /// * always, when the reduction shrinks the shipped plan (the
    ///   estimated result is no larger than what it replaces);
    /// * otherwise only below the [`Policy::defer_bytes`] threshold.
    pub fn should_evaluate(
        &self,
        sub: Estimate,
        replaced_bytes: usize,
        completes_plan: bool,
    ) -> bool {
        if completes_plan || sub.bytes <= replaced_bytes as f64 {
            return true;
        }
        sub.bytes <= self.defer_bytes
    }

    /// Picks the `Or` alternative to commit (index into `alts`).
    ///
    /// Alternatives over the staleness cap are excluded (unless all
    /// are). `Current` minimizes (staleness, fanout); `Fast` minimizes
    /// (fanout, staleness). Fanout is the number of remote leaves in the
    /// alternative — the latency proxy of §4.3.
    ///
    /// **Tie-break (guaranteed):** when two alternatives compare equal
    /// on the preference key, the one with the *lowest index* wins —
    /// the index is the final component of the comparison key, so the
    /// choice is a pure function of `(preference, max_staleness, alts)`
    /// and is identical across the sim, threaded, and TCP drivers. DSL
    /// `choose` actions rely on this stability.
    pub fn choose_or(&self, alts: &[OrAlt]) -> usize {
        let fanout = |p: &Plan| p.urls().len() + p.urns().len();
        let staleness = |a: &OrAlt| a.staleness.unwrap_or(0);
        let eligible: Vec<usize> = match self.max_staleness {
            Some(cap) => {
                let ok: Vec<usize> = (0..alts.len())
                    .filter(|&i| staleness(&alts[i]) <= cap)
                    .collect();
                if ok.is_empty() {
                    (0..alts.len()).collect()
                } else {
                    ok
                }
            }
            None => (0..alts.len()).collect(),
        };
        let key = |i: usize| {
            let a = &alts[i];
            match self.preference {
                Preference::Current => (staleness(a), fanout(&a.plan) as u32, i as u32),
                Preference::Fast => (fanout(&a.plan) as u32, staleness(a), i as u32),
            }
        };
        eligible.into_iter().min_by_key(|&i| key(i)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alts() -> Vec<OrAlt> {
        vec![
            // Current but two sites.
            OrAlt::stale(
                Plan::union([Plan::url("mqp://r/"), Plan::url("mqp://s/")]),
                0,
            ),
            // One site, 30 minutes stale.
            OrAlt::stale(Plan::url("mqp://r/"), 30),
        ]
    }

    #[test]
    fn current_picks_fresh() {
        assert_eq!(Policy::current().choose_or(&alts()), 0);
    }

    #[test]
    fn fast_picks_single_site() {
        assert_eq!(Policy::fast().choose_or(&alts()), 1);
    }

    #[test]
    fn staleness_cap_excludes() {
        // Fast would pick the stale single-site one, but a 10-minute cap
        // rules it out.
        let p = Policy::fast().with_max_staleness(10);
        assert_eq!(p.choose_or(&alts()), 0);
    }

    #[test]
    fn staleness_cap_relaxed_when_nothing_qualifies() {
        let all_stale = vec![
            OrAlt::stale(Plan::url("mqp://r/"), 60),
            OrAlt::stale(Plan::url("mqp://s/"), 45),
        ];
        let p = Policy::current().with_max_staleness(10);
        assert_eq!(p.choose_or(&all_stale), 1); // least stale of the lot
    }

    #[test]
    fn deferment_threshold() {
        let p = Policy::default(); // 64 KiB
        let small = Estimate {
            rows: 10.0,
            bytes: 300.0,
        };
        let huge = Estimate {
            rows: 1e6,
            bytes: 1.28e8,
        };
        assert!(p.should_evaluate(small, 100, false));
        assert!(!p.should_evaluate(huge, 100, false));
        // Completing the plan overrides deferment.
        assert!(p.should_evaluate(huge, 100, true));
        // A reduction that shrinks the plan always proceeds.
        assert!(p.should_evaluate(huge, 2_000_000_000, false));
    }

    #[test]
    fn tie_break_is_lowest_index_for_both_preferences() {
        // Three alternatives with identical staleness and fanout: the
        // key tuples are equal except for the index component, so the
        // first one must win under either preference.
        let tied = vec![
            OrAlt::stale(Plan::url("mqp://a/"), 5),
            OrAlt::stale(Plan::url("mqp://b/"), 5),
            OrAlt::stale(Plan::url("mqp://c/"), 5),
        ];
        assert_eq!(Policy::current().choose_or(&tied), 0);
        assert_eq!(Policy::fast().choose_or(&tied), 0);

        // Tie on the primary key only: Current breaks the staleness tie
        // on fanout, then index; Fast breaks the fanout tie on
        // staleness, then index.
        let partial = vec![
            OrAlt::stale(
                Plan::union([Plan::url("mqp://a/"), Plan::url("mqp://b/")]),
                5,
            ),
            OrAlt::stale(Plan::url("mqp://c/"), 5),
            OrAlt::stale(Plan::url("mqp://d/"), 5),
        ];
        // Same staleness everywhere; alternatives 1 and 2 tie on fanout
        // and staleness — index picks 1.
        assert_eq!(Policy::current().choose_or(&partial), 1);
        assert_eq!(Policy::fast().choose_or(&partial), 1);
    }

    #[test]
    fn choose_or_is_deterministic_across_orderings() {
        // Reversing the list must move the winner with it: the choice
        // depends only on the contents, never on iteration artifacts.
        let a = OrAlt::stale(Plan::url("mqp://one/"), 10);
        let b = OrAlt::stale(
            Plan::union([Plan::url("mqp://two/"), Plan::url("mqp://three/")]),
            0,
        );
        let fwd = vec![a.clone(), b.clone()];
        let rev = vec![b, a];
        let p = Policy::fast();
        assert_eq!(fwd[p.choose_or(&fwd)].plan, rev[p.choose_or(&rev)].plan);
        let p = Policy::current();
        assert_eq!(fwd[p.choose_or(&fwd)].plan, rev[p.choose_or(&rev)].plan);
    }

    #[test]
    fn unknown_staleness_treated_as_current() {
        let alts = vec![
            OrAlt::new(Plan::url("mqp://a/")),
            OrAlt::stale(Plan::url("mqp://b/"), 5),
        ];
        assert_eq!(Policy::current().choose_or(&alts), 0);
    }
}
