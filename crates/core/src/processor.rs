//! The Figure-2 processing loop: parse → resolve URNs → rewrite →
//! find locally-evaluable sub-plans → policy → evaluate → substitute →
//! route onward.

use std::cell::RefCell;

use mqp_algebra::codec::wire_size;
use mqp_algebra::plan::{NodePath, Plan, UrlRef, UrnRef};
use mqp_catalog::ServerId;
use mqp_engine::{compile_cached, estimate, CompileCache, Resolver};
use mqp_namespace::{InterestArea, Urn};
use mqp_xml::Batch;

use crate::mqp::Mqp;
use crate::policy::Policy;
use crate::provenance::{Action, VisitRecord};
use crate::rewrite;
use crate::rules::{RuleCtx, RuleSet};

/// What the processor needs from its host peer. `mqp-peer` implements
/// this against the local store, catalog, and network identity.
pub trait ServerContext {
    /// This server's identity.
    fn id(&self) -> ServerId;

    /// Current simulated time (µs), stamped into provenance.
    fn now(&self) -> u64 {
        0
    }

    /// Local items behind a URL, if that URL points at data this server
    /// holds (its own address, or content it replicates). Returned as a
    /// shared [`Batch`]: the store *lends* item handles, it never
    /// copies collections.
    fn local_url_data(&self, url: &UrlRef) -> Option<Batch>;

    /// Binds a URN to a replacement sub-plan using the local catalog
    /// (URN → URLs / `Or` alternatives, §3.4/§4.2). Returns the
    /// replacement, a human-readable detail for provenance, and the
    /// staleness bound of the binding information.
    fn bind_urn(&self, urn: &UrnRef) -> Option<(Plan, String, u32)>;

    /// Picks the next server for a plan this server cannot finish
    /// (§3.4), avoiding `visited` (loop prevention).
    fn route(&self, plan: &Plan, visited: &[ServerId]) -> Option<ServerId>;
}

/// Result of one server's processing step.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The plan reduced to constant data; ship `items` to `target`.
    Complete {
        /// The display target, if the plan carried one.
        target: Option<String>,
        /// The final result items, still sharing the evaluation's item
        /// handles (they materialize only at the wire).
        items: Batch,
    },
    /// The plan still needs other servers; forward the MQP to `to`.
    Forward {
        /// Next hop.
        to: ServerId,
    },
    /// No progress is possible: unresolvable names and no route.
    Stuck {
        /// Why.
        reason: String,
    },
}

/// The mutant query processor: one instance per server, parameterized by
/// a [`Policy`].
#[derive(Debug, Clone, Default)]
pub struct Processor {
    /// The policy manager's knobs.
    pub policy: Policy,
    /// Hot-reloadable rule overrides (the `.mqpp` DSL target). Empty by
    /// default, in which case every decision is exactly [`Policy`]'s —
    /// the golden-trace invariant.
    rules: RuleSet,
    /// Per-peer compile cache: predicates of queries this server has
    /// seen (across hops, retries, and repeated workload shapes) skip
    /// re-compilation. Interior-mutable because processing borrows the
    /// processor shared.
    compile_cache: RefCell<CompileCache>,
}

/// Adapts a [`ServerContext`] to the engine's [`Resolver`]: URLs come
/// from local data; URNs are never resolved directly (they must be
/// bound to URLs first, as in the paper's pipeline).
struct CtxResolver<'a, C: ServerContext + ?Sized>(&'a C);

impl<C: ServerContext + ?Sized> Resolver for CtxResolver<'_, C> {
    fn resolve_url(&self, url: &UrlRef) -> Option<Batch> {
        self.0.local_url_data(url)
    }

    fn resolve_urn(&self, _urn: &UrnRef) -> Option<Batch> {
        None
    }
}

impl Processor {
    /// Creates a processor with the given policy and no rule overrides.
    pub fn new(policy: Policy) -> Self {
        Processor {
            policy,
            rules: RuleSet::default(),
            compile_cache: RefCell::new(CompileCache::new()),
        }
    }

    /// Installs (or clears, with an empty set) the rule overrides. This
    /// is the hot-reload entry point: it can be called between
    /// processing steps while queries are in flight — the next
    /// [`Processor::process`] call sees the new rules, and nothing else
    /// about the processor (policy, compile cache) changes.
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// The currently installed rule overrides.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The facts the rule engine gets to see for this envelope, captured
    /// as the plan arrived at this peer: the union of its unbound URN
    /// interest areas, the maximum staleness tag among its Or
    /// alternatives, and this peer's id. Bytes are filled in per
    /// reduction candidate.
    fn rule_ctx(&self, mqp: &Mqp, ctx: &impl ServerContext) -> RuleCtx {
        if self.rules.is_empty() {
            return RuleCtx::default();
        }
        let mut area: Option<InterestArea> = None;
        for u in mqp.plan().urns() {
            if let Urn::InterestArea(a) = &u.urn {
                area = Some(match area {
                    Some(acc) => acc.union(a),
                    None => a.clone(),
                });
            }
        }
        let mut staleness: Option<u32> = None;
        mqp.plan().walk(&mut |p| {
            if let Plan::Or(alts) = p {
                for alt in alts {
                    if let Some(s) = alt.staleness {
                        staleness = Some(staleness.map_or(s, |x| x.max(s)));
                    }
                }
            }
        });
        RuleCtx {
            area,
            staleness,
            bytes: None,
            role: ctx.id().to_string(),
            trust: None,
        }
    }

    /// Processes an MQP at this server, mutating it in place, and says
    /// what to do next. Implements the full Figure-2 pipeline.
    pub fn process(&self, mqp: &mut Mqp, ctx: &impl ServerContext) -> Outcome {
        let me = ctx.id();
        let now = ctx.now();
        let mut acted = false;

        // Rule facts are captured once, as the envelope arrived here
        // (before binding rewrites the areas away). With no rules
        // loaded this is free and every decision below is exactly the
        // base policy's.
        let rctx = self.rule_ctx(mqp, ctx);

        // 1. Bind URNs the local catalog can resolve (§3.4).
        acted |= self.bind_urns(mqp, ctx, now) > 0;

        // 2. Cheap normalizations: select pushdown + consolidation.
        //    (Untracked access + explicit invalidation so a no-op pass
        //    keeps the cached wire fragment — the splice-only hop.
        //    Invalidation keys on `changed`, not the count: the
        //    consolidation can reposition a data leaf while
        //    simplifying zero nodes away.)
        let (normalized, plan_changed) = rewrite::normalize_tracked(mqp.plan_untracked_mut());
        if plan_changed {
            mqp.invalidate_plan_cache();
        }
        acted |= normalized > 0;

        // 3. Commit Or nodes whose chosen alternative is locally
        //    evaluable (A | B → A, §4.2).
        acted |= self.commit_ready_ors(mqp, ctx, now, &rctx) > 0;

        // 4. Absorption where profitable (§2).
        let absorbed = rewrite::absorb(mqp.plan_untracked_mut(), &|p| {
            self.locally_evaluable(p, ctx)
        });
        if absorbed > 0 {
            mqp.invalidate_plan_cache();
            acted = true;
            mqp.record(VisitRecord {
                server: me.clone(),
                action: Action::Rewrote,
                detail: format!("absorption x{absorbed}"),
                at: now,
                staleness: 0,
            });
        }

        // 5. Reduce locally evaluable sub-plans the policy approves.
        acted |= self.reduce(mqp, ctx, now, &rctx) > 0;

        // 6. Done? The final items keep sharing the plan's handles.
        if mqp.plan().is_fully_evaluated() {
            let target = mqp.plan().target().map(str::to_owned);
            let items = match mqp.plan() {
                Plan::Display { input, .. } => input.as_data().cloned().unwrap_or_default(),
                plan => plan.as_data().cloned().unwrap_or_default(),
            };
            return Outcome::Complete { target, items };
        }

        // 7. Route onward. §5.2 transfer policy: disallowed servers are
        //    treated as already-visited so routing skips over them. A
        //    `route via` rule override is tried first, subject to the
        //    same visited/allowed discipline, then normal routing.
        let mut visited = mqp.visited();
        let mut rule_route = self
            .rules
            .decide(&self.policy, &rctx)
            .route
            .filter(|next| *next != me && !visited.contains(next));
        let route = loop {
            let candidate = match rule_route.take() {
                Some(next) => Some(next),
                None => ctx.route(mqp.plan(), &visited),
            };
            match candidate {
                Some(next) if !mqp.constraints().server_allowed(&next) => {
                    visited.push(next);
                }
                other => break other,
            }
        };
        match route {
            Some(next) => {
                if !acted {
                    mqp.record(VisitRecord {
                        server: me,
                        action: Action::Forwarded,
                        detail: format!("to {next}"),
                        at: now,
                        staleness: 0,
                    });
                }
                Outcome::Forward { to: next }
            }
            None => Outcome::Stuck {
                reason: format!(
                    "no route from {me}: {} unresolved URN(s), {} remote URL(s)",
                    mqp.plan().urns().len(),
                    count_remote_urls(mqp.plan(), ctx),
                ),
            },
        }
    }

    /// Step 1: URN binding. Returns the number of URNs bound.
    fn bind_urns(&self, mqp: &mut Mqp, ctx: &impl ServerContext, now: u64) -> usize {
        let me = ctx.id();
        let mut bound = 0;
        loop {
            let urn_paths = mqp.plan().find_all(&|p| matches!(p, Plan::Urn(_)));
            let mut progressed = false;
            let unbound: Vec<String> = mqp
                .plan()
                .urns()
                .iter()
                .map(|u| u.urn.to_string())
                .collect();
            for path in urn_paths {
                let Some(Plan::Urn(u)) = mqp.plan().get(&path) else {
                    continue;
                };
                let urn_str = u.urn.to_string();
                // §5.2 ordering policy: some bindings must wait.
                if !mqp.constraints().may_bind(&urn_str, &unbound) {
                    continue;
                }
                if let Some((replacement, detail, staleness)) = ctx.bind_urn(u) {
                    mqp.plan_mut()
                        .replace(&path, replacement)
                        .expect("path from find_all is valid");
                    mqp.record(VisitRecord {
                        server: me.clone(),
                        action: Action::Bound,
                        detail: format!("{urn_str} -> {detail}"),
                        at: now,
                        staleness,
                    });
                    bound += 1;
                    progressed = true;
                    break; // paths shifted; re-find
                }
            }
            if !progressed {
                return bound;
            }
        }
    }

    /// Step 3: commit `Or` nodes whose policy-chosen alternative is
    /// locally evaluable. Returns how many were committed. Rules may
    /// override the effective policy, and a `choose` action overrides
    /// the Or-commitment preference specifically.
    fn commit_ready_ors(
        &self,
        mqp: &mut Mqp,
        ctx: &impl ServerContext,
        now: u64,
        rctx: &RuleCtx,
    ) -> usize {
        let me = ctx.id();
        let decision = self.rules.decide(&self.policy, rctx);
        let mut or_policy = decision.policy;
        if let Some(p) = decision.or_preference {
            or_policy.preference = p;
        }
        let mut committed = 0;
        loop {
            let or_paths = mqp.plan().find_all(&|p| matches!(p, Plan::Or(_)));
            let mut progressed = false;
            for path in or_paths {
                let Some(Plan::Or(alts)) = mqp.plan().get(&path) else {
                    continue;
                };
                let choice = or_policy.choose_or(alts);
                let chosen = &alts[choice];
                if !self.locally_evaluable(&chosen.plan, ctx) {
                    continue;
                }
                let staleness = chosen.staleness.unwrap_or(0);
                let replacement = chosen.plan.clone();
                mqp.plan_mut()
                    .replace(&path, replacement)
                    .expect("path from find_all is valid");
                mqp.record(VisitRecord {
                    server: me.clone(),
                    action: Action::Rewrote,
                    detail: format!("committed or@{path} to alternative {choice}"),
                    at: now,
                    staleness,
                });
                committed += 1;
                progressed = true;
                break;
            }
            if !progressed {
                return committed;
            }
        }
    }

    /// Step 5: reduce maximal locally-evaluable sub-plans (§2). Returns
    /// how many sub-plans were reduced. Rules see each candidate's byte
    /// estimate and may force evaluation or deferment; a reduction that
    /// completes the plan is never deferred (it must leave the network).
    fn reduce(&self, mqp: &mut Mqp, ctx: &impl ServerContext, now: u64, rctx: &RuleCtx) -> usize {
        let me = ctx.id();
        let resolver = CtxResolver(ctx);
        let mut reduced = 0;
        loop {
            let candidates = self.maximal_evaluable(mqp.plan(), ctx);
            let mut progressed = false;
            for path in candidates {
                let Some(sub) = mqp.plan().get(&path) else {
                    continue;
                };
                // A bare Data leaf is already reduced.
                if matches!(sub, Plan::Data { .. }) {
                    continue;
                }
                let completes = self.reduction_completes_plan(mqp.plan(), &path);
                let sub_est = local_aware_estimate(sub, ctx);
                let replaced = wire_size(sub);
                let decision = self
                    .rules
                    .decide(&self.policy, &rctx.with_bytes(sub_est.bytes));
                let evaluate = completes
                    || match decision.force {
                        Some(force_eval) => force_eval,
                        None => decision
                            .policy
                            .should_evaluate(sub_est, replaced, completes),
                    };
                if !evaluate {
                    // Deferment (§5.1): annotate instead of evaluating.
                    self.annotate_deferred(mqp, &path, ctx, now);
                    continue;
                }
                let evaluated =
                    compile_cached(sub, &mut self.compile_cache.borrow_mut()).eval(&resolver);
                match evaluated {
                    Ok(items) => {
                        // Name every source the reduction consumed so
                        // provenance audits (§5.1) can account for
                        // them. Built only now that the record will
                        // actually be written — a failed eval never
                        // pays for the formatting.
                        let mut sources: Vec<String> =
                            sub.urls().iter().map(|u| u.href.clone()).collect();
                        sources.extend(sub.urns().iter().map(|u| u.urn.to_string()));
                        let detail = if sources.is_empty() {
                            format!("reduced {} at {path}", sub.op_name())
                        } else {
                            format!(
                                "reduced {} at {path} over {}",
                                sub.op_name(),
                                sources.join(" ")
                            )
                        };
                        mqp.plan_mut()
                            .replace(&path, Plan::data_shared(items))
                            .expect("path from maximal_evaluable is valid");
                        mqp.record(VisitRecord {
                            server: me.clone(),
                            action: Action::Evaluated,
                            detail,
                            at: now,
                            staleness: 0,
                        });
                        reduced += 1;
                        progressed = true;
                        break;
                    }
                    Err(_) => continue, // raced local-data assumption; skip
                }
            }
            if !progressed {
                return reduced;
            }
        }
    }

    /// True when `plan` can be evaluated entirely at this server: all
    /// leaves are data or local URLs, and it contains no uncommitted
    /// `Or` and no `Display`.
    fn locally_evaluable(&self, plan: &Plan, ctx: &impl ServerContext) -> bool {
        match plan {
            Plan::Data { .. } => true,
            Plan::Url(u) => ctx.local_url_data(u).is_some(),
            Plan::Urn(_) | Plan::Or(_) | Plan::Display { .. } => false,
            _ => plan
                .children()
                .iter()
                .all(|c| self.locally_evaluable(c, ctx)),
        }
    }

    /// Paths of maximal locally-evaluable sub-plans (never descending
    /// into an evaluable node).
    fn maximal_evaluable(&self, plan: &Plan, ctx: &impl ServerContext) -> Vec<NodePath> {
        let mut out = Vec::new();
        self.collect_maximal(plan, ctx, &mut Vec::new(), &mut out);
        out
    }

    fn collect_maximal(
        &self,
        plan: &Plan,
        ctx: &impl ServerContext,
        prefix: &mut Vec<usize>,
        out: &mut Vec<NodePath>,
    ) {
        if self.locally_evaluable(plan, ctx) {
            out.push(NodePath(prefix.clone()));
            return;
        }
        for (i, c) in plan.children().into_iter().enumerate() {
            prefix.push(i);
            self.collect_maximal(c, ctx, prefix, out);
            prefix.pop();
        }
    }

    /// Would reducing the sub-plan at `path` make the whole plan fully
    /// evaluated? True when every node outside the sub-plan is just the
    /// `Display` wrapper above it.
    fn reduction_completes_plan(&self, plan: &Plan, path: &NodePath) -> bool {
        matches!(
            (plan, path.0.as_slice()),
            (_, []) | (Plan::Display { .. }, [0])
        )
    }

    /// §5.1 deferment: annotate the deferred sub-plan's local URL leaves
    /// with their actual cardinalities so later servers can plan better.
    fn annotate_deferred(
        &self,
        mqp: &mut Mqp,
        path: &NodePath,
        ctx: &impl ServerContext,
        now: u64,
    ) {
        let Some(sub) = mqp.plan().get(path) else {
            return;
        };
        // Collect (relative url-leaf paths, cardinalities).
        let url_paths = sub.find_all(&|p| matches!(p, Plan::Url(_)));
        let mut annotated = 0;
        let mut updates: Vec<(NodePath, u64)> = Vec::new();
        for up in url_paths {
            if let Some(Plan::Url(u)) = sub.get(&up) {
                if u.meta.cardinality().is_none() {
                    if let Some(items) = ctx.local_url_data(u) {
                        let mut abs = path.clone();
                        abs.0.extend(up.0.iter().copied());
                        updates.push((abs, items.len() as u64));
                    }
                }
            }
        }
        for (abs, card) in updates {
            if let Some(Plan::Url(u)) = mqp.plan().get(&abs) {
                let mut u2 = u.clone();
                u2.meta.set_cardinality(card);
                let _ = mqp.plan_mut().replace(&abs, Plan::Url(u2));
                annotated += 1;
            }
        }
        if annotated > 0 {
            mqp.record(VisitRecord {
                server: ctx.id(),
                action: Action::Rewrote,
                detail: format!("deferred {path}; annotated {annotated} leaf cardinalities"),
                at: now,
                staleness: 0,
            });
        }
    }
}

/// Estimates a sub-plan's result with *actual* local statistics: URL
/// leaves this server holds data for get their true cardinality and byte
/// size before the cost model runs (the Figure-2 optimizer consults the
/// local catalog, not just annotations).
fn local_aware_estimate(sub: &Plan, ctx: &impl ServerContext) -> mqp_engine::Estimate {
    let mut annotated = sub.clone();
    let url_paths = annotated.find_all(&|p| matches!(p, Plan::Url(_)));
    for up in url_paths {
        if let Some(Plan::Url(u)) = annotated.get(&up) {
            if let Some(items) = ctx.local_url_data(u) {
                let mut u2 = u.clone();
                u2.meta.set_cardinality(items.len() as u64);
                let bytes: usize = items.iter().map(|i| i.serialized_len()).sum();
                u2.meta.set("bytes", bytes.to_string());
                let _ = annotated.replace(&up, Plan::Url(u2));
            }
        }
    }
    estimate(&annotated)
}

fn count_remote_urls(plan: &Plan, ctx: &impl ServerContext) -> usize {
    plan.urls()
        .iter()
        .filter(|u| ctx.local_url_data(u).is_none())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::JoinCond;
    use mqp_xml::parse;
    use std::collections::HashMap;

    /// A toy server context: local collections keyed by URL, URN
    /// bindings, and a static routing table.
    struct TestCtx {
        id: ServerId,
        local: HashMap<String, Batch>,
        bindings: HashMap<String, Plan>,
        next: Option<ServerId>,
    }

    impl TestCtx {
        fn new(id: &str) -> Self {
            TestCtx {
                id: ServerId::new(id),
                local: HashMap::new(),
                bindings: HashMap::new(),
                next: None,
            }
        }

        fn with_local(mut self, url: &str, xmls: &[&str]) -> Self {
            self.local.insert(
                url.to_owned(),
                xmls.iter().map(|s| parse(s).unwrap()).collect(),
            );
            self
        }

        fn with_binding(mut self, urn: &str, plan: Plan) -> Self {
            self.bindings.insert(urn.to_owned(), plan);
            self
        }

        fn with_next(mut self, id: &str) -> Self {
            self.next = Some(ServerId::new(id));
            self
        }
    }

    impl ServerContext for TestCtx {
        fn id(&self) -> ServerId {
            self.id.clone()
        }

        fn local_url_data(&self, url: &UrlRef) -> Option<Batch> {
            self.local.get(&url.href).cloned()
        }

        fn bind_urn(&self, urn: &UrnRef) -> Option<(Plan, String, u32)> {
            self.bindings
                .get(&urn.urn.to_string())
                .map(|p| (p.clone(), "test binding".to_owned(), 0))
        }

        fn route(&self, _plan: &Plan, visited: &[ServerId]) -> Option<ServerId> {
            self.next.clone().filter(|n| !visited.contains(n))
        }
    }

    fn cds() -> &'static [&'static str] {
        &[
            "<item><title>A</title><price>12</price></item>",
            "<item><title>B</title><price>8</price></item>",
            "<item><title>C</title><price>9.5</price></item>",
        ]
    }

    #[test]
    fn fully_local_query_completes() {
        let ctx = TestCtx::new("s1").with_local("mqp://s1/", cds());
        let plan = Plan::display(
            "client:1",
            Plan::select("price < 10", Plan::url("mqp://s1/")),
        );
        let mut mqp = Mqp::new(plan);
        let out = Processor::default().process(&mut mqp, &ctx);
        match out {
            Outcome::Complete { target, items } => {
                assert_eq!(target.as_deref(), Some("client:1"));
                assert_eq!(items.len(), 2);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        // Provenance shows the reduction.
        assert!(mqp
            .provenance()
            .iter()
            .any(|v| v.action == Action::Evaluated));
    }

    #[test]
    fn urn_binds_then_forwards_when_remote() {
        // Figure 4(a): the URN resolves to a union of two seller URLs,
        // the select is pushed through, and the plan goes to a seller.
        let binding = Plan::union([Plan::url("mqp://seller1/"), Plan::url("mqp://seller2/")]);
        let ctx = TestCtx::new("meta")
            .with_binding("urn:ForSale:Portland-CDs", binding)
            .with_next("seller1");
        let plan = Plan::display(
            "client:1",
            Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
        );
        let mut mqp = Mqp::new(plan);
        let out = Processor::default().process(&mut mqp, &ctx);
        assert_eq!(
            out,
            Outcome::Forward {
                to: ServerId::new("seller1")
            }
        );
        // Select was pushed through the union (Figure 4(a)).
        match mqp.plan() {
            Plan::Display { input, .. } => match input.as_ref() {
                Plan::Union(parts) => {
                    assert!(parts.iter().all(|p| matches!(p, Plan::Select { .. })));
                }
                other => panic!("expected union, got {other}"),
            },
            other => panic!("expected display, got {other}"),
        }
        assert!(mqp.provenance().iter().any(|v| v.action == Action::Bound));
    }

    #[test]
    fn partial_reduction_at_seller_then_forward() {
        // Figure 4(b): seller1 reduces its own branch, forwards the rest.
        let plan = Plan::display(
            "client:1",
            Plan::union([
                Plan::select("price < 10", Plan::url("mqp://seller1/")),
                Plan::select("price < 10", Plan::url("mqp://seller2/")),
            ]),
        );
        let ctx = TestCtx::new("seller1")
            .with_local("mqp://seller1/", cds())
            .with_next("seller2");
        let mut mqp = Mqp::new(plan);
        let out = Processor::default().process(&mut mqp, &ctx);
        assert_eq!(
            out,
            Outcome::Forward {
                to: ServerId::new("seller2")
            }
        );
        // One branch reduced to data.
        match mqp.plan() {
            Plan::Display { input, .. } => match input.as_ref() {
                Plan::Union(parts) => {
                    assert!(parts.iter().any(|p| matches!(p, Plan::Data { .. })));
                    assert!(parts.iter().any(|p| matches!(p, Plan::Select { .. })));
                }
                other => panic!("expected union, got {other}"),
            },
            other => panic!("expected display, got {other}"),
        }
    }

    #[test]
    fn second_seller_completes_union() {
        // Continue from a partially reduced plan at seller2.
        let reduced = Plan::data([parse("<item><price>8</price></item>").unwrap()]);
        let plan = Plan::display(
            "client:1",
            Plan::union([
                reduced,
                Plan::select("price < 10", Plan::url("mqp://seller2/")),
            ]),
        );
        let ctx = TestCtx::new("seller2").with_local("mqp://seller2/", cds());
        let mut mqp = Mqp::new(plan);
        match Processor::default().process(&mut mqp, &ctx) {
            Outcome::Complete { items, .. } => assert_eq!(items.len(), 1 + 2),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn or_committed_when_local() {
        let ctx = TestCtx::new("r").with_local("mqp://r/", cds());
        let plan = Plan::display(
            "client:1",
            Plan::or([Plan::url("mqp://r/"), Plan::url("mqp://s/")]),
        );
        let mut mqp = Mqp::new(plan);
        match Processor::default().process(&mut mqp, &ctx) {
            Outcome::Complete { items, .. } => assert_eq!(items.len(), 3),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn or_left_uncommitted_when_remote() {
        let ctx = TestCtx::new("m").with_next("r");
        let plan = Plan::display(
            "client:1",
            Plan::or([Plan::url("mqp://r/"), Plan::url("mqp://s/")]),
        );
        let mut mqp = Mqp::new(plan);
        assert!(matches!(
            Processor::default().process(&mut mqp, &ctx),
            Outcome::Forward { .. }
        ));
        assert_eq!(mqp.plan().find_all(&|p| matches!(p, Plan::Or(_))).len(), 1);
    }

    #[test]
    fn stuck_without_route() {
        let ctx = TestCtx::new("m"); // no bindings, no next
        let plan = Plan::display("client:1", Plan::urn("urn:ForSale:Portland-CDs"));
        let mut mqp = Mqp::new(plan);
        match Processor::default().process(&mut mqp, &ctx) {
            Outcome::Stuck { reason } => assert!(reason.contains("unresolved"), "{reason}"),
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn deferment_annotates_cardinality() {
        // A local collection so big the policy declines to ship its
        // reduction (defer_factor small).
        let big: Vec<String> = (0..50)
            .map(|i| format!("<item><k>{i}</k><pad>xxxxxxxxxxxxxxxxxxxxxxxx</pad></item>"))
            .collect();
        let big_refs: Vec<&str> = big.iter().map(String::as_str).collect();
        let ctx = TestCtx::new("s")
            .with_local("mqp://s/", &big_refs)
            .with_next("t");
        // Join with a remote side: reducing the local scan would inline
        // all 50 items; policy defers at factor 0 (never evaluate unless
        // completing).
        let plan = Plan::display(
            "client:1",
            Plan::join(
                JoinCond::on("k", "k"),
                Plan::url("mqp://s/"),
                Plan::url("mqp://t/"),
            ),
        );
        let processor = Processor::new(Policy::default().with_defer_bytes(0.0));
        let mut mqp = Mqp::new(plan);
        let out = processor.process(&mut mqp, &ctx);
        assert!(matches!(out, Outcome::Forward { .. }));
        // The local URL leaf now carries its true cardinality (§5.1).
        let urls = mqp.plan().urls();
        let local = urls.iter().find(|u| u.href == "mqp://s/").unwrap();
        assert_eq!(local.meta.cardinality(), Some(50));
    }

    #[test]
    fn forwarded_envelope_reserializes_rewrites_that_report_zero() {
        // Consolidation repositions a lone data leaf inside a union
        // while counting zero simplifications; the spliced wire must
        // still reflect the post-rewrite plan (stale-fragment
        // regression: invalidation keys on *changed*, not the count).
        let ctx = TestCtx::new("relay").with_next("next");
        let plan = Plan::display(
            "client#1",
            Plan::union([
                Plan::url("mqp://other/"),
                Plan::data([parse("<i><k>1</k></i>").unwrap()]),
            ]),
        );
        let mut mqp = Mqp::from_wire(&Mqp::new(plan).to_wire()).unwrap();
        let out = Processor::default().process(&mut mqp, &ctx);
        assert!(matches!(out, Outcome::Forward { .. }));
        assert_eq!(mqp.to_wire(), mqp_xml::serialize(&mqp.to_xml()));
        // The data leaf moved to the front of the union on the wire too.
        assert!(mqp.to_wire().contains("<union><data"), "{}", mqp.to_wire());
    }

    #[test]
    fn loop_prevention_via_visited() {
        let ctx = TestCtx::new("a").with_next("b");
        let plan = Plan::display("c:1", Plan::url("mqp://elsewhere/"));
        let mut mqp = Mqp::new(plan);
        // Pretend we already visited b.
        mqp.record(VisitRecord {
            server: ServerId::new("b"),
            action: Action::Forwarded,
            detail: String::new(),
            at: 0,
            staleness: 0,
        });
        assert!(matches!(
            Processor::default().process(&mut mqp, &ctx),
            Outcome::Stuck { .. }
        ));
    }

    #[test]
    fn join_across_two_local_collections() {
        let ctx = TestCtx::new("s")
            .with_local(
                "mqp://s/songs",
                &[
                    "<song><album>A1</album></song>",
                    "<song><album>A2</album></song>",
                ],
            )
            .with_local(
                "mqp://s/cds",
                &["<item><title>A1</title><price>5</price></item>"],
            );
        let plan = Plan::display(
            "c:1",
            Plan::join(
                JoinCond::on("album", "title"),
                Plan::url("mqp://s/songs"),
                Plan::url("mqp://s/cds"),
            ),
        );
        let mut mqp = Mqp::new(plan);
        match Processor::default().process(&mut mqp, &ctx) {
            Outcome::Complete { items, .. } => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].name(), "tuple");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    use crate::rules::{Cond, Rule, RuleAction, RuleSet};
    use mqp_algebra::plan::OrAlt;
    use mqp_catalog::Preference;

    fn with_rules(rules: RuleSet) -> Processor {
        let mut p = Processor::default();
        p.set_rules(rules);
        p
    }

    #[test]
    fn choose_rule_overrides_or_preference_only() {
        // Both alternatives are local; the default Current policy picks
        // the fresh two-site union, a `choose fast` rule flips to the
        // stale single-site one without touching the base policy.
        let ctx = TestCtx::new("s").with_local("mqp://s/a", cds()).with_local(
            "mqp://s/b",
            &["<item><title>Z</title><price>1</price></item>"],
        );
        let plan = |_| {
            Plan::display(
                "c:1",
                Plan::Or(vec![
                    OrAlt::new(Plan::union([
                        Plan::url("mqp://s/a"),
                        Plan::url("mqp://s/b"),
                    ])),
                    OrAlt::stale(Plan::url("mqp://s/b"), 30),
                ]),
            )
        };
        let base = Processor::default();
        let mut mqp = Mqp::new(plan(()));
        let Outcome::Complete { items, .. } = base.process(&mut mqp, &ctx) else {
            panic!("expected Complete");
        };
        assert_eq!(items.len(), 4); // union of both collections

        let fast = with_rules(RuleSet::new(vec![Rule::new(
            vec![Cond::Always],
            vec![RuleAction::Choose(Preference::Fast)],
        )]));
        let mut mqp = Mqp::new(plan(()));
        let Outcome::Complete { items, .. } = fast.process(&mut mqp, &ctx) else {
            panic!("expected Complete");
        };
        assert_eq!(items.len(), 1); // single-site stale alternative
        assert_eq!(fast.policy.preference, Preference::Current);
    }

    #[test]
    fn force_defer_rule_defers_but_never_blocks_completion() {
        // A tiny reduction the base policy would evaluate: forcing
        // deferment leaves it unreduced (the plan forwards), except when
        // the reduction would complete the plan.
        let rules = RuleSet::new(vec![Rule::new(
            vec![Cond::RoleIs("s".to_string())],
            vec![RuleAction::ForceDefer],
        )]);
        let p = with_rules(rules);

        // Completing reduction: still evaluates.
        let ctx = TestCtx::new("s").with_local("mqp://s/", cds());
        let mut mqp = Mqp::new(Plan::display(
            "c:1",
            Plan::select("price < 10", Plan::url("mqp://s/")),
        ));
        assert!(matches!(
            p.process(&mut mqp, &ctx),
            Outcome::Complete { .. }
        ));

        // Non-completing reduction (a remote leaf keeps the plan
        // travelling): the local select is deferred, not evaluated.
        let ctx = TestCtx::new("s")
            .with_local("mqp://s/", cds())
            .with_next("elsewhere");
        let mut mqp = Mqp::new(Plan::display(
            "c:1",
            Plan::union([
                Plan::select("price < 10", Plan::url("mqp://s/")),
                Plan::url("mqp://far/"),
            ]),
        ));
        assert!(matches!(p.process(&mut mqp, &ctx), Outcome::Forward { .. }));
        assert!(!mqp
            .provenance()
            .iter()
            .any(|v| v.action == Action::Evaluated));

        // The same plan under no rules evaluates the local branch.
        let mut mqp = Mqp::new(Plan::display(
            "c:1",
            Plan::union([
                Plan::select("price < 10", Plan::url("mqp://s/")),
                Plan::url("mqp://far/"),
            ]),
        ));
        assert!(matches!(
            Processor::default().process(&mut mqp, &ctx),
            Outcome::Forward { .. }
        ));
        assert!(mqp
            .provenance()
            .iter()
            .any(|v| v.action == Action::Evaluated));
    }

    #[test]
    fn route_via_rule_overrides_next_hop() {
        let ctx = TestCtx::new("meta").with_next("seller1");
        let plan = Plan::display("c:1", Plan::url("mqp://far/"));

        let mut mqp = Mqp::new(plan.clone());
        assert_eq!(
            Processor::default().process(&mut mqp, &ctx),
            Outcome::Forward {
                to: ServerId::new("seller1")
            }
        );

        let p = with_rules(RuleSet::new(vec![Rule::new(
            vec![Cond::Always],
            vec![RuleAction::RouteVia(ServerId::new("idx-override"))],
        )]));
        let mut mqp = Mqp::new(plan.clone());
        assert_eq!(
            p.process(&mut mqp, &ctx),
            Outcome::Forward {
                to: ServerId::new("idx-override")
            }
        );

        // An already-visited override target falls back to normal
        // routing instead of looping.
        let mut mqp = Mqp::new(plan);
        mqp.record(VisitRecord {
            server: ServerId::new("idx-override"),
            action: Action::Forwarded,
            detail: String::new(),
            at: 0,
            staleness: 0,
        });
        assert_eq!(
            p.process(&mut mqp, &ctx),
            Outcome::Forward {
                to: ServerId::new("seller1")
            }
        );
    }
}
