//! Provenance: the visit history an MQP carries (paper §5.1,
//! "Maintaining provenance"), plus spoofing detection and verification
//! queries.

use std::fmt;

use mqp_algebra::plan::Plan;
use mqp_algebra::predicate::AggFunc;
use mqp_catalog::ServerId;
use mqp_xml::Element;

/// What a server did to the MQP while holding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Resolved one or more URNs to URLs/alternatives.
    Bound,
    /// Substituted local data for a URL.
    Resolved,
    /// Reduced one or more sub-plans to constant data.
    Evaluated,
    /// Rewrote the plan without evaluating (pushdown, absorption, …).
    Rewrote,
    /// Merely forwarded the plan.
    Forwarded,
    /// Re-sent the plan after a timeout, possibly to a different
    /// server (the §5.1-visible detour a crashed next-hop forces —
    /// DESIGN.md invariant 7).
    Retried,
    /// Pruned Or-alternatives backed by a quarantined binding
    /// (DESIGN.md §14). Like `Retried`, provenance-visible but never
    /// accounts for a source: a defense-pruned run stays audit-clean,
    /// and a spoofed source cannot hide behind a quarantine.
    Distrusted,
}

impl Action {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Action::Bound => "bound",
            Action::Resolved => "resolved",
            Action::Evaluated => "evaluated",
            Action::Rewrote => "rewrote",
            Action::Forwarded => "forwarded",
            Action::Retried => "retried",
            Action::Distrusted => "distrusted",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Action> {
        Some(match s {
            "bound" => Action::Bound,
            "resolved" => Action::Resolved,
            "evaluated" => Action::Evaluated,
            "rewrote" => Action::Rewrote,
            "forwarded" => Action::Forwarded,
            "retried" => Action::Retried,
            "distrusted" => Action::Distrusted,
            _ => return None,
        })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One provenance entry: who did what, when (simulated µs), and how
/// current their information was (§5.1: "when it did it, and how current
/// the information was").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitRecord {
    /// The server that acted.
    pub server: ServerId,
    /// What it did.
    pub action: Action,
    /// Free-form detail (which URN, which sub-plan, …).
    pub detail: String,
    /// Simulated timestamp (µs).
    pub at: u64,
    /// Staleness bound of the information used, in minutes.
    pub staleness: u32,
}

impl VisitRecord {
    /// Serializes to the `<visit/>` element used inside MQP envelopes.
    pub fn to_xml(&self) -> Element {
        Element::new("visit")
            .attr("server", self.server.as_str())
            .attr("action", self.action.name())
            .attr("detail", &self.detail)
            .attr("at", self.at.to_string())
            .attr("staleness", self.staleness.to_string())
    }

    /// Parses a `<visit/>` element.
    pub fn from_xml(e: &Element) -> Option<VisitRecord> {
        Some(VisitRecord {
            server: ServerId::new(e.get_attr("server")?),
            action: Action::parse(e.get_attr("action")?)?,
            detail: e.get_attr("detail").unwrap_or_default().to_owned(),
            at: e.get_attr("at")?.parse().ok()?,
            staleness: e.get_attr("staleness").unwrap_or("0").parse().ok()?,
        })
    }
}

/// Spoofing analysis (§5.1): sources present in the *original* plan that
/// no visited server claims to have bound or resolved. "If provenance is
/// recorded, the resulting MQP would show that P never visited T (or any
/// other site for B)."
///
/// `Or` nodes are conjoint unions (§4.2): each alternative alone
/// suffices, so the `Or` is accounted for as soon as *one* alternative
/// has every source accounted — visiting the others would be redundant,
/// not evasive. (This is what keeps retry detours audit-clean when a
/// crashed alternative is pruned, DESIGN.md invariant 7.) Only when no
/// alternative is fully accounted are all of them reported.
///
/// Returns the offending source names (URN strings and URL hrefs).
pub fn unaccounted_sources(original: &Plan, visits: &[VisitRecord]) -> Vec<String> {
    let mut missing = Vec::new();
    collect_unaccounted(original, visits, &mut missing);
    missing.sort();
    missing.dedup();
    missing
}

fn source_accounted(src: &str, visits: &[VisitRecord]) -> bool {
    visits.iter().any(|v| {
        matches!(
            v.action,
            Action::Bound | Action::Resolved | Action::Evaluated
        ) && v.detail.contains(src)
    })
}

fn collect_unaccounted(plan: &Plan, visits: &[VisitRecord], out: &mut Vec<String>) {
    match plan {
        Plan::Urn(u) => {
            let s = u.urn.to_string();
            if !source_accounted(&s, visits) {
                out.push(s);
            }
        }
        Plan::Url(u) => {
            if !source_accounted(&u.href, visits) {
                out.push(u.href.clone());
            }
        }
        Plan::Or(alts) => {
            let satisfied = alts.iter().any(|a| {
                let mut m = Vec::new();
                collect_unaccounted(&a.plan, visits, &mut m);
                m.is_empty()
            });
            if !satisfied {
                for a in alts {
                    collect_unaccounted(&a.plan, visits, out);
                }
            }
        }
        _ => {
            for c in plan.children() {
                collect_unaccounted(c, visits, out);
            }
        }
    }
}

/// Builds the verification query of §5.1: `count(sub)` displayed back to
/// `verifier` — sent to the server suspected of having been bypassed, to
/// check whether it really holds no qualifying items.
pub fn verification_query(sub: Plan, verifier: impl Into<String>) -> Plan {
    Plan::display(verifier, Plan::aggregate(AggFunc::Count, None, sub))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(server: &str, action: Action, detail: &str) -> VisitRecord {
        VisitRecord {
            server: ServerId::new(server),
            action,
            detail: detail.to_owned(),
            at: 42,
            staleness: 0,
        }
    }

    #[test]
    fn visit_xml_roundtrip() {
        let v = VisitRecord {
            server: ServerId::new("peer-3"),
            action: Action::Evaluated,
            detail: "reduced select over urn:ForSale:Portland-CDs".to_owned(),
            at: 123456,
            staleness: 30,
        };
        assert_eq!(VisitRecord::from_xml(&v.to_xml()), Some(v));
    }

    #[test]
    fn action_names_roundtrip() {
        for a in [
            Action::Bound,
            Action::Resolved,
            Action::Evaluated,
            Action::Rewrote,
            Action::Forwarded,
            Action::Retried,
            Action::Distrusted,
        ] {
            assert_eq!(Action::parse(a.name()), Some(a));
        }
        assert_eq!(Action::parse("teleported"), None);
    }

    #[test]
    fn spoofed_source_detected() {
        // Original plan unions A (at S) and B (at T). S binds A but
        // spoofs B to empty without visiting T.
        let original = Plan::union([Plan::urn("urn:Data:A"), Plan::urn("urn:Data:B")]);
        let visits = vec![
            visit("S", Action::Bound, "urn:Data:A -> mqp://S/"),
            visit("S", Action::Evaluated, "reduced urn:Data:A"),
            visit("S", Action::Forwarded, "to client"),
        ];
        let missing = unaccounted_sources(&original, &visits);
        assert_eq!(missing, vec!["urn:Data:B".to_owned()]);
    }

    #[test]
    fn honest_processing_has_no_unaccounted_sources() {
        let original = Plan::union([Plan::urn("urn:Data:A"), Plan::urn("urn:Data:B")]);
        let visits = vec![
            visit("S", Action::Bound, "urn:Data:A -> mqp://S/"),
            visit("S", Action::Evaluated, "reduced urn:Data:A"),
            visit("T", Action::Bound, "urn:Data:B -> mqp://T/"),
            visit("T", Action::Evaluated, "reduced urn:Data:B"),
        ];
        assert!(unaccounted_sources(&original, &visits).is_empty());
    }

    #[test]
    fn retry_detours_stay_audit_clean() {
        // Invariant 7 (DESIGN.md §5): a timeout detour adds a Retried
        // record, which is provenance-visible but never accounts for a
        // source — so an honest retried run stays clean, and a spoofed
        // source cannot hide behind a retry.
        let original = Plan::urn("urn:Data:A");
        let honest = vec![
            visit("C", Action::Retried, "timeout waiting on S; rerouting to T"),
            visit("T", Action::Bound, "urn:Data:A -> mqp://T/"),
            visit("T", Action::Evaluated, "reduced urn:Data:A"),
        ];
        assert!(unaccounted_sources(&original, &honest).is_empty());
        let evasive = vec![visit(
            "C",
            Action::Retried,
            "timeout; pretending urn:Data:A handled",
        )];
        assert_eq!(
            unaccounted_sources(&original, &evasive),
            vec!["urn:Data:A".to_owned()]
        );
    }

    #[test]
    fn distrust_prunes_stay_audit_clean() {
        // DESIGN.md §14: pruning a quarantined alternative records
        // Distrusted — visible in the audit trail, but it accounts for
        // nothing. The surviving alternative must still be evaluated
        // honestly, and a spoofed source cannot hide behind the prune.
        let original = Plan::or([Plan::url("mqp://honest/"), Plan::url("mqp://hijack/")]);
        let defended = vec![
            visit(
                "M",
                Action::Distrusted,
                "pruned 1 alternative(s) backed by hijack",
            ),
            visit("honest", Action::Resolved, "mqp://honest/ -> local data"),
            visit("honest", Action::Evaluated, "reduced mqp://honest/"),
        ];
        assert!(unaccounted_sources(&original, &defended).is_empty());
        let evasive = vec![visit(
            "M",
            Action::Distrusted,
            "pruned mqp://honest/ and mqp://hijack/ both",
        )];
        assert_eq!(
            unaccounted_sources(&original, &evasive),
            vec!["mqp://hijack/".to_owned(), "mqp://honest/".to_owned()]
        );
    }

    #[test]
    fn url_sources_checked_too() {
        let original = Plan::union([Plan::url("mqp://T/"), Plan::data([])]);
        let visits = vec![visit("S", Action::Evaluated, "reduced data leaf")];
        assert_eq!(
            unaccounted_sources(&original, &visits),
            vec!["mqp://T/".to_owned()]
        );
    }

    #[test]
    fn or_alternatives_need_only_one_accounted_branch() {
        // §4.2: A | B — evaluating either alternative is honest.
        let original = Plan::or([Plan::url("mqp://R/"), Plan::url("mqp://S/")]);
        let via_s = vec![
            visit("S", Action::Resolved, "mqp://S/ -> local data"),
            visit("S", Action::Evaluated, "reduced mqp://S/"),
        ];
        assert!(unaccounted_sources(&original, &via_s).is_empty());
        // Neither alternative touched: both sources reported.
        let nothing = vec![visit("S", Action::Forwarded, "to client")];
        assert_eq!(
            unaccounted_sources(&original, &nothing),
            vec!["mqp://R/".to_owned(), "mqp://S/".to_owned()]
        );
    }

    #[test]
    fn verification_query_shape() {
        let q = verification_query(
            Plan::select("price < 10", Plan::urn("urn:Data:B")),
            "agency:9020",
        );
        assert_eq!(q.target(), Some("agency:9020"));
        match q {
            Plan::Display { input, .. } => {
                assert!(matches!(
                    *input,
                    Plan::Aggregate {
                        func: AggFunc::Count,
                        ..
                    }
                ));
            }
            _ => panic!("expected display"),
        }
    }
}
