//! Provenance: the visit history an MQP carries (paper §5.1,
//! "Maintaining provenance"), plus spoofing detection and verification
//! queries.

use std::fmt;

use mqp_algebra::plan::Plan;
use mqp_algebra::predicate::AggFunc;
use mqp_catalog::ServerId;
use mqp_xml::Element;

/// What a server did to the MQP while holding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Resolved one or more URNs to URLs/alternatives.
    Bound,
    /// Substituted local data for a URL.
    Resolved,
    /// Reduced one or more sub-plans to constant data.
    Evaluated,
    /// Rewrote the plan without evaluating (pushdown, absorption, …).
    Rewrote,
    /// Merely forwarded the plan.
    Forwarded,
}

impl Action {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Action::Bound => "bound",
            Action::Resolved => "resolved",
            Action::Evaluated => "evaluated",
            Action::Rewrote => "rewrote",
            Action::Forwarded => "forwarded",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Action> {
        Some(match s {
            "bound" => Action::Bound,
            "resolved" => Action::Resolved,
            "evaluated" => Action::Evaluated,
            "rewrote" => Action::Rewrote,
            "forwarded" => Action::Forwarded,
            _ => return None,
        })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One provenance entry: who did what, when (simulated µs), and how
/// current their information was (§5.1: "when it did it, and how current
/// the information was").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitRecord {
    /// The server that acted.
    pub server: ServerId,
    /// What it did.
    pub action: Action,
    /// Free-form detail (which URN, which sub-plan, …).
    pub detail: String,
    /// Simulated timestamp (µs).
    pub at: u64,
    /// Staleness bound of the information used, in minutes.
    pub staleness: u32,
}

impl VisitRecord {
    /// Serializes to the `<visit/>` element used inside MQP envelopes.
    pub fn to_xml(&self) -> Element {
        Element::new("visit")
            .attr("server", self.server.as_str())
            .attr("action", self.action.name())
            .attr("detail", &self.detail)
            .attr("at", self.at.to_string())
            .attr("staleness", self.staleness.to_string())
    }

    /// Parses a `<visit/>` element.
    pub fn from_xml(e: &Element) -> Option<VisitRecord> {
        Some(VisitRecord {
            server: ServerId::new(e.get_attr("server")?),
            action: Action::parse(e.get_attr("action")?)?,
            detail: e.get_attr("detail").unwrap_or_default().to_owned(),
            at: e.get_attr("at")?.parse().ok()?,
            staleness: e.get_attr("staleness").unwrap_or("0").parse().ok()?,
        })
    }
}

/// Spoofing analysis (§5.1): sources present in the *original* plan that
/// no visited server claims to have bound or resolved. "If provenance is
/// recorded, the resulting MQP would show that P never visited T (or any
/// other site for B)."
///
/// Returns the offending source names (URN strings and URL hrefs).
pub fn unaccounted_sources(original: &Plan, visits: &[VisitRecord]) -> Vec<String> {
    let mut sources: Vec<String> = original
        .urns()
        .iter()
        .map(|u| u.urn.to_string())
        .chain(original.urls().iter().map(|u| u.href.clone()))
        .collect();
    sources.sort();
    sources.dedup();
    sources
        .into_iter()
        .filter(|src| {
            !visits.iter().any(|v| {
                matches!(
                    v.action,
                    Action::Bound | Action::Resolved | Action::Evaluated
                ) && v.detail.contains(src.as_str())
            })
        })
        .collect()
}

/// Builds the verification query of §5.1: `count(sub)` displayed back to
/// `verifier` — sent to the server suspected of having been bypassed, to
/// check whether it really holds no qualifying items.
pub fn verification_query(sub: Plan, verifier: impl Into<String>) -> Plan {
    Plan::display(verifier, Plan::aggregate(AggFunc::Count, None, sub))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(server: &str, action: Action, detail: &str) -> VisitRecord {
        VisitRecord {
            server: ServerId::new(server),
            action,
            detail: detail.to_owned(),
            at: 42,
            staleness: 0,
        }
    }

    #[test]
    fn visit_xml_roundtrip() {
        let v = VisitRecord {
            server: ServerId::new("peer-3"),
            action: Action::Evaluated,
            detail: "reduced select over urn:ForSale:Portland-CDs".to_owned(),
            at: 123456,
            staleness: 30,
        };
        assert_eq!(VisitRecord::from_xml(&v.to_xml()), Some(v));
    }

    #[test]
    fn action_names_roundtrip() {
        for a in [
            Action::Bound,
            Action::Resolved,
            Action::Evaluated,
            Action::Rewrote,
            Action::Forwarded,
        ] {
            assert_eq!(Action::parse(a.name()), Some(a));
        }
        assert_eq!(Action::parse("teleported"), None);
    }

    #[test]
    fn spoofed_source_detected() {
        // Original plan unions A (at S) and B (at T). S binds A but
        // spoofs B to empty without visiting T.
        let original = Plan::union([Plan::urn("urn:Data:A"), Plan::urn("urn:Data:B")]);
        let visits = vec![
            visit("S", Action::Bound, "urn:Data:A -> mqp://S/"),
            visit("S", Action::Evaluated, "reduced urn:Data:A"),
            visit("S", Action::Forwarded, "to client"),
        ];
        let missing = unaccounted_sources(&original, &visits);
        assert_eq!(missing, vec!["urn:Data:B".to_owned()]);
    }

    #[test]
    fn honest_processing_has_no_unaccounted_sources() {
        let original = Plan::union([Plan::urn("urn:Data:A"), Plan::urn("urn:Data:B")]);
        let visits = vec![
            visit("S", Action::Bound, "urn:Data:A -> mqp://S/"),
            visit("S", Action::Evaluated, "reduced urn:Data:A"),
            visit("T", Action::Bound, "urn:Data:B -> mqp://T/"),
            visit("T", Action::Evaluated, "reduced urn:Data:B"),
        ];
        assert!(unaccounted_sources(&original, &visits).is_empty());
    }

    #[test]
    fn url_sources_checked_too() {
        let original = Plan::union([Plan::url("mqp://T/"), Plan::data([])]);
        let visits = vec![visit("S", Action::Evaluated, "reduced data leaf")];
        assert_eq!(
            unaccounted_sources(&original, &visits),
            vec!["mqp://T/".to_owned()]
        );
    }

    #[test]
    fn verification_query_shape() {
        let q = verification_query(
            Plan::select("price < 10", Plan::urn("urn:Data:B")),
            "agency:9020",
        );
        assert_eq!(q.target(), Some("agency:9020"));
        match q {
            Plan::Display { input, .. } => {
                assert!(matches!(
                    *input,
                    Plan::Aggregate {
                        func: AggFunc::Count,
                        ..
                    }
                ));
            }
            _ => panic!("expected display"),
        }
    }
}
