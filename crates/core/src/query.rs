//! Query identity and outcome types shared by every MQP host.
//!
//! A query is born when a client submits a plan to a driver (the
//! deterministic simulator's `SimHarness` or the real-thread
//! `ThreadedCluster`, both in `mqp-peer`) and dies when some peer
//! produces a [`QueryOutcome`] for it. Both sides of that lifecycle are
//! host-independent, so the types live here rather than in any driver.

use std::fmt;

use mqp_xml::Batch;

/// Identifies one submitted query. Allocated by the submitting
/// front-end (`SimHarness::submit` / `MqpClient::submit`) and threaded
/// through the envelope's display target (`client#<qid>`), wire-frame
/// headers, and the final [`QueryOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// Wraps a raw id.
    pub fn new(raw: u64) -> Self {
        QueryId(raw)
    }

    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for QueryId {
    fn from(raw: u64) -> Self {
        QueryId(raw)
    }
}

impl From<QueryId> for u64 {
    fn from(qid: QueryId) -> u64 {
        qid.0
    }
}

/// Final outcome of one query, as reported by whichever peer completed
/// (or gave up on) it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Query id (from the submitting front-end).
    pub qid: QueryId,
    /// Result items (empty when stuck), sharing the completing
    /// evaluation's item handles.
    pub items: Batch,
    /// `None` on success; the reason when the query got stuck.
    pub failure: Option<String>,
    /// Completion time minus submission time (µs) — simulated time
    /// under the simulator, wall-clock under the threaded cluster.
    pub latency_us: u64,
    /// MQP hops (server-to-server forwards, including the final result
    /// delivery).
    pub hops: u64,
    /// Total MQP bytes shipped for this query.
    pub mqp_bytes: u64,
    /// Timeout-driven retries (detours) this query needed.
    pub retries: u64,
    /// §5.1 provenance audit of the completed envelope: `Some(true)`
    /// when every original source was bound/resolved/evaluated by some
    /// visited server — retry detours included (invariant 7).
    pub audit_clean: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_roundtrips_and_displays() {
        let q = QueryId::new(17);
        assert_eq!(q.raw(), 17);
        assert_eq!(u64::from(q), 17);
        assert_eq!(QueryId::from(17u64), q);
        assert_eq!(q.to_string(), "17");
        assert!(QueryId::new(1) < QueryId::new(2));
    }
}
