//! Plan rewrites (paper §2 and §6: consolidation, absorption, and the
//! select-through-union pushdown of Figure 4(a)).
//!
//! All rewrites preserve the bag of result items (property-tested in
//! `tests/`); absorption changes the *nesting* of join tuples but not
//! the set of base-item combinations, which is the equivalence the
//! paper's optimization argument relies on.

use mqp_algebra::plan::{OrAlt, Plan};
use mqp_engine::estimate;

/// Pushes `Select` through `Union` and `Or`:
/// `σ(A ∪ B) → σ(A) ∪ σ(B)` (Figure 4(a)) and
/// `σ(A | B) → σ(A) | σ(B)`. Returns how many pushes happened.
pub fn push_select_down(plan: &mut Plan) -> usize {
    let mut count = 0;
    // Rewrite this node while it keeps matching, then recurse.
    loop {
        let rewritten = match plan {
            Plan::Select { pred, input } => match input.as_mut() {
                Plan::Union(inputs) => {
                    let pred = pred.clone();
                    let pushed = Plan::Union(
                        std::mem::take(inputs)
                            .into_iter()
                            .map(|i| Plan::Select {
                                pred: pred.clone(),
                                input: Box::new(i),
                            })
                            .collect(),
                    );
                    *plan = pushed;
                    true
                }
                Plan::Or(alts) => {
                    let pred = pred.clone();
                    let pushed = Plan::Or(
                        std::mem::take(alts)
                            .into_iter()
                            .map(|a| OrAlt {
                                plan: Plan::Select {
                                    pred: pred.clone(),
                                    input: Box::new(a.plan),
                                },
                                staleness: a.staleness,
                            })
                            .collect(),
                    );
                    *plan = pushed;
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if rewritten {
            count += 1;
        } else {
            break;
        }
    }
    for c in plan.children_mut() {
        count += push_select_down(c);
    }
    count
}

/// Flattens nested unions, inlines single-input unions, and merges all
/// constant `Data` leaves of a union into one (the *consolidation* of
/// §6: "rewriting a plan so that locally evaluable sub-plans come
/// together"). Returns how many nodes were simplified away.
pub fn consolidate(plan: &mut Plan) -> usize {
    consolidate_tracked(plan).0
}

/// Like [`consolidate`], additionally reporting whether the plan
/// changed *at all*. The two are not the same: repositioning a lone
/// data leaf to the front of a union (or renormalizing its
/// annotations) mutates the plan without simplifying any node away, so
/// the count stays 0. Callers that maintain serialization caches keyed
/// on plan identity must use the `bool`, never the count.
pub fn consolidate_tracked(plan: &mut Plan) -> (usize, bool) {
    let mut count = 0;
    let mut changed = false;
    for c in plan.children_mut() {
        let (n, ch) = consolidate_tracked(c);
        count += n;
        changed |= ch;
    }
    if let Plan::Union(inputs) = plan {
        // Exact no-op detection: skip the rebuild when it would
        // reproduce the union byte-for-byte — no nested unions to
        // flatten, no single input to inline, and at most one data
        // leaf that already sits in front with the canonical
        // `cardinality`-only annotations the rebuild would give it.
        let nested = inputs.iter().any(|i| matches!(i, Plan::Union(_)));
        let n_data = inputs
            .iter()
            .filter(|i| matches!(i, Plan::Data { .. }))
            .count();
        let untouched = !nested
            && inputs.len() != 1
            && (n_data == 0
                || (n_data == 1
                    && matches!(&inputs[0], Plan::Data { items, meta }
                        if is_canonical_data_meta(meta, items.len()))));
        if untouched {
            return (count, changed);
        }
        changed = true;
        // Flatten nested unions.
        let mut flat: Vec<Plan> = Vec::with_capacity(inputs.len());
        for i in std::mem::take(inputs) {
            match i {
                Plan::Union(nested) => {
                    count += 1;
                    flat.extend(nested);
                }
                other => flat.push(other),
            }
        }
        // Merge data leaves — handle moves, no item copies.
        let mut merged = mqp_xml::Batch::new();
        let mut data_leaves = 0;
        let mut rest: Vec<Plan> = Vec::with_capacity(flat.len());
        for i in flat {
            match i {
                Plan::Data { items, .. } => {
                    data_leaves += 1;
                    merged.extend(items);
                }
                other => rest.push(other),
            }
        }
        if data_leaves > 1 {
            count += data_leaves - 1;
        }
        if data_leaves > 0 {
            rest.insert(0, Plan::data_shared(merged));
        }
        if rest.len() == 1 {
            *plan = rest.into_iter().next().unwrap();
            count += 1;
        } else {
            *plan = Plan::Union(rest);
        }
    }
    (count, changed)
}

/// True when `meta` is exactly what `Plan::data` would regenerate for
/// `len` items — the condition under which consolidation's rebuild of
/// a data leaf is a no-op.
fn is_canonical_data_meta(meta: &mqp_algebra::plan::Annotations, len: usize) -> bool {
    meta.iter().count() == 1
        && meta
            .get("cardinality")
            .is_some_and(|v| v == len.to_string())
}

/// Commits every `Or` node to the alternative `choose` picks
/// (`A | B → A`, §4.2). `choose` receives the alternatives and returns
/// an index. Returns how many `Or` nodes were committed.
pub fn commit_or(plan: &mut Plan, choose: &impl Fn(&[OrAlt]) -> usize) -> usize {
    let mut count = 0;
    if let Plan::Or(alts) = plan {
        let idx = choose(alts).min(alts.len().saturating_sub(1));
        let chosen = std::mem::take(alts)
            .into_iter()
            .nth(idx)
            .expect("or non-empty");
        *plan = chosen.plan;
        count += 1;
    }
    for c in plan.children_mut() {
        count += commit_or(c, choose);
    }
    count
}

/// Fault-recovery rewrite (DESIGN.md §6): drops `Or` alternatives
/// whose URL leaves address `dead` — the catalog's remaining
/// alternatives take over when a next-hop crashes mid-query. An `Or`
/// is only pruned when at least one alternative survives (otherwise
/// the dead server is the sole option and the retry loop must wait for
/// it to rejoin). A single surviving alternative collapses the `Or`.
/// Returns how many alternatives were dropped.
pub fn prune_server_alternatives(plan: &mut Plan, dead: &mqp_catalog::ServerId) -> usize {
    // Children first: a nested `Or` may shed its dead branch and leave
    // this level's alternative alive — pruning top-down would discard
    // the whole alternative (and its viable siblings) prematurely.
    let mut count = 0;
    for c in plan.children_mut() {
        count += prune_server_alternatives(c, dead);
    }
    if let Plan::Or(alts) = plan {
        let needs_dead = |a: &OrAlt| {
            a.plan
                .urls()
                .iter()
                .any(|u| mqp_catalog::ServerId::from_url(&u.href).as_ref() == Some(dead))
        };
        let survivors = alts.iter().filter(|a| !needs_dead(a)).count();
        if survivors > 0 && survivors < alts.len() {
            count += alts.len() - survivors;
            let mut keep: Vec<OrAlt> = std::mem::take(alts)
                .into_iter()
                .filter(|a| !needs_dead(a))
                .collect();
            *plan = if keep.len() == 1 {
                keep.pop().expect("one survivor").plan
            } else {
                Plan::Or(keep)
            };
        }
    }
    count
}

/// The absorption rewrite of §2: when resources `A` and `B` are local
/// and `X` is not, and `|A ⋈ B| ≤ |A|`, rewrite `(A ⋈ X) ⋈ B` into
/// `(A ⋈ B) ⋈ X` so the locally evaluable branch shrinks the partial
/// result shipped to `X`'s server.
///
/// Join outputs nest items inside `<tuple>` wrappers, so re-associating
/// joins requires *path surgery*: the outer condition addressed `A`
/// through the tuple (`a/j`), the new inner condition addresses it
/// directly (`j`), and vice versa for the condition that moves outward.
/// The rewrite therefore only fires when the local join input is a
/// constant `Data` leaf whose item name matches the outer path's first
/// segment — exactly the post-resolution state §2 describes ("Suppose
/// resources A and B are available locally, while X is not").
///
/// `is_local` says whether a sub-plan is evaluable here. Applies the
/// rewrite wherever profitable; returns the number of applications.
pub fn absorb(plan: &mut Plan, is_local: &impl Fn(&Plan) -> bool) -> usize {
    let mut count = 0;
    for c in plan.children_mut() {
        count += absorb(c, is_local);
    }
    let Plan::Join {
        on: on2,
        left,
        right,
    } = plan
    else {
        return count;
    };
    if !is_local(right) {
        return count;
    }
    let Plan::Join {
        on: on1,
        left: a,
        right: x,
    } = left.as_mut()
    else {
        return count;
    };
    let b = right;
    // Orientation 1: A local data, X remote; outer joins A's fields.
    if let Some(a_name) = data_item_name(a) {
        if is_local(a)
            && !is_local(x)
            && first_segment(&on2.left_path) == Some(a_name.as_str())
            && profitable(a, b)
        {
            let new_inner = Plan::Join {
                on: mqp_algebra::plan::JoinCond {
                    left_path: strip_first(&on2.left_path),
                    right_path: on2.right_path.clone(),
                },
                left: a.clone(),
                right: b.clone(),
            };
            let new_outer_on = mqp_algebra::plan::JoinCond {
                left_path: prefix(&on1.left_path, &a_name),
                right_path: on1.right_path.clone(),
            };
            *plan = Plan::Join {
                on: new_outer_on,
                left: Box::new(new_inner),
                right: x.clone(),
            };
            return count + 1;
        }
    }
    // Mirror: X local data (inner right), A remote; outer joins X's
    // fields.
    if let Some(x_name) = data_item_name(x) {
        if is_local(x)
            && !is_local(a)
            && first_segment(&on2.left_path) == Some(x_name.as_str())
            && profitable(x, b)
        {
            let new_inner = Plan::Join {
                on: mqp_algebra::plan::JoinCond {
                    left_path: strip_first(&on2.left_path),
                    right_path: on2.right_path.clone(),
                },
                left: x.clone(),
                right: b.clone(),
            };
            let new_outer_on = mqp_algebra::plan::JoinCond {
                // on1: left addressed A (raw), right addressed X (raw).
                // The new outer joins tuple(x,b) with A: left addresses
                // X through the tuple, right addresses A raw.
                left_path: prefix(&on1.right_path, &x_name),
                right_path: on1.left_path.clone(),
            };
            *plan = Plan::Join {
                on: new_outer_on,
                left: Box::new(new_inner),
                right: a.clone(),
            };
            return count + 1;
        }
    }
    count
}

/// The common item element name of a `Data` leaf, if uniform.
fn data_item_name(p: &Plan) -> Option<String> {
    let items = p.as_data()?;
    let first = items.first()?.name().to_owned();
    items.iter().all(|i| i.name() == first).then_some(first)
}

fn first_segment(path: &mqp_xml::xpath::Path) -> Option<&str> {
    match path.steps.first()?.test {
        mqp_xml::xpath::NodeTest::Name(ref n) if path.steps[0].predicates.is_empty() => {
            Some(n.as_str())
        }
        _ => None,
    }
}

fn strip_first(path: &mqp_xml::xpath::Path) -> mqp_xml::xpath::Path {
    mqp_xml::xpath::Path {
        absolute: false,
        steps: path.steps[1..].to_vec(),
    }
}

fn prefix(path: &mqp_xml::xpath::Path, name: &str) -> mqp_xml::xpath::Path {
    let mut steps = vec![mqp_xml::xpath::Step {
        test: mqp_xml::xpath::NodeTest::Name(mqp_xml::Name::new(name)),
        predicates: Vec::new(),
    }];
    steps.extend(path.steps.iter().cloned());
    mqp_xml::xpath::Path {
        absolute: false,
        steps,
    }
}

/// `|A ⋈ B| ≤ |A|` on the cost model's estimates.
fn profitable(a: &Plan, b: &Plan) -> bool {
    let a_est = estimate(a);
    let joined = estimate(&Plan::Join {
        on: mqp_algebra::plan::JoinCond::on("k", "k"),
        left: Box::new(a.clone()),
        right: Box::new(b.clone()),
    });
    joined.rows <= a_est.rows
}

/// Runs the cheap normalizations (select pushdown + consolidation) to a
/// fixpoint. Returns total rewrites applied.
pub fn normalize(plan: &mut Plan) -> usize {
    normalize_tracked(plan).0
}

/// Like [`normalize`], additionally reporting whether the plan changed
/// at all (see [`consolidate_tracked`] for why the count alone cannot
/// answer that). The processor pairs this with its serialization-cache
/// invalidation so a genuinely untouched plan keeps its cached wire
/// fragment — and a repositioned one never splices stale bytes.
pub fn normalize_tracked(plan: &mut Plan) -> (usize, bool) {
    let mut total = 0;
    let mut changed = false;
    loop {
        let pushed = push_select_down(plan);
        let (consolidated, cons_changed) = consolidate_tracked(plan);
        total += pushed + consolidated;
        changed |= pushed > 0 || cons_changed;
        if pushed + consolidated == 0 {
            return (total, changed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::JoinCond;
    use mqp_engine::eval_const;
    use mqp_xml::{parse, Element};

    fn items(xmls: &[&str]) -> Vec<Element> {
        xmls.iter().map(|s| parse(s).unwrap()).collect()
    }

    #[test]
    fn select_pushes_through_union() {
        // Figure 4(a): the select moves inside the union of seller URLs.
        let mut p = Plan::select(
            "price < 10",
            Plan::union([Plan::url("mqp://s1/"), Plan::url("mqp://s2/")]),
        );
        assert_eq!(push_select_down(&mut p), 1);
        match &p {
            Plan::Union(inputs) => {
                assert_eq!(inputs.len(), 2);
                assert!(inputs.iter().all(|i| matches!(i, Plan::Select { .. })));
            }
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn select_pushes_through_or_preserving_staleness() {
        let mut p = Plan::select(
            "price < 10",
            Plan::Or(vec![
                OrAlt::stale(Plan::url("mqp://r/"), 30),
                OrAlt::new(Plan::url("mqp://s/")),
            ]),
        );
        push_select_down(&mut p);
        match &p {
            Plan::Or(alts) => {
                assert_eq!(alts[0].staleness, Some(30));
                assert!(matches!(alts[0].plan, Plan::Select { .. }));
            }
            other => panic!("expected or, got {other}"),
        }
    }

    #[test]
    fn pushdown_preserves_results() {
        let data = Plan::data(items(&[
            "<i><price>5</price></i>",
            "<i><price>15</price></i>",
        ]));
        let mut p = Plan::select("price < 10", Plan::union([data.clone(), data.clone()]));
        let before = eval_const(&p).unwrap();
        push_select_down(&mut p);
        let after = eval_const(&p).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.len(), 2);
    }

    #[test]
    fn consolidate_merges_data_leaves() {
        let mut p = Plan::union([
            Plan::data(items(&["<i><k>1</k></i>"])),
            Plan::url("mqp://x/"),
            Plan::union([Plan::data(items(&["<i><k>2</k></i>"]))]),
        ]);
        let n = consolidate(&mut p);
        assert!(n >= 2, "flatten + merge, got {n}");
        match &p {
            Plan::Union(inputs) => {
                assert_eq!(inputs.len(), 2);
                assert_eq!(inputs[0].as_data().unwrap().len(), 2);
            }
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn consolidate_inlines_singleton_union() {
        let mut p = Plan::union([Plan::data(items(&["<i/>"]))]);
        consolidate(&mut p);
        assert!(matches!(p, Plan::Data { .. }));
    }

    #[test]
    fn commit_or_rewrites_to_choice() {
        let mut p = Plan::select(
            "true",
            Plan::Or(vec![
                OrAlt::stale(Plan::url("mqp://r/"), 30),
                OrAlt::new(Plan::url("mqp://s/")),
            ]),
        );
        let n = commit_or(&mut p, &|_| 1);
        assert_eq!(n, 1);
        match &p {
            Plan::Select { input, .. } => match input.as_ref() {
                Plan::Url(u) => assert_eq!(u.href, "mqp://s/"),
                other => panic!("expected url, got {other}"),
            },
            other => panic!("expected select, got {other}"),
        }
    }

    /// Collects the base (non-`tuple`) items of a result, flattening
    /// join nesting — the equivalence absorption preserves.
    fn flatten(items: &mqp_xml::Batch) -> Vec<String> {
        fn rec(e: &Element, out: &mut Vec<String>) {
            if e.name() == "tuple" {
                for c in e.child_elements() {
                    rec(c, out);
                }
            } else {
                out.push(mqp_xml::serialize(e));
            }
        }
        let mut rows: Vec<String> = items
            .iter()
            .map(|t| {
                let mut parts = Vec::new();
                rec(t, &mut parts);
                parts.sort();
                parts.join("|")
            })
            .collect();
        rows.sort();
        rows
    }

    fn absorption_fixture() -> (Plan, Plan, Plan) {
        // A: local, 3 items; B: local, 1 item (joins 1 of A);
        // X: remote(ish), 3 items keyed to A.
        let a = Plan::data(items(&[
            "<a><k>1</k><j>p</j></a>",
            "<a><k>2</k><j>q</j></a>",
            "<a><k>3</k><j>r</j></a>",
        ]));
        let b = Plan::data(items(&["<b><j>p</j></b>"]));
        let x = Plan::data(items(&[
            "<x><k>1</k></x>",
            "<x><k>2</k></x>",
            "<x><k>3</k></x>",
        ]));
        (a, b, x)
    }

    #[test]
    fn absorb_rewrites_and_preserves_combinations() {
        let (a, b, x) = absorption_fixture();
        // (A ⋈ X) ⋈ B: the inner join works on raw items ("k"/"k"),
        // the outer addresses A through the tuple ("a/j").
        let x_remote = Plan::union([x.clone(), Plan::url("mqp://far/")]);
        let mut p = Plan::join(
            JoinCond::on("a/j", "j"),
            Plan::join(JoinCond::on("k", "k"), a.clone(), x_remote.clone()),
            b.clone(),
        );
        let is_local = |pl: &Plan| pl.urls().is_empty() && pl.urns().is_empty();
        let n = absorb(&mut p, &is_local);
        assert_eq!(n, 1);
        // New shape: (A ⋈ B) ⋈ X-remote, with surgically adjusted paths.
        match &p {
            Plan::Join { on, left, right } => {
                assert!(matches!(**left, Plan::Join { .. }));
                assert!(!is_local(right));
                assert_eq!(on.left_path.to_string(), "a/k");
                if let Plan::Join { on: inner_on, .. } = left.as_ref() {
                    assert_eq!(inner_on.left_path.to_string(), "j");
                }
            }
            other => panic!("expected join, got {other}"),
        }
        // Equivalence on the pure-data variant.
        let original = Plan::join(
            JoinCond::on("a/j", "j"),
            Plan::join(JoinCond::on("k", "k"), a.clone(), x.clone()),
            b.clone(),
        );
        let mut rewritten = original.clone();
        let always_local_except_x = |pl: &Plan| !matches!(pl, Plan::Data { items, .. } if items.first().map(|i| i.name()) == Some("x"));
        absorb(&mut rewritten, &always_local_except_x);
        let before = eval_const(&original).unwrap();
        let after = eval_const(&rewritten).unwrap();
        assert_eq!(flatten(&before), flatten(&after));
        assert_eq!(before.len(), 1); // only k=1/j=p row survives both joins
    }

    #[test]
    fn absorb_mirror_orientation() {
        // (A_remote ⋈ X_local) ⋈ B_local, outer joins X's fields.
        let (x_data, b, a_data) = {
            let (a, b, x) = absorption_fixture();
            (a, b, x) // reuse: "a"-named items play X_local here
        };
        let remote = Plan::union([a_data.clone(), Plan::url("mqp://far/")]);
        let mut p = Plan::join(
            JoinCond::on("a/j", "j"),
            Plan::join(JoinCond::on("k", "k"), remote, x_data.clone()),
            b.clone(),
        );
        let is_local = |pl: &Plan| pl.urls().is_empty() && pl.urns().is_empty();
        assert_eq!(absorb(&mut p, &is_local), 1);
        match &p {
            Plan::Join { on, left, right } => {
                assert!(matches!(**left, Plan::Join { .. }));
                assert!(!is_local(right));
                // Outer: X through tuple on the left, raw A on the right.
                assert_eq!(on.left_path.to_string(), "a/k");
                assert_eq!(on.right_path.to_string(), "k");
            }
            other => panic!("expected join, got {other}"),
        }
    }

    #[test]
    fn absorb_shrinks_shipped_branch() {
        // The point of the rewrite: the locally evaluable branch after
        // absorption (A ⋈ B) is smaller than A alone.
        let (a, b, _) = absorption_fixture();
        let joined = eval_const(&Plan::join(JoinCond::on("j", "j"), a.clone(), b)).unwrap();
        let a_items = eval_const(&a).unwrap();
        assert!(joined.len() < a_items.len());
    }

    #[test]
    fn absorb_unprofitable_is_skipped() {
        // B joins every A item twice: |A ⋈ B| > |A| ⇒ no rewrite.
        let a = Plan::data(items(&["<a><j>p</j></a>", "<a><j>p</j></a>"]));
        let b = Plan::data(items(&["<b><j>p</j></b>", "<b><j>p</j></b>"]));
        let x_remote = Plan::union([Plan::url("mqp://far/")]);
        let mut p = Plan::join(
            JoinCond::on("a/j", "j"),
            Plan::join(JoinCond::on("k", "k"), a, x_remote),
            b,
        );
        let is_local = |pl: &Plan| pl.urls().is_empty() && pl.urns().is_empty();
        assert_eq!(absorb(&mut p, &is_local), 0);
    }

    #[test]
    fn prune_drops_dead_alternatives_and_collapses() {
        let dead = mqp_catalog::ServerId::new("R");
        // R | S: pruning R collapses the Or to S.
        let mut p = Plan::or([Plan::url("mqp://R/"), Plan::url("mqp://S/")]);
        assert_eq!(prune_server_alternatives(&mut p, &dead), 1);
        match &p {
            Plan::Url(u) => assert_eq!(u.href, "mqp://S/"),
            other => panic!("expected collapsed url, got {other}"),
        }
        // Sole option: never pruned (the retry loop waits for R).
        let mut sole = Plan::or([Plan::url("mqp://R/")]);
        assert_eq!(prune_server_alternatives(&mut sole, &dead), 0);
        assert!(matches!(sole, Plan::Or(_)));
        // Non-Or plans are untouched.
        let mut union = Plan::union([Plan::url("mqp://R/"), Plan::url("mqp://S/")]);
        assert_eq!(prune_server_alternatives(&mut union, &dead), 0);
    }

    #[test]
    fn prune_repairs_nested_or_before_judging_outer() {
        // Or([Or([R, S]), T]): the inner Or sheds R and leaves S, so
        // the outer alternative must survive — top-down pruning would
        // have discarded S wholesale.
        let dead = mqp_catalog::ServerId::new("R");
        let mut p = Plan::or([
            Plan::or([Plan::url("mqp://R/"), Plan::url("mqp://S/")]),
            Plan::url("mqp://T/"),
        ]);
        assert_eq!(prune_server_alternatives(&mut p, &dead), 1);
        match &p {
            Plan::Or(alts) => {
                assert_eq!(alts.len(), 2);
                let hrefs: Vec<&str> = p.urls().iter().map(|u| u.href.as_str()).collect();
                assert_eq!(hrefs, ["mqp://S/", "mqp://T/"]);
            }
            other => panic!("expected outer Or intact, got {other}"),
        }
    }

    #[test]
    fn normalize_reaches_fixpoint() {
        let mut p = Plan::select(
            "price < 10",
            Plan::union([
                Plan::union([Plan::data(items(&["<i><price>1</price></i>"]))]),
                Plan::data(items(&["<i><price>11</price></i>"])),
            ]),
        );
        let n = normalize(&mut p);
        assert!(n > 0);
        let mut again = p.clone();
        assert_eq!(normalize(&mut again), 0);
        assert_eq!(again, p);
    }
}
