//! Server-side policy rules: the runtime target of the `.mqpp` DSL.
//!
//! A [`RuleSet`] is an *ordered* list of `when <conds> then <actions>`
//! rules compiled by `mqp-lang` (or built programmatically). The
//! processor consults it at each decision point by calling
//! [`RuleSet::decide`] with a [`RuleCtx`] describing the query at hand;
//! the result is a [`Decision`] that starts from the processor's base
//! [`Policy`] and layers on whatever the matching rules prescribe.
//!
//! Evaluation order is fixed and simple: rules are scanned first to
//! last; a rule matches when *all* of its conditions hold (AND); every
//! matching rule applies its actions in order, so a later rule's action
//! overrides an earlier rule's for the same field. An empty `RuleSet`
//! yields the base policy unchanged — this is what keeps golden traces
//! byte-identical when no policy file has been loaded.
//!
//! The set has its own line-oriented wire codec ([`RuleSet::to_wire`] /
//! [`RuleSet::from_wire`]) so it can travel in a `policy` frame without
//! the peer layer depending on the language front-end.

use std::fmt;

use mqp_catalog::{Preference, ServerId, TrustLevel};
use mqp_namespace::{urn, InterestArea};

use crate::policy::Policy;

/// A single rule condition. All conditions on a rule must hold for the
/// rule to fire.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Always true — used for unconditional base overrides.
    Always,
    /// The query's interest area (union of its unbound URN areas, as the
    /// plan arrived at this peer) is covered by this area.
    AreaWithin(InterestArea),
    /// The candidate reduction's estimated bytes exceed the threshold.
    BytesOver(f64),
    /// The candidate reduction's estimated bytes are below the threshold.
    BytesUnder(f64),
    /// The maximum staleness tag among the plan's Or alternatives
    /// exceeds the threshold (minutes).
    StalenessOver(u32),
    /// The processing peer's id matches a `*`-wildcard glob.
    RoleIs(String),
    /// The subject server's trust level is at or below the given level
    /// (DESIGN.md §14) — `trust-below probation` fires on `Probation`
    /// and `Quarantined`, never on `Trusted`.
    TrustBelow(TrustLevel),
}

/// A single rule action. Actions of matching rules apply in order;
/// later actions win on conflict.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleAction {
    /// Set the effective policy preference (§4.3 current-vs-fast).
    Prefer(Preference),
    /// Set the effective staleness cap (minutes).
    Within(u32),
    /// Set the effective deferment threshold (bytes).
    DeferOver(f64),
    /// Force candidate reductions to be deferred (never blocks a
    /// reduction that completes the plan).
    ForceDefer,
    /// Force candidate reductions to be evaluated.
    ForceEvaluate,
    /// Route this query via the named server when possible.
    RouteVia(ServerId),
    /// Override the preference used for Or-commitment only, leaving the
    /// binding/deferment preference untouched.
    Choose(Preference),
    /// Quarantine the subject server administratively (DESIGN.md §14).
    Quarantine,
    /// Demand a `count(σ(B))` verification round for the subject's
    /// conflicts before its answers are trusted.
    Verify,
}

/// One `when <conds> then <actions>` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Conditions, ANDed.
    pub conds: Vec<Cond>,
    /// Actions, applied in order.
    pub actions: Vec<RuleAction>,
}

/// An ordered set of rules. `Default` is the empty set, which leaves
/// every decision exactly at the base policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// Rules in evaluation order.
    pub rules: Vec<Rule>,
}

/// The facts a decision point knows about the query being processed.
#[derive(Debug, Clone, Default)]
pub struct RuleCtx {
    /// Union of the plan's unbound URN interest areas (as the plan
    /// arrived at this peer); `None` when it mentions no areas.
    pub area: Option<InterestArea>,
    /// Estimated bytes of the candidate reduction, when deciding
    /// reduce-vs-defer; `None` at other decision points.
    pub bytes: Option<f64>,
    /// Maximum staleness tag among the plan's Or alternatives.
    pub staleness: Option<u32>,
    /// The processing peer's id.
    pub role: String,
    /// Trust level of the subject server, at trust decision points
    /// (registration conflicts); `None` elsewhere.
    pub trust: Option<TrustLevel>,
}

impl RuleCtx {
    /// Copy of this ctx with the candidate-reduction byte estimate set.
    pub fn with_bytes(&self, bytes: f64) -> RuleCtx {
        RuleCtx {
            bytes: Some(bytes),
            ..self.clone()
        }
    }

    /// Copy of this ctx with the subject server's trust level set.
    pub fn with_trust(&self, trust: TrustLevel) -> RuleCtx {
        RuleCtx {
            trust: Some(trust),
            ..self.clone()
        }
    }
}

/// The outcome of evaluating a [`RuleSet`] against a [`RuleCtx`].
#[derive(Debug, Clone)]
pub struct Decision {
    /// The effective policy (base policy plus rule overrides).
    pub policy: Policy,
    /// Or-commitment preference override, if any rule set one.
    pub or_preference: Option<Preference>,
    /// `Some(true)` forces evaluation, `Some(false)` forces deferment
    /// (completion-preserving), `None` leaves it to `policy`.
    pub force: Option<bool>,
    /// Routing override, if any rule set one.
    pub route: Option<ServerId>,
    /// A rule demanded administrative quarantine of the subject.
    pub quarantine: bool,
    /// A rule demanded a verification round for the subject.
    pub verify: bool,
}

/// Matches `pat` against `text` where `*` in the pattern matches any
/// (possibly empty) run of characters. Deterministic greedy-with-
/// backtracking scan; no other metacharacters.
pub fn glob_match(pat: &str, text: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

impl Cond {
    /// Whether this condition holds for the given ctx.
    pub fn matches(&self, ctx: &RuleCtx) -> bool {
        match self {
            Cond::Always => true,
            Cond::AreaWithin(rule_area) => ctx
                .area
                .as_ref()
                .map(|query_area| rule_area.covers(query_area))
                .unwrap_or(false),
            Cond::BytesOver(threshold) => ctx.bytes.map(|b| b > *threshold).unwrap_or(false),
            Cond::BytesUnder(threshold) => ctx.bytes.map(|b| b < *threshold).unwrap_or(false),
            Cond::StalenessOver(minutes) => ctx.staleness.map(|s| s > *minutes).unwrap_or(false),
            Cond::RoleIs(glob) => glob_match(glob, &ctx.role),
            Cond::TrustBelow(level) => ctx.trust.map(|t| t <= *level).unwrap_or(false),
        }
    }
}

impl Rule {
    /// Builds a rule.
    pub fn new(conds: Vec<Cond>, actions: Vec<RuleAction>) -> Rule {
        Rule { conds, actions }
    }

    /// All conditions hold (an empty condition list never fires; use
    /// [`Cond::Always`] for unconditional rules).
    pub fn matches(&self, ctx: &RuleCtx) -> bool {
        !self.conds.is_empty() && self.conds.iter().all(|c| c.matches(ctx))
    }
}

impl RuleSet {
    /// The empty set (identical to `Default`).
    pub fn empty() -> RuleSet {
        RuleSet::default()
    }

    /// Builds a set from rules in evaluation order.
    pub fn new(rules: Vec<Rule>) -> RuleSet {
        RuleSet { rules }
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates the set: every matching rule applies its actions in
    /// order on top of `base`. With no rules (or no matches) the
    /// decision is exactly `base` with no overrides.
    pub fn decide(&self, base: &Policy, ctx: &RuleCtx) -> Decision {
        let mut decision = Decision {
            policy: *base,
            or_preference: None,
            force: None,
            route: None,
            quarantine: false,
            verify: false,
        };
        for rule in &self.rules {
            if !rule.matches(ctx) {
                continue;
            }
            for action in &rule.actions {
                match action {
                    RuleAction::Prefer(p) => decision.policy.preference = *p,
                    RuleAction::Within(m) => decision.policy.max_staleness = Some(*m),
                    RuleAction::DeferOver(b) => decision.policy.defer_bytes = *b,
                    RuleAction::ForceDefer => decision.force = Some(false),
                    RuleAction::ForceEvaluate => decision.force = Some(true),
                    RuleAction::RouteVia(s) => decision.route = Some(s.clone()),
                    RuleAction::Choose(p) => decision.or_preference = Some(*p),
                    RuleAction::Quarantine => decision.quarantine = true,
                    RuleAction::Verify => decision.verify = true,
                }
            }
        }
        decision
    }

    /// Compact line codec for the `policy` wire frame: one rule per
    /// line, `<conds> => <actions>`, tokens space-separated.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            let conds: Vec<String> = rule.conds.iter().map(cond_token).collect();
            let acts: Vec<String> = rule.actions.iter().map(action_token).collect();
            out.push_str(&conds.join(" "));
            out.push_str(" => ");
            out.push_str(&acts.join(" "));
            out.push('\n');
        }
        out
    }

    /// Inverse of [`to_wire`](RuleSet::to_wire).
    pub fn from_wire(text: &str) -> Result<RuleSet, String> {
        let mut rules = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line
                .split_once("=>")
                .ok_or_else(|| format!("rule line missing '=>': {line:?}"))?;
            let conds = lhs
                .split_whitespace()
                .map(parse_cond_token)
                .collect::<Result<Vec<_>, _>>()?;
            let actions = rhs
                .split_whitespace()
                .map(parse_action_token)
                .collect::<Result<Vec<_>, _>>()?;
            if conds.is_empty() {
                return Err(format!("rule line has no conditions: {line:?}"));
            }
            if actions.is_empty() {
                return Err(format!("rule line has no actions: {line:?}"));
            }
            rules.push(Rule { conds, actions });
        }
        Ok(RuleSet { rules })
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

fn cond_token(c: &Cond) -> String {
    match c {
        Cond::Always => "always".to_string(),
        Cond::AreaWithin(a) => format!("area={}", urn::encode_area(a)),
        Cond::BytesOver(b) => format!("bytes>{b}"),
        Cond::BytesUnder(b) => format!("bytes<{b}"),
        Cond::StalenessOver(m) => format!("stale>{m}"),
        Cond::RoleIs(g) => format!("role={g}"),
        Cond::TrustBelow(l) => format!("trust<={}", l.name()),
    }
}

fn action_token(a: &RuleAction) -> String {
    match a {
        RuleAction::Prefer(p) => format!("prefer={}", pref_token(*p)),
        RuleAction::Within(m) => format!("within={m}"),
        RuleAction::DeferOver(b) => format!("defer_over={b}"),
        RuleAction::ForceDefer => "force=defer".to_string(),
        RuleAction::ForceEvaluate => "force=eval".to_string(),
        RuleAction::RouteVia(s) => format!("route={s}"),
        RuleAction::Choose(p) => format!("choose={}", pref_token(*p)),
        RuleAction::Quarantine => "quarantine".to_string(),
        RuleAction::Verify => "verify".to_string(),
    }
}

fn pref_token(p: Preference) -> &'static str {
    match p {
        Preference::Current => "current",
        Preference::Fast => "fast",
    }
}

fn parse_pref(s: &str) -> Result<Preference, String> {
    match s {
        "current" => Ok(Preference::Current),
        "fast" => Ok(Preference::Fast),
        other => Err(format!("unknown preference {other:?}")),
    }
}

fn parse_cond_token(tok: &str) -> Result<Cond, String> {
    if tok == "always" {
        return Ok(Cond::Always);
    }
    if let Some(rest) = tok.strip_prefix("area=") {
        let area = urn::decode_area(rest).map_err(|e| format!("bad area in rule: {e:?}"))?;
        return Ok(Cond::AreaWithin(area));
    }
    if let Some(rest) = tok.strip_prefix("bytes>") {
        return rest
            .parse::<f64>()
            .map(Cond::BytesOver)
            .map_err(|e| format!("bad bytes threshold {rest:?}: {e}"));
    }
    if let Some(rest) = tok.strip_prefix("bytes<") {
        return rest
            .parse::<f64>()
            .map(Cond::BytesUnder)
            .map_err(|e| format!("bad bytes threshold {rest:?}: {e}"));
    }
    if let Some(rest) = tok.strip_prefix("stale>") {
        return rest
            .parse::<u32>()
            .map(Cond::StalenessOver)
            .map_err(|e| format!("bad staleness threshold {rest:?}: {e}"));
    }
    if let Some(rest) = tok.strip_prefix("role=") {
        return Ok(Cond::RoleIs(rest.to_string()));
    }
    if let Some(rest) = tok.strip_prefix("trust<=") {
        return TrustLevel::parse(rest)
            .map(Cond::TrustBelow)
            .ok_or_else(|| format!("unknown trust level {rest:?}"));
    }
    Err(format!("unknown rule condition token {tok:?}"))
}

fn parse_action_token(tok: &str) -> Result<RuleAction, String> {
    if let Some(rest) = tok.strip_prefix("prefer=") {
        return parse_pref(rest).map(RuleAction::Prefer);
    }
    if let Some(rest) = tok.strip_prefix("within=") {
        return rest
            .parse::<u32>()
            .map(RuleAction::Within)
            .map_err(|e| format!("bad within minutes {rest:?}: {e}"));
    }
    if let Some(rest) = tok.strip_prefix("defer_over=") {
        return rest
            .parse::<f64>()
            .map(RuleAction::DeferOver)
            .map_err(|e| format!("bad defer_over bytes {rest:?}: {e}"));
    }
    if let Some(rest) = tok.strip_prefix("force=") {
        return match rest {
            "defer" => Ok(RuleAction::ForceDefer),
            "eval" => Ok(RuleAction::ForceEvaluate),
            other => Err(format!("unknown force mode {other:?}")),
        };
    }
    if let Some(rest) = tok.strip_prefix("route=") {
        if rest.is_empty() {
            return Err("empty route target".to_string());
        }
        return Ok(RuleAction::RouteVia(ServerId::new(rest)));
    }
    if let Some(rest) = tok.strip_prefix("choose=") {
        return parse_pref(rest).map(RuleAction::Choose);
    }
    if tok == "quarantine" {
        return Ok(RuleAction::Quarantine);
    }
    if tok == "verify" {
        return Ok(RuleAction::Verify);
    }
    Err(format!("unknown rule action token {tok:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(loc: &str, cat: &str) -> InterestArea {
        InterestArea::of(mqp_namespace::Cell::parse([loc, cat]))
    }

    fn ctx() -> RuleCtx {
        RuleCtx {
            area: Some(area("USA/OR/Portland", "Merchandise/Music/CDs")),
            bytes: Some(2048.0),
            staleness: Some(45),
            role: "seller-3".to_string(),
            trust: None,
        }
    }

    #[test]
    fn empty_ruleset_is_the_base_policy() {
        let base = Policy::current()
            .with_max_staleness(15)
            .with_defer_bytes(99.0);
        let d = RuleSet::empty().decide(&base, &ctx());
        assert_eq!(d.policy.preference, base.preference);
        assert_eq!(d.policy.max_staleness, base.max_staleness);
        assert_eq!(d.policy.defer_bytes, base.defer_bytes);
        assert!(d.or_preference.is_none());
        assert!(d.force.is_none());
        assert!(d.route.is_none());
    }

    #[test]
    fn later_rules_override_earlier_ones() {
        let rs = RuleSet::new(vec![
            Rule::new(
                vec![Cond::Always],
                vec![RuleAction::Prefer(Preference::Fast)],
            ),
            Rule::new(
                vec![Cond::RoleIs("seller-*".to_string())],
                vec![
                    RuleAction::Prefer(Preference::Current),
                    RuleAction::Within(10),
                ],
            ),
        ]);
        let d = rs.decide(&Policy::current(), &ctx());
        assert_eq!(d.policy.preference, Preference::Current);
        assert_eq!(d.policy.max_staleness, Some(10));
    }

    #[test]
    fn conditions_are_anded() {
        let rs = RuleSet::new(vec![Rule::new(
            vec![
                Cond::RoleIs("seller-*".to_string()),
                Cond::BytesOver(4096.0),
            ],
            vec![RuleAction::ForceDefer],
        )]);
        assert!(rs.decide(&Policy::current(), &ctx()).force.is_none());
        let d = rs.decide(&Policy::current(), &ctx().with_bytes(8192.0));
        assert_eq!(d.force, Some(false));
    }

    #[test]
    fn area_condition_uses_cover_not_equality() {
        let rs = RuleSet::new(vec![Rule::new(
            vec![Cond::AreaWithin(area("USA/OR", "*"))],
            vec![RuleAction::Choose(Preference::Fast)],
        )]);
        let d = rs.decide(&Policy::current(), &ctx());
        assert_eq!(d.or_preference, Some(Preference::Fast));
        let mut elsewhere = ctx();
        elsewhere.area = Some(area("USA/WA/Seattle", "Merchandise"));
        assert!(rs
            .decide(&Policy::current(), &elsewhere)
            .or_preference
            .is_none());
        elsewhere.area = None;
        assert!(rs
            .decide(&Policy::current(), &elsewhere)
            .or_preference
            .is_none());
    }

    #[test]
    fn glob_matching_is_star_only() {
        assert!(glob_match("seller-*", "seller-12"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*-pdx", "idx-pdx"));
        assert!(glob_match("a*b*c", "axxbyyc"));
        assert!(!glob_match("seller-*", "idx-pdx"));
        assert!(!glob_match("seller", "seller-1"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn wire_codec_round_trips_every_token() {
        let rs = RuleSet::new(vec![
            Rule::new(
                vec![
                    Cond::Always,
                    Cond::AreaWithin(area("USA/OR/Portland", "Merchandise/Music")),
                    Cond::BytesOver(4096.0),
                    Cond::BytesUnder(128.5),
                    Cond::StalenessOver(30),
                    Cond::RoleIs("seller-*".to_string()),
                    Cond::TrustBelow(TrustLevel::Probation),
                ],
                vec![
                    RuleAction::Prefer(Preference::Fast),
                    RuleAction::Within(30),
                    RuleAction::DeferOver(4096.0),
                    RuleAction::ForceDefer,
                    RuleAction::ForceEvaluate,
                    RuleAction::RouteVia(ServerId::new("idx-pdx")),
                    RuleAction::Choose(Preference::Current),
                    RuleAction::Quarantine,
                    RuleAction::Verify,
                ],
            ),
            Rule::new(
                vec![Cond::Always],
                vec![RuleAction::Prefer(Preference::Current)],
            ),
        ]);
        let wire = rs.to_wire();
        let back = RuleSet::from_wire(&wire).expect("round trip");
        assert_eq!(back, rs);
        assert!(RuleSet::from_wire("").expect("empty ok").is_empty());
    }

    #[test]
    fn malformed_wire_lines_are_rejected() {
        assert!(RuleSet::from_wire("always prefer=fast").is_err());
        assert!(RuleSet::from_wire("wat => prefer=fast").is_err());
        assert!(RuleSet::from_wire("always => sideways").is_err());
        assert!(RuleSet::from_wire("=> prefer=fast").is_err());
        assert!(RuleSet::from_wire("always =>").is_err());
        assert!(RuleSet::from_wire("bytes>much => force=defer").is_err());
        assert!(RuleSet::from_wire("trust<=sideways => verify").is_err());
    }

    #[test]
    fn trust_below_is_at_or_below_and_needs_a_subject() {
        let rs = RuleSet::new(vec![Rule::new(
            vec![Cond::TrustBelow(TrustLevel::Probation)],
            vec![RuleAction::Verify],
        )]);
        let base = Policy::current();
        // No trust subject in ctx: never fires.
        assert!(!rs.decide(&base, &ctx()).verify);
        // At or below probation fires; trusted does not.
        assert!(
            !rs.decide(&base, &ctx().with_trust(TrustLevel::Trusted))
                .verify
        );
        assert!(
            rs.decide(&base, &ctx().with_trust(TrustLevel::Probation))
                .verify
        );
        assert!(
            rs.decide(&base, &ctx().with_trust(TrustLevel::Quarantined))
                .verify
        );
    }

    #[test]
    fn quarantine_and_verify_actions_set_decision_flags() {
        let rs = RuleSet::new(vec![Rule::new(
            vec![Cond::TrustBelow(TrustLevel::Quarantined)],
            vec![RuleAction::Quarantine, RuleAction::Verify],
        )]);
        let d = rs.decide(
            &Policy::current(),
            &ctx().with_trust(TrustLevel::Quarantined),
        );
        assert!(d.quarantine);
        assert!(d.verify);
        let d = rs.decide(&Policy::current(), &ctx().with_trust(TrustLevel::Probation));
        assert!(!d.quarantine);
        assert!(!d.verify);
    }
}
