//! The one-time plan compile pass.
//!
//! Evaluation is split in two: [`compile`] walks the plan *once*,
//! turning every predicate and path into matcher form — interned-`Name`
//! node tests (pointer/ID comparison per item node), pre-parsed
//! comparison literals, project field lists as interned names — and the
//! resulting [`CompiledPlan`] is then applied to whole item batches.
//! The compile cost is proportional to plan *nodes*; the payoff repeats
//! per *item*, and data-bundle batches run to the tens of thousands of
//! items per plan node.
//!
//! A [`CompiledPlan`] borrows the plan it was compiled from (data
//! leaves are referenced, not copied), so compiling allocates only the
//! matcher skeleton.
//!
//! [`CompileCache`] adds per-peer reuse across hops and queries:
//! predicates are cached by source text, so the same query shape
//! arriving at a peer twice (multi-hop reduction, retries, repeated
//! workload queries) skips even the compile walk for its predicates.

use std::collections::HashMap;
use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrlRef, UrnRef};
use mqp_algebra::predicate::{AggFunc, CompiledPredicate, Predicate};
use mqp_xml::xpath::Path;
use mqp_xml::{Batch, Name};

/// A plan compiled for batched evaluation (see module docs). Borrows
/// the source plan; obtain one via [`compile`] or [`compile_cached`]
/// and evaluate it with [`CompiledPlan::eval`](crate::eval).
#[derive(Debug)]
pub struct CompiledPlan<'p> {
    pub(crate) root: CNode<'p>,
}

/// Compiled operator tree. Paths already *are* matchers (interned at
/// parse time), so they are borrowed; predicates gain pre-parsed
/// literals; project fields become interned names.
#[derive(Debug)]
pub(crate) enum CNode<'p> {
    Data(&'p Batch),
    Url(&'p UrlRef),
    Urn(&'p UrnRef),
    Select {
        pred: Arc<CompiledPredicate>,
        input: Box<CNode<'p>>,
    },
    Project {
        fields: Vec<Name>,
        input: Box<CNode<'p>>,
    },
    Join {
        left_path: &'p Path,
        right_path: &'p Path,
        left: Box<CNode<'p>>,
        right: Box<CNode<'p>>,
    },
    Union(Vec<CNode<'p>>),
    /// The first `Or` alternative (the engine's positional §4.2
    /// semantics — see [`crate::eval::eval`]); `None` for an empty
    /// `Or`, which evaluation reports as an error.
    OrFirst(Option<Box<CNode<'p>>>),
    Aggregate {
        func: AggFunc,
        path: Option<&'p Path>,
        input: Box<CNode<'p>>,
    },
    TopN {
        n: usize,
        key: &'p Path,
        ascending: bool,
        input: Box<CNode<'p>>,
    },
    Display(Box<CNode<'p>>),
}

/// Per-peer compile cache: compiled predicates keyed by their source
/// text. Bounded — a hostile stream of distinct predicates resets the
/// cache rather than growing it.
#[derive(Debug, Clone, Default)]
pub struct CompileCache {
    preds: HashMap<String, Arc<CompiledPredicate>>,
}

/// Entries kept before the cache resets.
const CACHE_CAP: usize = 256;

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// Number of cached predicates (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    fn predicate(&mut self, pred: &Predicate) -> Arc<CompiledPredicate> {
        let key = pred.to_string();
        if let Some(hit) = self.preds.get(&key) {
            return Arc::clone(hit);
        }
        let compiled = Arc::new(pred.compile());
        if self.preds.len() >= CACHE_CAP {
            self.preds.clear();
        }
        self.preds.insert(key, Arc::clone(&compiled));
        compiled
    }
}

/// Compiles `plan` for batched evaluation (no cross-call caching).
pub fn compile(plan: &Plan) -> CompiledPlan<'_> {
    CompiledPlan {
        root: compile_node(plan, &mut None),
    }
}

/// Compiles `plan`, reusing and populating `cache` for predicate
/// compilations (the per-peer caching layer).
pub fn compile_cached<'p>(plan: &'p Plan, cache: &mut CompileCache) -> CompiledPlan<'p> {
    let mut cache = Some(cache);
    CompiledPlan {
        root: compile_node(plan, &mut cache),
    }
}

fn compile_node<'p>(plan: &'p Plan, cache: &mut Option<&mut CompileCache>) -> CNode<'p> {
    match plan {
        Plan::Data { items, .. } => CNode::Data(items),
        Plan::Url(u) => CNode::Url(u),
        Plan::Urn(u) => CNode::Urn(u),
        Plan::Select { pred, input } => CNode::Select {
            pred: match cache {
                Some(c) => c.predicate(pred),
                None => Arc::new(pred.compile()),
            },
            input: Box::new(compile_node(input, cache)),
        },
        Plan::Project { fields, input } => CNode::Project {
            fields: fields.iter().map(Name::from).collect(),
            input: Box::new(compile_node(input, cache)),
        },
        Plan::Join { on, left, right } => CNode::Join {
            left_path: &on.left_path,
            right_path: &on.right_path,
            left: Box::new(compile_node(left, cache)),
            right: Box::new(compile_node(right, cache)),
        },
        Plan::Union(inputs) => {
            CNode::Union(inputs.iter().map(|i| compile_node(i, cache)).collect())
        }
        Plan::Or(alts) => {
            CNode::OrFirst(alts.first().map(|a| Box::new(compile_node(&a.plan, cache))))
        }
        Plan::Aggregate { func, path, input } => CNode::Aggregate {
            func: *func,
            path: path.as_ref(),
            input: Box::new(compile_node(input, cache)),
        },
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => CNode::TopN {
            n: *n,
            key,
            ascending: *ascending,
            input: Box::new(compile_node(input, cache)),
        },
        Plan::Display { input, .. } => CNode::Display(Box::new(compile_node(input, cache))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_shares_compiled_predicates() {
        let mut cache = CompileCache::new();
        let p1 = Plan::select("price < 10", Plan::data([]));
        let p2 = Plan::select("price < 10", Plan::url("http://x/"));
        let c1 = compile_cached(&p1, &mut cache);
        let c2 = compile_cached(&p2, &mut cache);
        assert_eq!(cache.len(), 1);
        let (CNode::Select { pred: a, .. }, CNode::Select { pred: b, .. }) = (&c1.root, &c2.root)
        else {
            panic!("expected selects");
        };
        assert!(Arc::ptr_eq(a, b));
    }

    #[test]
    fn cache_caps_instead_of_growing() {
        let mut cache = CompileCache::new();
        for i in 0..(CACHE_CAP + 10) {
            let p = Plan::select(&format!("f{i} < {i}"), Plan::data([]));
            let _ = compile_cached(&p, &mut cache);
        }
        assert!(cache.len() <= CACHE_CAP);
        assert!(!cache.is_empty());
    }
}
