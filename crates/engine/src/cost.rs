//! Size estimation for plans: the numbers the Figure-2 optimizer hands
//! the policy manager ("optimizes them and estimates their costs").
//!
//! Estimates prefer announced statistics (leaf annotations, §5.1) and
//! fall back to System-R-style defaults. They drive two decisions in
//! `mqp-core`:
//!
//! * **deferment** — decline to evaluate a sub-plan whose result would
//!   bloat the shipped plan (§5.1's million-element `B`);
//! * **absorption** — prefer rewrites that shrink the partial result
//!   (§2's `(A ⋈ X) ⋈ B → (A ⋈ B) ⋈ (X ⋈ B)`).

use mqp_algebra::plan::Plan;
use mqp_algebra::predicate::AggFunc;

/// Default cardinality assumed for an unannotated remote collection.
pub const DEFAULT_REMOTE_ROWS: f64 = 1000.0;

/// Default serialized size assumed per item, in bytes.
pub const DEFAULT_ITEM_BYTES: f64 = 128.0;

/// Join selectivity default when distinct counts are unknown:
/// `|L ⋈ R| = |L|·|R| / max(V(L), V(R))` with `V = max(|L|,|R|)/10`.
const DEFAULT_JOIN_FANOUT: f64 = 0.1;

/// Estimated result size of a (sub-)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated number of result items.
    pub rows: f64,
    /// Estimated serialized size of the result in bytes.
    pub bytes: f64,
}

impl Estimate {
    /// Bytes per row implied by the estimate.
    pub fn row_bytes(&self) -> f64 {
        if self.rows > 0.0 {
            self.bytes / self.rows
        } else {
            DEFAULT_ITEM_BYTES
        }
    }
}

/// Estimates the result size of `plan`.
pub fn estimate(plan: &Plan) -> Estimate {
    match plan {
        Plan::Data { items, .. } => {
            let bytes: usize = items.iter().map(|i| i.serialized_len()).sum();
            Estimate {
                rows: items.len() as f64,
                bytes: bytes as f64,
            }
        }
        Plan::Url(u) => leaf_estimate(u.meta.cardinality(), u.meta.byte_size()),
        Plan::Urn(u) => leaf_estimate(u.meta.cardinality(), u.meta.byte_size()),
        Plan::Select { pred, input } => {
            let e = estimate(input);
            let s = pred.default_selectivity();
            Estimate {
                rows: e.rows * s,
                bytes: e.bytes * s,
            }
        }
        Plan::Project { fields, input } => {
            let e = estimate(input);
            // Crude: assume each kept field is an equal share of the item
            // and an item has ~4 fields when we know nothing else.
            let keep = (fields.len() as f64 / 4.0).min(1.0);
            Estimate {
                rows: e.rows,
                bytes: e.bytes * keep,
            }
        }
        Plan::Join { left, right, .. } => {
            let l = estimate(left);
            let r = estimate(right);
            let distinct = distinct_estimate(left)
                .max(distinct_estimate(right))
                .max(1.0);
            let rows = (l.rows * r.rows / distinct).min(l.rows * r.rows);
            // Tuples carry both items plus the <tuple> wrapper (~17 bytes).
            let bytes = rows * (l.row_bytes() + r.row_bytes() + 17.0);
            Estimate { rows, bytes }
        }
        Plan::Union(inputs) => {
            let mut rows = 0.0;
            let mut bytes = 0.0;
            for i in inputs {
                let e = estimate(i);
                rows += e.rows;
                bytes += e.bytes;
            }
            Estimate { rows, bytes }
        }
        // The policy manager will pick one alternative; until then assume
        // the first (preferred) one.
        Plan::Or(alts) => alts.first().map(|a| estimate(&a.plan)).unwrap_or(Estimate {
            rows: 0.0,
            bytes: 0.0,
        }),
        Plan::Aggregate { func, .. } => Estimate {
            rows: 1.0,
            bytes: match func {
                AggFunc::Count => 24.0,
                _ => 32.0,
            },
        },
        Plan::TopN { n, input, .. } => {
            let e = estimate(input);
            let rows = e.rows.min(*n as f64);
            Estimate {
                rows,
                bytes: rows * e.row_bytes(),
            }
        }
        Plan::Display { input, .. } => estimate(input),
    }
}

fn leaf_estimate(cardinality: Option<u64>, bytes: Option<u64>) -> Estimate {
    let rows = cardinality.map(|c| c as f64).unwrap_or(DEFAULT_REMOTE_ROWS);
    let bytes = bytes.map(|b| b as f64).unwrap_or(rows * DEFAULT_ITEM_BYTES);
    Estimate { rows, bytes }
}

/// Distinct-value estimate for a join input: the announced `distinct`
/// annotation when present, else rows × default fanout factor.
fn distinct_estimate(plan: &Plan) -> f64 {
    let announced = match plan {
        Plan::Url(u) => u.meta.distinct(),
        Plan::Urn(u) => u.meta.distinct(),
        Plan::Data { meta, .. } => meta.distinct(),
        _ => None,
    };
    match announced {
        Some(d) => d as f64,
        None => estimate(plan).rows.max(1.0) / DEFAULT_JOIN_FANOUT.recip().min(10.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::{JoinCond, UrlRef};
    use mqp_xml::parse;

    fn data3() -> Plan {
        Plan::data([
            parse("<i><p>1</p></i>").unwrap(),
            parse("<i><p>2</p></i>").unwrap(),
            parse("<i><p>3</p></i>").unwrap(),
        ])
    }

    #[test]
    fn data_estimate_is_exact() {
        let e = estimate(&data3());
        assert_eq!(e.rows, 3.0);
        assert_eq!(e.bytes, 3.0 * "<i><p>1</p></i>".len() as f64);
    }

    #[test]
    fn unannotated_leaf_uses_defaults() {
        let e = estimate(&Plan::url("http://x/"));
        assert_eq!(e.rows, DEFAULT_REMOTE_ROWS);
        assert_eq!(e.bytes, DEFAULT_REMOTE_ROWS * DEFAULT_ITEM_BYTES);
    }

    #[test]
    fn annotated_leaf_uses_announcement() {
        let mut u = UrlRef::new("http://x/");
        u.meta.set_cardinality(1_000_000);
        let e = estimate(&Plan::Url(u));
        assert_eq!(e.rows, 1_000_000.0);
    }

    #[test]
    fn select_shrinks() {
        let base = estimate(&data3()).rows;
        let sel = estimate(&Plan::select("p = 1", data3()));
        assert!(sel.rows < base);
    }

    #[test]
    fn join_bigger_than_inputs_but_bounded() {
        let j = Plan::join(JoinCond::on("p", "p"), data3(), data3());
        let e = estimate(&j);
        assert!(e.rows <= 9.0);
        assert!(e.rows > 0.0);
    }

    #[test]
    fn union_adds() {
        let u = Plan::union([data3(), data3()]);
        assert_eq!(estimate(&u).rows, 6.0);
    }

    #[test]
    fn aggregate_is_single_row() {
        let a = Plan::aggregate(AggFunc::Count, None, Plan::url("http://x/"));
        assert_eq!(estimate(&a).rows, 1.0);
    }

    #[test]
    fn topn_caps_rows() {
        let t = Plan::top_n(2, "p", true, data3());
        assert_eq!(estimate(&t).rows, 2.0);
        let t10 = Plan::top_n(10, "p", true, data3());
        assert_eq!(estimate(&t10).rows, 3.0);
    }

    #[test]
    fn deferment_signal_large_remote_join() {
        // §5.1: a million-element B should look much bigger than a small
        // filtered sub-plan — the policy manager uses this contrast.
        let mut big = UrlRef::new("http://b/");
        big.meta.set_cardinality(1_000_000);
        let small = Plan::select("p = 1", data3());
        assert!(estimate(&Plan::Url(big)).bytes > 1000.0 * estimate(&small).bytes);
    }
}
