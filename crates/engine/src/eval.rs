//! Batched, clone-free plan evaluation over shared item collections.
//!
//! The evaluator's currency is the [`Batch`]: `Arc<Element>` item
//! handles shared between `data` leaves, resolver results, and operator
//! inputs/outputs. Handle-shuffling operators (`select`, `union`, `or`,
//! `topn`, `display`) never touch item bytes; only the constructors
//! (`project`, `join`, `agg`) build new items. Predicates and paths run
//! in compiled matcher form ([`crate::compile`]): interned-name node
//! tests and pre-parsed literals, applied per item with no allocation.
//!
//! The pre-batching tree-walker is preserved verbatim in
//! [`crate::legacy`] as the measured baseline (`bench_report`'s
//! `BENCH_engine.json` ratios) and the equivalence oracle for the
//! property tests in `proptests.rs`.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrlRef, UrnRef};
use mqp_algebra::predicate::AggFunc;
use mqp_xml::xpath::Path;
use mqp_xml::{Batch, Element, Name, Node};

use crate::compile::{compile, CNode, CompiledPlan};

/// Supplies data for `Url`/`Urn` leaves during evaluation. The peer
/// layer implements this against its local store; a URL is resolvable
/// when it points at this peer (or the policy allows fetching), a URN
/// when the local catalog maps it to local data.
///
/// Resolvers *lend*: the returned [`Batch`] shares handles with the
/// store, so resolution costs reference-count bumps, not item copies.
pub trait Resolver {
    /// Items behind a URL leaf, or `None` if not locally resolvable.
    fn resolve_url(&self, url: &UrlRef) -> Option<Batch>;

    /// Items behind a URN leaf, or `None` if not locally resolvable.
    fn resolve_urn(&self, urn: &UrnRef) -> Option<Batch>;
}

/// A resolver that resolves nothing: evaluation succeeds only on plans
/// whose leaves are all verbatim data.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoResolver;

impl Resolver for NoResolver {
    fn resolve_url(&self, _url: &UrlRef) -> Option<Batch> {
        None
    }

    fn resolve_urn(&self, _urn: &UrnRef) -> Option<Batch> {
        None
    }
}

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A URL leaf the resolver could not supply.
    UnresolvedUrl(String),
    /// A URN leaf the resolver could not supply.
    UnresolvedUrn(String),
    /// An `Or` with no alternatives (forbidden by the codec, but plans
    /// can be built programmatically).
    EmptyOr,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnresolvedUrl(u) => write!(f, "unresolved URL {u}"),
            EvalError::UnresolvedUrn(u) => write!(f, "unresolved URN {u}"),
            EvalError::EmptyOr => write!(f, "empty or-node"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `plan` to a batch of items (compile + batched eval).
///
/// * `Or` evaluates its **first** alternative (the conjoint-union
///   semantics of §4.2 say any single alternative suffices; picking
///   among them is the policy manager's job *before* evaluation —
///   by the time a plan reaches the engine the choice is positional).
/// * `Display` is transparent: it evaluates its input (shipping the
///   result to the target is the peer layer's job).
///
/// Callers that evaluate the same plan repeatedly, or hold a
/// [`crate::CompileCache`], should [`crate::compile`] once and call
/// [`CompiledPlan::eval`] instead.
pub fn eval(plan: &Plan, resolver: &impl Resolver) -> Result<Batch, EvalError> {
    compile(plan).eval(resolver)
}

/// Evaluates a plan that must not need any resolution (all leaves are
/// verbatim data). Convenience for tests and for reducing sub-plans that
/// have already been fully bound.
pub fn eval_const(plan: &Plan) -> Result<Batch, EvalError> {
    eval(plan, &NoResolver)
}

impl CompiledPlan<'_> {
    /// Evaluates the compiled plan against `resolver`.
    pub fn eval(&self, resolver: &impl Resolver) -> Result<Batch, EvalError> {
        eval_node(&self.root, resolver)
    }
}

/// Evaluates `node`, borrowing the batch straight out of a `Data` leaf
/// instead of cloning it — the fusion that lets `select`-over-`data`
/// (the Figure 4(b) reduction) and `join` inputs read the leaf's
/// handles without even a reference-count pass.
fn eval_leaf_borrowed<'n>(
    node: &'n CNode<'_>,
    resolver: &impl Resolver,
) -> Result<std::borrow::Cow<'n, Batch>, EvalError> {
    match node {
        CNode::Data(items) => Ok(std::borrow::Cow::Borrowed(*items)),
        _ => eval_node(node, resolver).map(std::borrow::Cow::Owned),
    }
}

fn eval_node(node: &CNode<'_>, resolver: &impl Resolver) -> Result<Batch, EvalError> {
    match node {
        CNode::Data(items) => Ok((*items).clone()),
        CNode::Url(u) => resolver
            .resolve_url(u)
            .ok_or_else(|| EvalError::UnresolvedUrl(u.href.clone())),
        CNode::Urn(u) => resolver
            .resolve_urn(u)
            .ok_or_else(|| EvalError::UnresolvedUrn(u.urn.to_string())),
        CNode::Select { pred, input } => {
            let items = eval_leaf_borrowed(input, resolver)?;
            Ok(items
                .handles()
                .iter()
                .filter(|h| pred.eval(h))
                .cloned()
                .collect())
        }
        CNode::Project { fields, input } => {
            let items = eval_leaf_borrowed(input, resolver)?;
            let mut out = Batch::with_capacity(items.len());
            for i in items.iter() {
                out.push_item(project_item(i, fields));
            }
            Ok(out)
        }
        CNode::Join {
            left_path,
            right_path,
            left,
            right,
        } => {
            let l = eval_leaf_borrowed(left, resolver)?;
            let r = eval_leaf_borrowed(right, resolver)?;
            Ok(hash_join(&l, &r, left_path, right_path))
        }
        CNode::Union(inputs) => {
            let mut out = Batch::new();
            for i in inputs {
                out.extend(eval_node(i, resolver)?);
            }
            Ok(out)
        }
        CNode::OrFirst(first) => {
            let first = first.as_ref().ok_or(EvalError::EmptyOr)?;
            eval_node(first, resolver)
        }
        CNode::Aggregate { func, path, input } => {
            let items = eval_leaf_borrowed(input, resolver)?;
            let mut out = Batch::with_capacity(1);
            out.push_item(aggregate(*func, *path, &items));
            Ok(out)
        }
        CNode::TopN {
            n,
            key,
            ascending,
            input,
        } => {
            let items = eval_node(input, resolver)?;
            Ok(top_n(items, *n, key, *ascending))
        }
        CNode::Display(input) => eval_node(input, resolver),
    }
}

/// Projection: keeps the item's name and attributes, and only the direct
/// child elements whose names are listed. Field names are interned, so
/// the per-child scan is pointer compares.
fn project_item(item: &Element, fields: &[Name]) -> Element {
    let mut out = Element::new(item.interned_name().clone());
    for (k, v) in item.attrs() {
        out.set_attr(k.clone(), v.clone());
    }
    for c in item.child_elements() {
        if fields.iter().any(|f| c.interned_name() == f) {
            out.push_child(Node::Element(c.clone()));
        }
    }
    out
}

/// Join-key normalization: numeric values compare numerically
/// (`"1.0"` joins `"1"`), everything else exactly (after trim).
///
/// Numeric keys are the parsed `f64`'s bit pattern (NaNs collapsed to
/// one), which identifies exactly the values the old
/// `format!("#num:{n}")` key did — Rust's float formatting is
/// round-trippable, so distinct non-NaN floats never share a rendering
/// and `-0.0` keeps its sign — without building a `String` per value.
fn num_key(trimmed: &str) -> Option<u64> {
    let n: f64 = trimmed.parse().ok()?;
    Some(if n.is_nan() {
        f64::NAN.to_bits()
    } else {
        n.to_bits()
    })
}

/// Per-probe/per-build dedup sets sized for the common case: join keys
/// per item are almost always one or two, so membership starts as a
/// linear scan over a tiny vector (no hashing, cache-resident) and
/// spills into a `HashSet` past [`SPILL`] so adversarial high-fanout
/// items stay near-linear instead of degrading to O(n²).
const SPILL: usize = 8;

#[derive(Default)]
struct SmallSet<T> {
    vec: Vec<T>,
    set: HashSet<T>,
}

impl<T: Eq + Hash + Copy> SmallSet<T> {
    /// Inserts `v`; returns whether it was new.
    fn insert(&mut self, v: T) -> bool {
        if self.set.is_empty() {
            if self.vec.contains(&v) {
                return false;
            }
            if self.vec.len() < SPILL {
                self.vec.push(v);
                return true;
            }
            self.set.extend(self.vec.drain(..));
        }
        self.set.insert(v)
    }

    fn clear(&mut self) {
        self.vec.clear();
        self.set.clear();
    }
}

/// [`SmallSet`] for string keys: membership tests borrow (`&str`), the
/// owned copy is only made for genuinely new keys.
#[derive(Default)]
struct SmallTextSet {
    vec: Vec<String>,
    set: HashSet<String>,
}

impl SmallTextSet {
    fn insert(&mut self, v: &str) -> bool {
        if self.set.is_empty() {
            if self.vec.iter().any(|s| s == v) {
                return false;
            }
            if self.vec.len() < SPILL {
                self.vec.push(v.to_owned());
                return true;
            }
            self.set.extend(self.vec.drain(..));
        }
        if self.set.contains(v) {
            return false;
        }
        self.set.insert(v.to_owned())
    }

    fn clear(&mut self) {
        self.vec.clear();
        self.set.clear();
    }
}

/// The build-side index. Numeric and string keys hash separately so
/// the probe side can look up with a borrowed `&str` (no per-probe key
/// allocation); string keys additionally *borrow from the build batch*
/// when their value is a plain text field (the overwhelmingly common
/// case), so indexing allocates nothing per key either. Mixed-content
/// values — whose text only exists as a temporary concatenation — fall
/// into the small owned side table.
///
/// Hashing is the interner's multiply-rotate FxHash: the index lives
/// for one evaluation and is sized by one batch, so the SipHash DoS
/// guarantee buys nothing here (see [`mqp_xml::FxBuildHasher`]) while
/// its per-key cost on short join keys is measurable.
struct JoinIndex<'a> {
    num: HashMap<u64, Vec<usize>, mqp_xml::FxBuildHasher>,
    text: HashMap<&'a str, Vec<usize>, mqp_xml::FxBuildHasher>,
    text_owned: HashMap<String, Vec<usize>, mqp_xml::FxBuildHasher>,
}

impl<'a> JoinIndex<'a> {
    fn with_capacity(n: usize) -> Self {
        JoinIndex {
            num: HashMap::with_capacity_and_hasher(n, Default::default()),
            text: HashMap::with_capacity_and_hasher(n, Default::default()),
            text_owned: HashMap::default(),
        }
    }

    /// Both string tables that may hold `trimmed` (a value can be a
    /// plain text field on one build item and mixed content on
    /// another).
    fn text_matches(&self, trimmed: &str) -> [Option<&[usize]>; 2] {
        [
            self.text.get(trimmed).map(Vec::as_slice),
            (!self.text_owned.is_empty())
                .then(|| self.text_owned.get(trimmed).map(Vec::as_slice))
                .flatten(),
        ]
    }
}

/// Hash equi-join. Output items are `<tuple>` elements containing the
/// matched left and right items, in that order. An item with several
/// values under the key path matches on any of them (existential, like
/// predicates), but each (left, right) pair appears at most once.
///
/// Inputs are borrowed batches; key extraction streams through
/// [`Path::for_each_value`] (no per-item `Vec<String>`), and only the
/// output `<tuple>` wrappers allocate.
fn hash_join(left: &Batch, right: &Batch, left_path: &Path, right_path: &Path) -> Batch {
    use std::borrow::Cow;

    // Build on the smaller side.
    let (build, probe, build_path, probe_path, build_is_left) = if left.len() <= right.len() {
        (left, right, left_path, right_path, true)
    } else {
        (right, left, right_path, left_path, false)
    };
    let mut index = JoinIndex::with_capacity(build.len());
    let mut seen_num = SmallSet::<u64>::default();
    let mut seen_text = SmallTextSet::default();
    for (i, item) in build.iter().enumerate() {
        seen_num.clear();
        seen_text.clear();
        build_path.for_each_value(item, &mut |v| {
            let t = v.trim();
            if let Some(bits) = num_key(t) {
                if seen_num.insert(bits) {
                    index.num.entry(bits).or_default().push(i);
                }
            } else if seen_text.insert(t) {
                match v {
                    // Plain text fields borrow straight from the build
                    // batch.
                    Cow::Borrowed(s) => index.text.entry(s.trim()).or_default().push(i),
                    // Mixed content: the concatenated text is a
                    // temporary, so this key must be owned.
                    Cow::Owned(s) => index
                        .text_owned
                        .entry(s.trim().to_owned())
                        .or_default()
                        .push(i),
                }
            }
        });
    }
    let mut out = Batch::new();
    let mut matched: Vec<usize> = Vec::new();
    let mut matched_seen = SmallSet::<usize>::default();
    // A numeric build key never lands in the text tables (and vice
    // versa), so when one class is absent its classification work can
    // be skipped wholesale on the probe side — an all-text join never
    // attempts a float parse per probe value.
    let no_num_keys = index.num.is_empty();
    let tuple_name = Name::new("tuple");
    for probe_item in probe.iter() {
        matched.clear();
        matched_seen.clear();
        probe_path.for_each_value(probe_item, &mut |v| {
            let t = v.trim();
            let hits = if no_num_keys {
                index.text_matches(t)
            } else {
                match num_key(t) {
                    Some(bits) => [index.num.get(&bits).map(Vec::as_slice), None],
                    None => index.text_matches(t),
                }
            };
            for idxs in hits.into_iter().flatten() {
                for &i in idxs {
                    if matched_seen.insert(i) {
                        matched.push(i);
                    }
                }
            }
        });
        matched.sort_unstable();
        for &i in &matched {
            let (l, r) = if build_is_left {
                (&build[i], probe_item)
            } else {
                (probe_item, &build[i])
            };
            out.push_item(
                Element::new(tuple_name.clone())
                    .child(Node::Element(l.clone()))
                    .child(Node::Element(r.clone())),
            );
        }
    }
    out
}

/// Aggregation to a single result item, named after the function, e.g.
/// `<count>3</count>` or `<sum>42.5</sum>`. Non-numeric values are
/// skipped by numeric aggregates; an empty input yields `<count>0</count>`
/// or an empty-texted element for the others.
fn aggregate(func: AggFunc, path: Option<&Path>, items: &Batch) -> Element {
    let numbers = || -> Vec<f64> {
        let mut out = Vec::new();
        for i in items.iter() {
            match path {
                Some(p) => p.for_each_value(i, &mut |v| {
                    if let Ok(n) = v.trim().parse::<f64>() {
                        out.push(n);
                    }
                }),
                None => {
                    if let Ok(n) = i.deep_text().trim().parse::<f64>() {
                        out.push(n);
                    }
                }
            }
        }
        out
    };
    let text = match func {
        AggFunc::Count => items.len().to_string(),
        AggFunc::Sum => format_num(numbers().iter().sum()),
        AggFunc::Min => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.min(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Max => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Avg => {
            let ns = numbers();
            if ns.is_empty() {
                String::new()
            } else {
                format_num(ns.iter().sum::<f64>() / ns.len() as f64)
            }
        }
    };
    Element::new(func.name()).text(text)
}

fn format_num(n: f64) -> String {
    // Integral results print without the trailing ".0" so counts and
    // sums look like the paper's examples.
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Top-n by key value: shuffles item handles, never items. Numeric keys
/// sort numerically; items missing the key sort last. Ties break by
/// original position (stable).
fn top_n(items: Batch, n: usize, key: &Path, ascending: bool) -> Batch {
    #[derive(PartialEq, PartialOrd)]
    enum K {
        Num(f64),
        Str(String),
        Missing,
    }
    let key_of = |e: &Element| -> K {
        match key.first_value(e) {
            Some(v) => match v.parse::<f64>() {
                Ok(n) => K::Num(n),
                Err(_) => K::Str(v),
            },
            None => K::Missing,
        }
    };
    let mut keyed: Vec<(K, usize, Arc<Element>)> = items
        .into_iter()
        .enumerate()
        .map(|(i, h)| (key_of(&h), i, h))
        .collect();
    keyed.sort_by(|a, b| {
        let ord = match (&a.0, &b.0) {
            (K::Num(x), K::Num(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
            (K::Str(x), K::Str(y)) => x.cmp(y),
            (K::Num(_), K::Str(_)) => std::cmp::Ordering::Less,
            (K::Str(_), K::Num(_)) => std::cmp::Ordering::Greater,
            (K::Missing, K::Missing) => std::cmp::Ordering::Equal,
            (K::Missing, _) => std::cmp::Ordering::Greater,
            (_, K::Missing) => std::cmp::Ordering::Less,
        };
        let ord = if ascending { ord } else { ord.reverse() };
        ord.then(a.1.cmp(&b.1))
    });
    keyed.into_iter().take(n).map(|(_, _, h)| h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::JoinCond;
    use mqp_xml::parse;

    fn items(xmls: &[&str]) -> Vec<Element> {
        xmls.iter().map(|s| parse(s).unwrap()).collect()
    }

    fn cds() -> Vec<Element> {
        items(&[
            "<item><title>Physical Graffiti</title><price>12</price></item>",
            "<item><title>Houses of the Holy</title><price>8</price></item>",
            "<item><title>Kashmir Live</title><price>9.5</price></item>",
        ])
    }

    #[test]
    fn select_filters() {
        let p = Plan::select("price < 10", Plan::data(cds()));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|i| i.field_f64("price").unwrap() < 10.0));
    }

    #[test]
    fn select_shares_input_handles() {
        let p = Plan::select("price < 10", Plan::data(cds()));
        let out = eval_const(&p).unwrap();
        let Plan::Select { input, .. } = &p else {
            unreachable!()
        };
        let data = input.as_data().unwrap();
        // The surviving items are the *same* allocations as the leaf's.
        assert!(Arc::ptr_eq(&out.handles()[0], &data.handles()[1]));
        assert!(Arc::ptr_eq(&out.handles()[1], &data.handles()[2]));
    }

    #[test]
    fn project_keeps_listed_fields() {
        let p = Plan::project(["title"], Plan::data(cds()));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out[0].first("title").is_some());
        assert!(out[0].first("price").is_none());
        assert_eq!(out[0].name(), "item");
    }

    #[test]
    fn union_concatenates() {
        let p = Plan::union([Plan::data(cds()), Plan::data(cds())]);
        assert_eq!(eval_const(&p).unwrap().len(), 6);
    }

    #[test]
    fn join_matches_keys() {
        let songs = items(&["<song><title>Kashmir</title><album>Physical Graffiti</album></song>"]);
        let p = Plan::join(
            JoinCond::on("song/album", "item/title"),
            Plan::data(songs),
            Plan::data(cds()),
        );
        // Neither side's items are named song/item at the top — paths are
        // relative to the item element, whose own name is song/item. A
        // relative path starts at the item's children, so use the field
        // names directly instead.
        let out = eval_const(&p).unwrap();
        // 'song/album' relative to a <song> element looks for a child
        // <song> — no match. Expect empty here; the correct paths are
        // tested below.
        assert!(out.is_empty());

        let p2 = Plan::join(
            JoinCond::on("album", "title"),
            Plan::data(items(&[
                "<song><title>Kashmir</title><album>Physical Graffiti</album></song>",
            ])),
            Plan::data(cds()),
        );
        let out2 = eval_const(&p2).unwrap();
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].name(), "tuple");
        let kids: Vec<&Element> = out2[0].child_elements().collect();
        assert_eq!(kids[0].name(), "song");
        assert_eq!(kids[1].name(), "item");
    }

    #[test]
    fn join_numeric_key_normalization() {
        let l = items(&["<a><k>1.0</k></a>"]);
        let r = items(&["<b><k>1</k></b>", "<b><k>01</k></b>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        assert_eq!(eval_const(&p).unwrap().len(), 2);
    }

    #[test]
    fn join_left_right_order_independent_of_build_side() {
        // Force build on the right (smaller) and verify tuple order is
        // still (left, right).
        let l = items(&["<l><k>x</k></l>", "<l><k>x</k></l>"]);
        let r = items(&["<r><k>x</k></r>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 2);
        for t in out.iter() {
            let kids: Vec<&Element> = t.child_elements().collect();
            assert_eq!(kids[0].name(), "l");
            assert_eq!(kids[1].name(), "r");
        }
    }

    #[test]
    fn join_duplicate_key_values_pair_once() {
        let l = items(&["<l><k>x</k><k>x</k></l>"]);
        let r = items(&["<r><k>x</k></r>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        assert_eq!(eval_const(&p).unwrap().len(), 1);
    }

    #[test]
    fn join_high_fanout_keys_stay_deduped() {
        // One probe item carrying far more than SPILL distinct values,
        // several of them repeated: every build match pairs exactly
        // once, in build order — the small-set-then-hash path.
        let mut probe = String::from("<p>");
        for i in 0..40 {
            probe.push_str(&format!("<k>v{}</k>", i % 20));
        }
        for i in 0..30 {
            probe.push_str(&format!("<k>{}</k>", i % 15)); // numeric keys
        }
        probe.push_str("</p>");
        let build: Vec<String> = (0..20)
            .map(|i| format!("<b><k>v{i}</k><k>{i}</k></b>"))
            .collect();
        let build_items: Vec<Element> = build.iter().map(|s| parse(s).unwrap()).collect();
        let p = Plan::join(
            JoinCond::on("k", "k"),
            Plan::data([parse(&probe).unwrap()]),
            Plan::data(build_items),
        );
        let out = eval_const(&p).unwrap();
        // 20 build items each match (via v0..v19 or 0..14), once each.
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn aggregates() {
        let d = Plan::data(cds());
        let count = eval_const(&Plan::aggregate(AggFunc::Count, None, d.clone())).unwrap();
        assert_eq!(count[0].name(), "count");
        assert_eq!(count[0].deep_text(), "3");
        let sum = eval_const(&Plan::aggregate(AggFunc::Sum, Some("price"), d.clone())).unwrap();
        assert_eq!(sum[0].deep_text(), "29.5");
        let min = eval_const(&Plan::aggregate(AggFunc::Min, Some("price"), d.clone())).unwrap();
        assert_eq!(min[0].deep_text(), "8");
        let max = eval_const(&Plan::aggregate(AggFunc::Max, Some("price"), d.clone())).unwrap();
        assert_eq!(max[0].deep_text(), "12");
        let avg = eval_const(&Plan::aggregate(AggFunc::Avg, Some("price"), d)).unwrap();
        let v: f64 = avg[0].deep_text().parse().unwrap();
        assert!((v - 29.5 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_empty_input() {
        let count = eval_const(&Plan::aggregate(AggFunc::Count, None, Plan::data([]))).unwrap();
        assert_eq!(count[0].deep_text(), "0");
        let min = eval_const(&Plan::aggregate(AggFunc::Min, Some("x"), Plan::data([]))).unwrap();
        assert_eq!(min[0].deep_text(), "");
    }

    #[test]
    fn aggregate_skips_nan_free_text_but_accepts_nan_literal() {
        // "NaN" parses as f64::NAN: min/max fold must not poison the
        // whole aggregate — f64::min/max ignore the NaN side.
        let d = Plan::data(items(&[
            "<i><p>5</p></i>",
            "<i><p>NaN</p></i>",
            "<i><p>2</p></i>",
            "<i><p>junk</p></i>",
        ]));
        let min = eval_const(&Plan::aggregate(AggFunc::Min, Some("p"), d.clone())).unwrap();
        assert_eq!(min[0].deep_text(), "2");
        let max = eval_const(&Plan::aggregate(AggFunc::Max, Some("p"), d.clone())).unwrap();
        assert_eq!(max[0].deep_text(), "5");
        // count counts items (not numeric values).
        let count = eval_const(&Plan::aggregate(AggFunc::Count, None, d)).unwrap();
        assert_eq!(count[0].deep_text(), "4");
    }

    #[test]
    fn top_n_ascending_and_descending() {
        let cheap2 = eval_const(&Plan::top_n(2, "price", true, Plan::data(cds()))).unwrap();
        assert_eq!(cheap2.len(), 2);
        assert_eq!(cheap2[0].field_f64("price"), Some(8.0));
        assert_eq!(cheap2[1].field_f64("price"), Some(9.5));
        let dear1 = eval_const(&Plan::top_n(1, "price", false, Plan::data(cds()))).unwrap();
        assert_eq!(dear1[0].field_f64("price"), Some(12.0));
    }

    #[test]
    fn top_n_missing_keys_sort_last() {
        let mixed = items(&["<i><p>5</p></i>", "<i/>", "<i><p>1</p></i>"]);
        let out = eval_const(&Plan::top_n(3, "p", true, Plan::data(mixed))).unwrap();
        assert_eq!(out[0].field_f64("p"), Some(1.0));
        assert_eq!(out[1].field_f64("p"), Some(5.0));
        assert!(out[2].first("p").is_none());
    }

    #[test]
    fn top_n_nan_keys_and_ties_are_position_stable() {
        // NaN keys compare Equal to everything numeric (partial_cmp →
        // None → Equal), so ordering falls back to original position;
        // exact ties likewise. Both the batched and legacy evaluators
        // must agree on this order.
        let mixed = items(&[
            "<i id=\"a\"><p>NaN</p></i>",
            "<i id=\"b\"><p>1</p></i>",
            "<i id=\"c\"><p>NaN</p></i>",
            "<i id=\"d\"><p>1</p></i>",
        ]);
        let plan = Plan::top_n(4, "p", true, Plan::data(mixed));
        let out = eval_const(&plan).unwrap();
        let ids: Vec<&str> = out.iter().map(|e| e.get_attr("id").unwrap()).collect();
        let legacy: Vec<Element> = crate::legacy::eval_const(&plan).unwrap();
        let legacy_ids: Vec<&str> = legacy.iter().map(|e| e.get_attr("id").unwrap()).collect();
        assert_eq!(ids, legacy_ids);
        // Ties (and NaN's Equal comparisons) preserve input order.
        assert_eq!(ids, ["a", "b", "c", "d"]);
    }

    #[test]
    fn or_evaluates_first_alternative() {
        let p = Plan::or([Plan::data(cds()), Plan::url("http://unreachable/")]);
        assert_eq!(eval_const(&p).unwrap().len(), 3);
    }

    #[test]
    fn empty_or_errors() {
        assert_eq!(eval_const(&Plan::Or(Vec::new())), Err(EvalError::EmptyOr));
    }

    #[test]
    fn display_is_transparent() {
        let p = Plan::display("c:1", Plan::data(cds()));
        assert_eq!(eval_const(&p).unwrap().len(), 3);
    }

    #[test]
    fn unresolved_leaves_error() {
        assert!(matches!(
            eval_const(&Plan::url("http://x/")),
            Err(EvalError::UnresolvedUrl(_))
        ));
        assert!(matches!(
            eval_const(&Plan::urn("urn:ForSale:Portland-CDs")),
            Err(EvalError::UnresolvedUrn(_))
        ));
    }

    #[test]
    fn resolver_supplies_urls() {
        struct Fixed(Batch);
        impl Resolver for Fixed {
            fn resolve_url(&self, _u: &UrlRef) -> Option<Batch> {
                Some(self.0.clone())
            }
            fn resolve_urn(&self, _u: &UrnRef) -> Option<Batch> {
                None
            }
        }
        let p = Plan::select("price < 10", Plan::url("http://seller/"));
        let out = eval(&p, &Fixed(cds().into_iter().collect())).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn figure4b_reduction_semantics() {
        // Figure 4(b): the seller substitutes its CD data for its URL and
        // evaluates the select locally.
        let seller_data = cds();
        let plan = Plan::select("price < 10", Plan::data(seller_data));
        let reduced = eval_const(&plan).unwrap();
        assert_eq!(reduced.len(), 2);
        // The reduced result becomes a constant data leaf — without
        // copying the shared items.
        let constant = Plan::data_shared(reduced);
        assert!(constant.is_fully_evaluated());
    }

    #[test]
    fn compiled_plan_reusable_across_evals() {
        let p = Plan::select("price < 10", Plan::data(cds()));
        let compiled = compile(&p);
        assert_eq!(compiled.eval(&NoResolver).unwrap().len(), 2);
        assert_eq!(compiled.eval(&NoResolver).unwrap().len(), 2);
    }

    #[test]
    fn small_set_spills_past_cap() {
        let mut s = SmallSet::<u64>::default();
        for i in 0..100 {
            assert!(s.insert(i));
            assert!(!s.insert(i));
        }
        for i in 0..100 {
            assert!(!s.insert(i));
        }
        s.clear();
        assert!(s.insert(0));

        let mut t = SmallTextSet::default();
        for i in 0..100 {
            assert!(t.insert(&format!("k{i}")));
            assert!(!t.insert(&format!("k{i}")));
        }
        t.clear();
        assert!(t.insert("k0"));
    }
}
