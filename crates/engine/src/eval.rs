//! Plan evaluation over in-memory XML collections.

use std::collections::HashMap;
use std::fmt;

use mqp_algebra::plan::{Plan, UrlRef, UrnRef};
use mqp_algebra::predicate::AggFunc;
use mqp_xml::xpath::Path;
use mqp_xml::{Element, Node};

/// Supplies data for `Url`/`Urn` leaves during evaluation. The peer
/// layer implements this against its local store; a URL is resolvable
/// when it points at this peer (or the policy allows fetching), a URN
/// when the local catalog maps it to local data.
pub trait Resolver {
    /// Items behind a URL leaf, or `None` if not locally resolvable.
    fn resolve_url(&self, url: &UrlRef) -> Option<Vec<Element>>;

    /// Items behind a URN leaf, or `None` if not locally resolvable.
    fn resolve_urn(&self, urn: &UrnRef) -> Option<Vec<Element>>;
}

/// A resolver that resolves nothing: evaluation succeeds only on plans
/// whose leaves are all verbatim data.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoResolver;

impl Resolver for NoResolver {
    fn resolve_url(&self, _url: &UrlRef) -> Option<Vec<Element>> {
        None
    }

    fn resolve_urn(&self, _urn: &UrnRef) -> Option<Vec<Element>> {
        None
    }
}

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A URL leaf the resolver could not supply.
    UnresolvedUrl(String),
    /// A URN leaf the resolver could not supply.
    UnresolvedUrn(String),
    /// An `Or` with no alternatives (forbidden by the codec, but plans
    /// can be built programmatically).
    EmptyOr,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnresolvedUrl(u) => write!(f, "unresolved URL {u}"),
            EvalError::UnresolvedUrn(u) => write!(f, "unresolved URN {u}"),
            EvalError::EmptyOr => write!(f, "empty or-node"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `plan` to a collection of items.
///
/// * `Or` evaluates its **first** alternative (the conjoint-union
///   semantics of §4.2 say any single alternative suffices; picking
///   among them is the policy manager's job *before* evaluation —
///   by the time a plan reaches the engine the choice is positional).
/// * `Display` is transparent: it evaluates its input (shipping the
///   result to the target is the peer layer's job).
pub fn eval(plan: &Plan, resolver: &impl Resolver) -> Result<Vec<Element>, EvalError> {
    match plan {
        Plan::Data { items, .. } => Ok(items.clone()),
        Plan::Url(u) => resolver
            .resolve_url(u)
            .ok_or_else(|| EvalError::UnresolvedUrl(u.href.clone())),
        Plan::Urn(u) => resolver
            .resolve_urn(u)
            .ok_or_else(|| EvalError::UnresolvedUrn(u.urn.to_string())),
        Plan::Select { pred, input } => {
            let items = eval(input, resolver)?;
            Ok(items.into_iter().filter(|i| pred.eval(i)).collect())
        }
        Plan::Project { fields, input } => {
            let items = eval(input, resolver)?;
            Ok(items.iter().map(|i| project_item(i, fields)).collect())
        }
        Plan::Join { on, left, right } => {
            let l = eval(left, resolver)?;
            let r = eval(right, resolver)?;
            Ok(hash_join(&l, &r, &on.left_path, &on.right_path))
        }
        Plan::Union(inputs) => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(eval(i, resolver)?);
            }
            Ok(out)
        }
        Plan::Or(alts) => {
            let first = alts.first().ok_or(EvalError::EmptyOr)?;
            eval(&first.plan, resolver)
        }
        Plan::Aggregate { func, path, input } => {
            let items = eval(input, resolver)?;
            Ok(vec![aggregate(*func, path.as_ref(), &items)])
        }
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => {
            let items = eval(input, resolver)?;
            Ok(top_n(items, *n, key, *ascending))
        }
        Plan::Display { input, .. } => eval(input, resolver),
    }
}

/// Evaluates a plan that must not need any resolution (all leaves are
/// verbatim data). Convenience for tests and for reducing sub-plans that
/// have already been fully bound.
pub fn eval_const(plan: &Plan) -> Result<Vec<Element>, EvalError> {
    eval(plan, &NoResolver)
}

/// Projection: keeps the item's name and attributes, and only the direct
/// child elements whose names are listed.
fn project_item(item: &Element, fields: &[String]) -> Element {
    let mut out = Element::new(item.name());
    for (k, v) in item.attrs() {
        out.set_attr(k.clone(), v.clone());
    }
    for c in item.child_elements() {
        if fields.iter().any(|f| f == c.name()) {
            out.push_child(Node::Element(c.clone()));
        }
    }
    out
}

/// Join-key normalization: numeric values compare numerically
/// (`"1.0"` joins `"1"`), everything else exactly (after trim).
///
/// Numeric keys are the parsed `f64`'s bit pattern (NaNs collapsed to
/// one), which identifies exactly the values the old
/// `format!("#num:{n}")` key did — Rust's float formatting is
/// round-trippable, so distinct non-NaN floats never share a rendering
/// and `-0.0` keeps its sign — without building a `String` per value.
fn num_key(trimmed: &str) -> Option<u64> {
    let n: f64 = trimmed.parse().ok()?;
    Some(if n.is_nan() {
        f64::NAN.to_bits()
    } else {
        n.to_bits()
    })
}

/// The build-side index: numeric and string keys hash separately so
/// the probe side can look up with a borrowed `&str` (no per-probe
/// key allocation).
#[derive(Default)]
struct JoinIndex {
    num: HashMap<u64, Vec<usize>>,
    text: HashMap<String, Vec<usize>>,
}

impl JoinIndex {
    fn lookup(&self, value: &str) -> Option<&[usize]> {
        let t = value.trim();
        match num_key(t) {
            Some(bits) => self.num.get(&bits),
            None => self.text.get(t),
        }
        .map(Vec::as_slice)
    }
}

/// Hash equi-join. Output items are `<tuple>` elements containing the
/// matched left and right items, in that order. An item with several
/// values under the key path matches on any of them (existential, like
/// predicates), but each (left, right) pair appears at most once.
fn hash_join(
    left: &[Element],
    right: &[Element],
    left_path: &Path,
    right_path: &Path,
) -> Vec<Element> {
    // Build on the smaller side.
    let (build, probe, build_path, probe_path, build_is_left) = if left.len() <= right.len() {
        (left, right, left_path, right_path, true)
    } else {
        (right, left, right_path, left_path, false)
    };
    let mut index = JoinIndex::default();
    let mut seen_num: Vec<u64> = Vec::new();
    let mut seen_text: Vec<String> = Vec::new();
    for (i, item) in build.iter().enumerate() {
        seen_num.clear();
        seen_text.clear();
        for v in build_path.select_values(item) {
            let t = v.trim();
            match num_key(t) {
                Some(bits) => {
                    if !seen_num.contains(&bits) {
                        index.num.entry(bits).or_default().push(i);
                        seen_num.push(bits);
                    }
                }
                None => {
                    if !seen_text.iter().any(|s| s == t) {
                        index.text.entry(t.to_owned()).or_default().push(i);
                        seen_text.push(t.to_owned());
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut matched: Vec<usize> = Vec::new();
    for probe_item in probe {
        matched.clear();
        for v in probe_path.select_values(probe_item) {
            if let Some(idxs) = index.lookup(&v) {
                for &i in idxs {
                    if !matched.contains(&i) {
                        matched.push(i);
                    }
                }
            }
        }
        matched.sort_unstable();
        for &i in &matched {
            let (l, r) = if build_is_left {
                (&build[i], probe_item)
            } else {
                (probe_item, &build[i])
            };
            out.push(
                Element::new("tuple")
                    .child(Node::Element(l.clone()))
                    .child(Node::Element(r.clone())),
            );
        }
    }
    out
}

/// Aggregation to a single result item, named after the function, e.g.
/// `<count>3</count>` or `<sum>42.5</sum>`. Non-numeric values are
/// skipped by numeric aggregates; an empty input yields `<count>0</count>`
/// or an empty-texted element for the others.
fn aggregate(func: AggFunc, path: Option<&Path>, items: &[Element]) -> Element {
    let numbers = || -> Vec<f64> {
        items
            .iter()
            .flat_map(|i| match path {
                Some(p) => p.select_values(i),
                None => vec![i.deep_text().into_owned()],
            })
            .filter_map(|v| v.trim().parse::<f64>().ok())
            .collect()
    };
    let text = match func {
        AggFunc::Count => items.len().to_string(),
        AggFunc::Sum => format_num(numbers().iter().sum()),
        AggFunc::Min => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.min(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Max => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Avg => {
            let ns = numbers();
            if ns.is_empty() {
                String::new()
            } else {
                format_num(ns.iter().sum::<f64>() / ns.len() as f64)
            }
        }
    };
    Element::new(func.name()).text(text)
}

fn format_num(n: f64) -> String {
    // Integral results print without the trailing ".0" so counts and
    // sums look like the paper's examples.
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Top-n by key value. Numeric keys sort numerically; items missing the
/// key sort last. Ties break by original position (stable).
fn top_n(mut items: Vec<Element>, n: usize, key: &Path, ascending: bool) -> Vec<Element> {
    #[derive(PartialEq, PartialOrd)]
    enum K {
        Num(f64),
        Str(String),
        Missing,
    }
    let key_of = |e: &Element| -> K {
        match key.first_value(e) {
            Some(v) => match v.parse::<f64>() {
                Ok(n) => K::Num(n),
                Err(_) => K::Str(v),
            },
            None => K::Missing,
        }
    };
    let mut keyed: Vec<(K, usize, Element)> = items
        .drain(..)
        .enumerate()
        .map(|(i, e)| (key_of(&e), i, e))
        .collect();
    keyed.sort_by(|a, b| {
        let ord = match (&a.0, &b.0) {
            (K::Num(x), K::Num(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
            (K::Str(x), K::Str(y)) => x.cmp(y),
            (K::Num(_), K::Str(_)) => std::cmp::Ordering::Less,
            (K::Str(_), K::Num(_)) => std::cmp::Ordering::Greater,
            (K::Missing, K::Missing) => std::cmp::Ordering::Equal,
            (K::Missing, _) => std::cmp::Ordering::Greater,
            (_, K::Missing) => std::cmp::Ordering::Less,
        };
        let ord = if ascending { ord } else { ord.reverse() };
        ord.then(a.1.cmp(&b.1))
    });
    keyed.into_iter().take(n).map(|(_, _, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::JoinCond;
    use mqp_xml::parse;

    fn items(xmls: &[&str]) -> Vec<Element> {
        xmls.iter().map(|s| parse(s).unwrap()).collect()
    }

    fn cds() -> Vec<Element> {
        items(&[
            "<item><title>Physical Graffiti</title><price>12</price></item>",
            "<item><title>Houses of the Holy</title><price>8</price></item>",
            "<item><title>Kashmir Live</title><price>9.5</price></item>",
        ])
    }

    #[test]
    fn select_filters() {
        let p = Plan::select("price < 10", Plan::data(cds()));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|i| i.field_f64("price").unwrap() < 10.0));
    }

    #[test]
    fn project_keeps_listed_fields() {
        let p = Plan::project(["title"], Plan::data(cds()));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out[0].first("title").is_some());
        assert!(out[0].first("price").is_none());
        assert_eq!(out[0].name(), "item");
    }

    #[test]
    fn union_concatenates() {
        let p = Plan::union([Plan::data(cds()), Plan::data(cds())]);
        assert_eq!(eval_const(&p).unwrap().len(), 6);
    }

    #[test]
    fn join_matches_keys() {
        let songs = items(&["<song><title>Kashmir</title><album>Physical Graffiti</album></song>"]);
        let p = Plan::join(
            JoinCond::on("song/album", "item/title"),
            Plan::data(songs),
            Plan::data(cds()),
        );
        // Neither side's items are named song/item at the top — paths are
        // relative to the item element, whose own name is song/item. A
        // relative path starts at the item's children, so use the field
        // names directly instead.
        let out = eval_const(&p).unwrap();
        // 'song/album' relative to a <song> element looks for a child
        // <song> — no match. Expect empty here; the correct paths are
        // tested below.
        assert!(out.is_empty());

        let p2 = Plan::join(
            JoinCond::on("album", "title"),
            Plan::data(items(&[
                "<song><title>Kashmir</title><album>Physical Graffiti</album></song>",
            ])),
            Plan::data(cds()),
        );
        let out2 = eval_const(&p2).unwrap();
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].name(), "tuple");
        let kids: Vec<&Element> = out2[0].child_elements().collect();
        assert_eq!(kids[0].name(), "song");
        assert_eq!(kids[1].name(), "item");
    }

    #[test]
    fn join_numeric_key_normalization() {
        let l = items(&["<a><k>1.0</k></a>"]);
        let r = items(&["<b><k>1</k></b>", "<b><k>01</k></b>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        assert_eq!(eval_const(&p).unwrap().len(), 2);
    }

    #[test]
    fn join_left_right_order_independent_of_build_side() {
        // Force build on the right (smaller) and verify tuple order is
        // still (left, right).
        let l = items(&["<l><k>x</k></l>", "<l><k>x</k></l>"]);
        let r = items(&["<r><k>x</k></r>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        let out = eval_const(&p).unwrap();
        assert_eq!(out.len(), 2);
        for t in &out {
            let kids: Vec<&Element> = t.child_elements().collect();
            assert_eq!(kids[0].name(), "l");
            assert_eq!(kids[1].name(), "r");
        }
    }

    #[test]
    fn join_duplicate_key_values_pair_once() {
        let l = items(&["<l><k>x</k><k>x</k></l>"]);
        let r = items(&["<r><k>x</k></r>"]);
        let p = Plan::join(JoinCond::on("k", "k"), Plan::data(l), Plan::data(r));
        assert_eq!(eval_const(&p).unwrap().len(), 1);
    }

    #[test]
    fn aggregates() {
        let d = Plan::data(cds());
        let count = eval_const(&Plan::aggregate(AggFunc::Count, None, d.clone())).unwrap();
        assert_eq!(count[0].name(), "count");
        assert_eq!(count[0].deep_text(), "3");
        let sum = eval_const(&Plan::aggregate(AggFunc::Sum, Some("price"), d.clone())).unwrap();
        assert_eq!(sum[0].deep_text(), "29.5");
        let min = eval_const(&Plan::aggregate(AggFunc::Min, Some("price"), d.clone())).unwrap();
        assert_eq!(min[0].deep_text(), "8");
        let max = eval_const(&Plan::aggregate(AggFunc::Max, Some("price"), d.clone())).unwrap();
        assert_eq!(max[0].deep_text(), "12");
        let avg = eval_const(&Plan::aggregate(AggFunc::Avg, Some("price"), d)).unwrap();
        let v: f64 = avg[0].deep_text().parse().unwrap();
        assert!((v - 29.5 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_empty_input() {
        let count = eval_const(&Plan::aggregate(AggFunc::Count, None, Plan::data([]))).unwrap();
        assert_eq!(count[0].deep_text(), "0");
        let min = eval_const(&Plan::aggregate(AggFunc::Min, Some("x"), Plan::data([]))).unwrap();
        assert_eq!(min[0].deep_text(), "");
    }

    #[test]
    fn top_n_ascending_and_descending() {
        let cheap2 = eval_const(&Plan::top_n(2, "price", true, Plan::data(cds()))).unwrap();
        assert_eq!(cheap2.len(), 2);
        assert_eq!(cheap2[0].field_f64("price"), Some(8.0));
        assert_eq!(cheap2[1].field_f64("price"), Some(9.5));
        let dear1 = eval_const(&Plan::top_n(1, "price", false, Plan::data(cds()))).unwrap();
        assert_eq!(dear1[0].field_f64("price"), Some(12.0));
    }

    #[test]
    fn top_n_missing_keys_sort_last() {
        let mixed = items(&["<i><p>5</p></i>", "<i/>", "<i><p>1</p></i>"]);
        let out = eval_const(&Plan::top_n(3, "p", true, Plan::data(mixed))).unwrap();
        assert_eq!(out[0].field_f64("p"), Some(1.0));
        assert_eq!(out[1].field_f64("p"), Some(5.0));
        assert!(out[2].first("p").is_none());
    }

    #[test]
    fn or_evaluates_first_alternative() {
        let p = Plan::or([Plan::data(cds()), Plan::url("http://unreachable/")]);
        assert_eq!(eval_const(&p).unwrap().len(), 3);
    }

    #[test]
    fn display_is_transparent() {
        let p = Plan::display("c:1", Plan::data(cds()));
        assert_eq!(eval_const(&p).unwrap().len(), 3);
    }

    #[test]
    fn unresolved_leaves_error() {
        assert!(matches!(
            eval_const(&Plan::url("http://x/")),
            Err(EvalError::UnresolvedUrl(_))
        ));
        assert!(matches!(
            eval_const(&Plan::urn("urn:ForSale:Portland-CDs")),
            Err(EvalError::UnresolvedUrn(_))
        ));
    }

    #[test]
    fn resolver_supplies_urls() {
        struct Fixed(Vec<Element>);
        impl Resolver for Fixed {
            fn resolve_url(&self, _u: &UrlRef) -> Option<Vec<Element>> {
                Some(self.0.clone())
            }
            fn resolve_urn(&self, _u: &UrnRef) -> Option<Vec<Element>> {
                None
            }
        }
        let p = Plan::select("price < 10", Plan::url("http://seller/"));
        let out = eval(&p, &Fixed(cds())).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn figure4b_reduction_semantics() {
        // Figure 4(b): the seller substitutes its CD data for its URL and
        // evaluates the select locally.
        let seller_data = cds();
        let plan = Plan::select("price < 10", Plan::data(seller_data));
        let reduced = eval_const(&plan).unwrap();
        assert_eq!(reduced.len(), 2);
        // The reduced result becomes a constant data leaf.
        let constant = Plan::data(reduced);
        assert!(constant.is_fully_evaluated());
    }
}
