//! The pre-batching, materializing tree-walker — frozen as a baseline.
//!
//! This is the evaluator the batched engine replaced, kept verbatim so
//! that (a) `bench_report` can measure legacy-vs-batched speedups as
//! same-run ratios on the same machine (`BENCH_engine.json`), and (b)
//! the equivalence property tests in `proptests.rs` have an oracle:
//! for any plan over any collections, [`legacy::eval`](eval) and the
//! batched [`crate::eval`] must produce identical item sequences.
//!
//! Its cost profile is the old one on purpose: `Data` leaves deep-copy
//! every item per evaluation, resolver results are materialized into
//! owned `Vec<Element>`s (the whole-collection clone the old store
//! handed out), predicates re-parse literals per item, join keys build
//! a `Vec<String>` per item, and dedup is `Vec::contains` linear scans.
//! Do not "fix" those: they are the measurement.

use std::collections::HashMap;

use mqp_algebra::plan::Plan;
use mqp_algebra::predicate::{AggFunc, Predicate};
use mqp_xml::xpath::{NodeTest, Path, Predicate as PathPred, Step};
use mqp_xml::{Element, Node};

use crate::eval::{EvalError, NoResolver, Resolver};

// ----------------------------------------------------------------------
// The old path matcher: per-step frontier vectors, raw string compares
// per node (the interner existed but paths didn't use it — exactly the
// state the batched engine replaced), and owned `String` values even
// for plain text fields.
// ----------------------------------------------------------------------

fn test_element(e: &Element, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(n) => e.name() == n.as_str(),
        NodeTest::Any => true,
        NodeTest::Text => false,
    }
}

fn passes_all(e: &Element, preds: &[PathPred], position: usize) -> bool {
    preds.iter().all(|p| passes(e, p, position))
}

fn passes(e: &Element, pred: &PathPred, position: usize) -> bool {
    match pred {
        PathPred::Position(n) => position == *n,
        PathPred::Attr(name, op, lit) => match e.get_attr(name.as_str()) {
            Some(v) => op.apply(v, lit),
            None => false,
        },
        PathPred::Field(name, op, lit) => match e.field(name.as_str()) {
            Some(v) => op.apply(&v, lit),
            None => false,
        },
        PathPred::OwnText(op, lit) => op.apply(e.deep_text().trim(), lit),
    }
}

fn select_elements<'a>(path: &Path, root: &'a Element) -> Vec<&'a Element> {
    let mut current: Vec<&'a Element> = Vec::new();
    let mut steps = path.steps.iter();
    if path.absolute {
        let Some(first) = steps.next() else {
            return vec![root];
        };
        if matches!(first.test, NodeTest::Text) {
            return Vec::new();
        }
        if test_element(root, &first.test) && passes_all(root, &first.predicates, 0) {
            current.push(root);
        }
    } else {
        current.push(root);
    }
    for step in steps.clone() {
        if matches!(step.test, NodeTest::Text) {
            return Vec::new();
        }
    }
    let remaining: Vec<&Step> = if path.absolute {
        steps.collect()
    } else {
        path.steps.iter().collect()
    };
    for step in remaining {
        let mut next = Vec::new();
        for ctx in current {
            let mut idx = 0usize;
            for child in ctx.child_elements() {
                if test_element(child, &step.test) {
                    idx += 1;
                    if passes_all(child, &step.predicates, idx) {
                        next.push(child);
                    }
                }
            }
        }
        current = next;
    }
    current
}

fn select_values(path: &Path, root: &Element) -> Vec<String> {
    if let Some(last) = path.steps.last() {
        if matches!(last.test, NodeTest::Text) {
            let prefix = Path {
                absolute: path.absolute,
                steps: path.steps[..path.steps.len() - 1].to_vec(),
            };
            return select_elements(&prefix, root)
                .into_iter()
                .map(|e| e.direct_text().into_owned())
                .collect();
        }
    }
    select_elements(path, root)
        .into_iter()
        .map(|e| e.deep_text().into_owned())
        .collect()
}

fn first_value(path: &Path, root: &Element) -> Option<String> {
    select_values(path, root)
        .into_iter()
        .next()
        .map(|s| s.trim().to_owned())
}

/// Evaluates `plan` to an owned collection of items, materializing at
/// every step (see module docs). Same semantics as [`crate::eval`].
pub fn eval(plan: &Plan, resolver: &impl Resolver) -> Result<Vec<Element>, EvalError> {
    match plan {
        Plan::Data { items, .. } => Ok(items.to_vec()),
        Plan::Url(u) => resolver
            .resolve_url(u)
            .map(|b| b.to_vec())
            .ok_or_else(|| EvalError::UnresolvedUrl(u.href.clone())),
        Plan::Urn(u) => resolver
            .resolve_urn(u)
            .map(|b| b.to_vec())
            .ok_or_else(|| EvalError::UnresolvedUrn(u.urn.to_string())),
        Plan::Select { pred, input } => {
            let items = eval(input, resolver)?;
            Ok(items.into_iter().filter(|i| eval_pred(pred, i)).collect())
        }
        Plan::Project { fields, input } => {
            let items = eval(input, resolver)?;
            Ok(items.iter().map(|i| project_item(i, fields)).collect())
        }
        Plan::Join { on, left, right } => {
            let l = eval(left, resolver)?;
            let r = eval(right, resolver)?;
            Ok(hash_join(&l, &r, &on.left_path, &on.right_path))
        }
        Plan::Union(inputs) => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(eval(i, resolver)?);
            }
            Ok(out)
        }
        Plan::Or(alts) => {
            let first = alts.first().ok_or(EvalError::EmptyOr)?;
            eval(&first.plan, resolver)
        }
        Plan::Aggregate { func, path, input } => {
            let items = eval(input, resolver)?;
            Ok(vec![aggregate(*func, path.as_ref(), &items)])
        }
        Plan::TopN {
            n,
            key,
            ascending,
            input,
        } => {
            let items = eval(input, resolver)?;
            Ok(top_n(items, *n, key, *ascending))
        }
        Plan::Display { input, .. } => eval(input, resolver),
    }
}

/// [`eval`] with no resolution (all leaves verbatim data).
pub fn eval_const(plan: &Plan) -> Result<Vec<Element>, EvalError> {
    eval(plan, &NoResolver)
}

/// The old predicate evaluation: `select_values` collects a
/// `Vec<String>` of candidate values per item, and `Op::apply`
/// re-parses the comparison literal per value. (The current
/// `Predicate::eval` streams borrowed values; compiled predicates
/// additionally pre-parse the literal.)
fn eval_pred(pred: &Predicate, item: &Element) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::Cmp { path, op, value } => select_values(path, item)
            .iter()
            .any(|v| op.apply(v.trim(), value)),
        Predicate::And(ps) => ps.iter().all(|p| eval_pred(p, item)),
        Predicate::Or(ps) => ps.iter().any(|p| eval_pred(p, item)),
        Predicate::Not(p) => !eval_pred(p, item),
    }
}

/// Projection with per-child string compares (the old matcher).
fn project_item(item: &Element, fields: &[String]) -> Element {
    let mut out = Element::new(item.name());
    for (k, v) in item.attrs() {
        out.set_attr(k.clone(), v.clone());
    }
    for c in item.child_elements() {
        if fields.iter().any(|f| f == c.name()) {
            out.push_child(Node::Element(c.clone()));
        }
    }
    out
}

fn num_key(trimmed: &str) -> Option<u64> {
    let n: f64 = trimmed.parse().ok()?;
    Some(if n.is_nan() {
        f64::NAN.to_bits()
    } else {
        n.to_bits()
    })
}

#[derive(Default)]
struct JoinIndex {
    num: HashMap<u64, Vec<usize>>,
    text: HashMap<String, Vec<usize>>,
}

impl JoinIndex {
    fn lookup(&self, value: &str) -> Option<&[usize]> {
        let t = value.trim();
        match num_key(t) {
            Some(bits) => self.num.get(&bits),
            None => self.text.get(t),
        }
        .map(Vec::as_slice)
    }
}

/// The old hash join: `select_values` allocates a `Vec<String>` of keys
/// per item, and per-item dedup is `Vec::contains` (O(n²) on
/// high-fanout keys).
fn hash_join(
    left: &[Element],
    right: &[Element],
    left_path: &Path,
    right_path: &Path,
) -> Vec<Element> {
    let (build, probe, build_path, probe_path, build_is_left) = if left.len() <= right.len() {
        (left, right, left_path, right_path, true)
    } else {
        (right, left, right_path, left_path, false)
    };
    let mut index = JoinIndex::default();
    let mut seen_num: Vec<u64> = Vec::new();
    let mut seen_text: Vec<String> = Vec::new();
    for (i, item) in build.iter().enumerate() {
        seen_num.clear();
        seen_text.clear();
        for v in select_values(build_path, item) {
            let t = v.trim();
            match num_key(t) {
                Some(bits) => {
                    if !seen_num.contains(&bits) {
                        index.num.entry(bits).or_default().push(i);
                        seen_num.push(bits);
                    }
                }
                None => {
                    if !seen_text.iter().any(|s| s == t) {
                        index.text.entry(t.to_owned()).or_default().push(i);
                        seen_text.push(t.to_owned());
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut matched: Vec<usize> = Vec::new();
    for probe_item in probe {
        matched.clear();
        for v in select_values(probe_path, probe_item) {
            if let Some(idxs) = index.lookup(&v) {
                for &i in idxs {
                    if !matched.contains(&i) {
                        matched.push(i);
                    }
                }
            }
        }
        matched.sort_unstable();
        for &i in &matched {
            let (l, r) = if build_is_left {
                (&build[i], probe_item)
            } else {
                (probe_item, &build[i])
            };
            out.push(
                Element::new("tuple")
                    .child(Node::Element(l.clone()))
                    .child(Node::Element(r.clone())),
            );
        }
    }
    out
}

fn aggregate(func: AggFunc, path: Option<&Path>, items: &[Element]) -> Element {
    let numbers = || -> Vec<f64> {
        items
            .iter()
            .flat_map(|i| match path {
                Some(p) => select_values(p, i),
                None => vec![i.deep_text().into_owned()],
            })
            .filter_map(|v| v.trim().parse::<f64>().ok())
            .collect()
    };
    let text = match func {
        AggFunc::Count => items.len().to_string(),
        AggFunc::Sum => format_num(numbers().iter().sum()),
        AggFunc::Min => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.min(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Max => numbers()
            .into_iter()
            .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
            .map(format_num)
            .unwrap_or_default(),
        AggFunc::Avg => {
            let ns = numbers();
            if ns.is_empty() {
                String::new()
            } else {
                format_num(ns.iter().sum::<f64>() / ns.len() as f64)
            }
        }
    };
    Element::new(func.name()).text(text)
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn top_n(mut items: Vec<Element>, n: usize, key: &Path, ascending: bool) -> Vec<Element> {
    #[derive(PartialEq, PartialOrd)]
    enum K {
        Num(f64),
        Str(String),
        Missing,
    }
    let key_of = |e: &Element| -> K {
        match first_value(key, e) {
            Some(v) => match v.parse::<f64>() {
                Ok(n) => K::Num(n),
                Err(_) => K::Str(v),
            },
            None => K::Missing,
        }
    };
    let mut keyed: Vec<(K, usize, Element)> = items
        .drain(..)
        .enumerate()
        .map(|(i, e)| (key_of(&e), i, e))
        .collect();
    keyed.sort_by(|a, b| {
        let ord = match (&a.0, &b.0) {
            (K::Num(x), K::Num(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
            (K::Str(x), K::Str(y)) => x.cmp(y),
            (K::Num(_), K::Str(_)) => std::cmp::Ordering::Less,
            (K::Str(_), K::Num(_)) => std::cmp::Ordering::Greater,
            (K::Missing, K::Missing) => std::cmp::Ordering::Equal,
            (K::Missing, _) => std::cmp::Ordering::Greater,
            (_, K::Missing) => std::cmp::Ordering::Less,
        };
        let ord = if ascending { ord } else { ord.reverse() };
        ord.then(a.1.cmp(&b.1))
    });
    keyed.into_iter().take(n).map(|(_, _, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_xml::parse;

    /// Spot-check agreement with the batched engine (the exhaustive
    /// check is the proptest in `proptests.rs`).
    #[test]
    fn legacy_matches_batched_on_a_mixed_plan() {
        let data: Vec<Element> = (0..20)
            .map(|i| {
                parse(&format!(
                    "<item><title>T{}</title><price>{}</price></item>",
                    i % 7,
                    i
                ))
                .unwrap()
            })
            .collect();
        let songs: Vec<Element> = (0..10)
            .map(|i| parse(&format!("<song><album>T{}</album></song>", i % 5)).unwrap())
            .collect();
        let plan = Plan::top_n(
            5,
            "tuple/item/price",
            true,
            Plan::join(
                mqp_algebra::plan::JoinCond::on("album", "title"),
                Plan::data(songs),
                Plan::select("price < 15", Plan::data(data)),
            ),
        );
        let legacy = eval_const(&plan).unwrap();
        let batched = crate::eval_const(&plan).unwrap();
        assert_eq!(legacy, batched.to_vec());
        assert!(!legacy.is_empty());
    }
}
