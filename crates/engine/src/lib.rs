//! # mqp-engine — batched local evaluation of mutant-query sub-plans
//!
//! The paper's prototype used the Niagara XML engine; this crate is the
//! substitute: an in-memory evaluator for the `mqp-algebra` operators
//! over collections of XML items, plus the cardinality/byte cost model
//! the Figure-2 *optimizer* and *policy manager* consult before deciding
//! which locally-evaluable sub-plans to reduce.
//!
//! * [`compile()`](compile::compile) — the one-time pass turning a plan's predicates
//!   and paths into interned-name matchers; [`CompileCache`] adds
//!   per-peer reuse across hops and queries.
//! * [`eval()`](eval::eval) — evaluates a plan to a shared [`mqp_xml::Batch`] of
//!   items, resolving `Url`/`Urn` leaves through a caller-supplied
//!   [`Resolver`] (the peer layer backs this with its local store and
//!   catalog, which *lends* `Arc` handles instead of cloning
//!   collections).
//! * [`legacy`] — the pre-batching materializing evaluator, frozen as
//!   the measured baseline (`BENCH_engine.json`) and the equivalence
//!   oracle for the property tests.
//! * [`cost`] — size estimation: annotated statistics when present
//!   (paper §5.1), System-R-style defaults otherwise.

pub mod compile;
pub mod cost;
pub mod eval;
pub mod legacy;

pub use compile::{compile, compile_cached, CompileCache, CompiledPlan};
pub use cost::{estimate, Estimate};
pub use eval::{eval, eval_const, EvalError, NoResolver, Resolver};

#[cfg(test)]
mod proptests;
