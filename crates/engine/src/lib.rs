//! # mqp-engine — local evaluation of mutant-query sub-plans
//!
//! The paper's prototype used the Niagara XML engine; this crate is the
//! substitute: an in-memory evaluator for the `mqp-algebra` operators
//! over collections of XML items, plus the cardinality/byte cost model
//! the Figure-2 *optimizer* and *policy manager* consult before deciding
//! which locally-evaluable sub-plans to reduce.
//!
//! * [`eval()`](eval::eval) — evaluates a plan to a collection of items, resolving
//!   `Url`/`Urn` leaves through a caller-supplied [`Resolver`] (the peer
//!   layer backs this with its local store and catalog).
//! * [`cost`] — size estimation: annotated statistics when present
//!   (paper §5.1), System-R-style defaults otherwise.

pub mod cost;
pub mod eval;

pub use cost::{estimate, Estimate};
pub use eval::{eval, eval_const, EvalError, NoResolver, Resolver};
