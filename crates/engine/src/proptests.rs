//! Property tests: the batched, compiled evaluator and the frozen
//! [`crate::legacy`] materializing evaluator produce *identical item
//! sequences* for arbitrary plans over arbitrary collections — the
//! equivalence that lets the clone-free engine replace the tree-walker
//! without touching any golden trace.

use proptest::prelude::*;

use mqp_algebra::plan::{JoinCond, OrAlt, Plan};
use mqp_algebra::predicate::{AggFunc, Predicate};
use mqp_xml::xpath::Op;
use mqp_xml::{Batch, Element};

use crate::{compile, eval_const, legacy, CompileCache, NoResolver};

/// Data-bundle items over a small field/value vocabulary so joins,
/// selects, and top-n keys actually collide: `<item><f0>v</f0>…</item>`
/// with numeric-looking and plain-text values (exercising both compare
/// arms), plus the occasional multi-valued field (existential
/// semantics) and missing field.
fn arb_item() -> impl Strategy<Value = Element> {
    let field = (
        proptest::sample::select(vec!["price", "title", "k", "tag"]),
        prop_oneof![
            (0u32..12).prop_map(|n| n.to_string()),
            (0u32..4).prop_map(|n| format!("{n}.0")),
            proptest::sample::select(vec!["x", "y", "NaN", " pad "]).prop_map(str::to_owned),
        ],
    );
    proptest::collection::vec(field, 0..4).prop_map(|fields| {
        let mut e = Element::new("item");
        for (n, v) in fields {
            e.push_child(mqp_xml::Node::Element(Element::new(n).text(v)));
        }
        e
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let op = proptest::sample::select(vec![Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge]);
    let field = proptest::sample::select(vec!["price", "title", "k", "missing"]);
    let leaf = prop_oneof![
        Just(Predicate::True),
        (field.clone(), op.clone(), 0u32..12).prop_map(|(f, o, n)| Predicate::cmp(
            f,
            o,
            n.to_string()
        )),
        (
            field,
            op,
            proptest::sample::select(vec!["x", "y", "NaN", "0"])
        )
            .prop_map(|(f, o, v)| Predicate::cmp(f, o, v)),
    ];
    leaf.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

/// Fully-constant plans (data leaves only — both evaluators resolve
/// nothing), spanning every operator.
fn arb_plan() -> impl Strategy<Value = Plan> {
    let key = proptest::sample::select(vec!["price", "k", "title", "tuple/item/price"]);
    let leaf = proptest::collection::vec(arb_item(), 0..5).prop_map(Plan::data);
    leaf.prop_recursive(3, 20, 3, move |inner| {
        prop_oneof![
            (arb_pred(), inner.clone()).prop_map(|(p, i)| Plan::Select {
                pred: p,
                input: Box::new(i)
            }),
            (
                proptest::collection::vec(
                    proptest::sample::select(vec!["price", "title", "k"]),
                    1..3
                ),
                inner.clone()
            )
                .prop_map(|(f, i)| Plan::project(f, i)),
            (key.clone(), key.clone(), inner.clone(), inner.clone())
                .prop_map(|(l, r, a, b)| Plan::join(JoinCond::on(l, r), a, b)),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Plan::union),
            proptest::collection::vec(inner.clone(), 1..3)
                .prop_map(|alts| Plan::Or(alts.into_iter().map(OrAlt::new).collect())),
            (
                proptest::sample::select(vec![
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Min,
                    AggFunc::Max,
                    AggFunc::Avg
                ]),
                proptest::option::of(Just("price")),
                inner.clone()
            )
                .prop_map(|(f, p, i)| Plan::aggregate(f, p, i)),
            (0usize..6, key.clone(), any::<bool>(), inner.clone())
                .prop_map(|(n, k, asc, i)| Plan::top_n(n, k, asc, i)),
            inner.prop_map(|i| Plan::display("c:1", i)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline equivalence: batched == legacy, item for item, in
    /// order (not just as bags).
    #[test]
    fn batched_eval_matches_legacy(plan in arb_plan()) {
        let batched = eval_const(&plan).expect("const plans evaluate");
        let legacy = legacy::eval_const(&plan).expect("const plans evaluate");
        prop_assert_eq!(batched.to_vec(), legacy);
    }

    /// Compiling through the per-peer cache changes nothing.
    #[test]
    fn cached_compile_matches_fresh(plan in arb_plan()) {
        let mut cache = CompileCache::new();
        // Twice through the same cache: the second pass runs on cache
        // hits.
        let first = compile::compile_cached(&plan, &mut cache).eval(&NoResolver).unwrap();
        let second = compile::compile_cached(&plan, &mut cache).eval(&NoResolver).unwrap();
        let fresh = eval_const(&plan).unwrap();
        prop_assert_eq!(&first, &fresh);
        prop_assert_eq!(&second, &fresh);
    }

    /// Compiled predicates agree with interpreted ones item by item.
    #[test]
    fn compiled_predicate_matches_interpreted(
        pred in arb_pred(),
        items in proptest::collection::vec(arb_item(), 0..8),
    ) {
        let compiled = pred.compile();
        for item in &items {
            prop_assert_eq!(compiled.eval(item), pred.eval(item));
        }
    }

    /// Select only ever *shares* handles: every output item of a
    /// handle-shuffling pipeline is pointer-identical to some input
    /// item (no hidden copies on the non-constructing path).
    #[test]
    fn shuffling_operators_share_not_copy(items in proptest::collection::vec(arb_item(), 0..6)) {
        let plan = Plan::top_n(
            4,
            "price",
            true,
            Plan::select("price < 8", Plan::union([Plan::data(items), Plan::data([])])),
        );
        let out = eval_const(&plan).unwrap();
        let leaf_handles: Vec<_> = plan
            .find_all(&|p| matches!(p, Plan::Data { .. }))
            .iter()
            .flat_map(|p| plan.get(p).unwrap().as_data().unwrap().handles().to_vec())
            .collect();
        for h in out.handles() {
            prop_assert!(leaf_handles.iter().any(|l| std::sync::Arc::ptr_eq(l, h)));
        }
    }

    /// Batch value-equality survives a serialize/reparse cycle (the
    /// wire boundary materializes, sharing is invisible).
    #[test]
    fn shared_batches_serialize_like_owned(items in proptest::collection::vec(arb_item(), 0..5)) {
        let batch: Batch = items.clone().into_iter().collect();
        let shared = Plan::data_shared(batch);
        let owned = Plan::data(items);
        prop_assert_eq!(
            mqp_algebra::codec::to_wire(&shared),
            mqp_algebra::codec::to_wire(&owned)
        );
    }
}
