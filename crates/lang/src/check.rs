//! The sanity/type pass: resolves a compiled query's names against a
//! live [`Catalog`] and [`Namespace`] before the plan is submitted.
//!
//! What it catches (each with a diagnostic pointing at the offending
//! literal, courtesy of the span table [`parse_query`] kept):
//!
//! * interest-area URNs whose cells name namespace nodes that do not
//!   exist ([`InterestArea::valid_in`]);
//! * named URNs the catalog cannot resolve to any server;
//! * `project` fields, `topn` keys, and `agg of` paths that no item of
//!   a *statically known* input can satisfy — checked only when the
//!   stage's whole subtree is `data` literals (remote sources have
//!   unknown shape until runtime, so they are left to the engine).
//!
//! [`parse_query`]: crate::query::parse_query

use mqp_algebra::Plan;
use mqp_catalog::Catalog;
use mqp_namespace::{Namespace, Urn};
use mqp_xml::xpath::Path;
use mqp_xml::Element;

use crate::diag::Diagnostic;
use crate::query::CompiledQuery;

/// Checks `query` against the catalog and namespace. Returns the first
/// problem as a positioned diagnostic.
pub fn check_query(
    query: &CompiledQuery,
    catalog: &Catalog,
    ns: &Namespace,
) -> Result<(), Diagnostic> {
    let mut path = Vec::new();
    check_node(query, &query.plan, catalog, ns, &mut path)
}

fn check_node(
    query: &CompiledQuery,
    plan: &Plan,
    catalog: &Catalog,
    ns: &Namespace,
    path: &mut Vec<usize>,
) -> Result<(), Diagnostic> {
    match plan {
        Plan::Urn(u) => match &u.urn {
            Urn::InterestArea(area) => {
                if !area.valid_in(ns) {
                    return Err(query.diag_at(
                        path,
                        0,
                        format!(
                            "interest area `{}` names nodes outside the namespace",
                            u.urn
                        ),
                    ));
                }
            }
            named @ Urn::Named { .. } => {
                if catalog.resolve_named(named).is_empty() {
                    return Err(query.diag_at(
                        path,
                        0,
                        format!("unknown URN `{named}` (no catalog entry resolves it)"),
                    ));
                }
            }
        },
        Plan::Select { input, .. } | Plan::Display { input, .. } => {
            descend(query, input, catalog, ns, path)?;
        }
        Plan::Project { fields, input } => {
            if let Some(items) = literal_items(input) {
                for (idx, field) in fields.iter().enumerate() {
                    if !items.iter().any(|item| item.field(field).is_some()) {
                        return Err(query.diag_at(
                            path,
                            idx,
                            format!("no input item has a field named `{field}`"),
                        ));
                    }
                }
            }
            descend(query, input, catalog, ns, path)?;
        }
        Plan::TopN { key, input, .. } => {
            check_path_applies(query, path, 0, key, input, "sort key")?;
            descend(query, input, catalog, ns, path)?;
        }
        Plan::Aggregate {
            path: agg, input, ..
        } => {
            if let Some(agg) = agg {
                check_path_applies(query, path, 0, agg, input, "aggregate path")?;
            }
            descend(query, input, catalog, ns, path)?;
        }
        Plan::Join { left, right, .. } => {
            path.push(0);
            check_node(query, left, catalog, ns, path)?;
            path.pop();
            path.push(1);
            check_node(query, right, catalog, ns, path)?;
            path.pop();
        }
        Plan::Union(subs) => {
            for (i, sub) in subs.iter().enumerate() {
                path.push(i);
                check_node(query, sub, catalog, ns, path)?;
                path.pop();
            }
        }
        Plan::Or(alts) => {
            for (i, alt) in alts.iter().enumerate() {
                path.push(i);
                check_node(query, &alt.plan, catalog, ns, path)?;
                path.pop();
            }
        }
        Plan::Data { .. } | Plan::Url(_) => {}
    }
    Ok(())
}

/// Recurses into a unary stage's input (child index 0).
fn descend(
    query: &CompiledQuery,
    input: &Plan,
    catalog: &Catalog,
    ns: &Namespace,
    path: &mut Vec<usize>,
) -> Result<(), Diagnostic> {
    path.push(0);
    let out = check_node(query, input, catalog, ns, path);
    path.pop();
    out
}

fn check_path_applies(
    query: &CompiledQuery,
    node_path: &[usize],
    span_idx: usize,
    xpath: &Path,
    input: &Plan,
    what: &str,
) -> Result<(), Diagnostic> {
    if let Some(items) = literal_items(input) {
        if !items.iter().any(|item| xpath.first_value(item).is_some()) {
            return Err(query.diag_at(
                node_path,
                span_idx,
                format!("{what} `{xpath}` matches nothing in any input item"),
            ));
        }
    }
    Ok(())
}

/// All items of a subtree made purely of `data` literals and
/// item-preserving combinators; `None` as soon as a remote source (url,
/// urn) or an item-reshaping stage appears.
fn literal_items(plan: &Plan) -> Option<Vec<&Element>> {
    match plan {
        Plan::Data { items, .. } => Some(items.iter().collect()),
        Plan::Select { input, .. } => literal_items(input),
        Plan::Union(subs) => {
            let mut all = Vec::new();
            for sub in subs {
                all.extend(literal_items(sub)?);
            }
            Some(all)
        }
        Plan::Or(alts) => {
            let mut all = Vec::new();
            for alt in alts {
                all.extend(literal_items(&alt.plan)?);
            }
            Some(all)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use mqp_catalog::ServerId;
    use mqp_namespace::{Hierarchy, Namespace};

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
            Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
        ])
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.map_urn("urn:ForSale:Portland-CDs", ServerId::new("idx-pdx"), None);
        cat
    }

    #[test]
    fn known_names_pass() {
        let q = parse_query(
            "union (\n  urn \"urn:ForSale:Portland-CDs\",\n  urn \"urn:InterestArea:(USA.OR.Portland,Music.CDs)\"\n)",
        )
        .unwrap();
        check_query(&q, &catalog(), &ns()).unwrap();
    }

    #[test]
    fn unknown_urn_and_area_point_at_their_literals() {
        let q = parse_query("urn \"urn:ForSale:Nowhere\"").unwrap();
        let err = check_query(&q, &catalog(), &ns()).unwrap_err();
        assert!(err.message.contains("unknown URN"), "{err}");
        assert_eq!((err.line, err.col), (1, 5));

        let q = parse_query(
            "join (\n  urn \"urn:ForSale:Portland-CDs\",\n  urn \"urn:InterestArea:(Mars,Music)\"\n) on \"a\" = \"a\"",
        )
        .unwrap();
        let err = check_query(&q, &catalog(), &ns()).unwrap_err();
        assert!(err.message.contains("outside the namespace"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn fields_and_paths_check_against_literal_data_only() {
        let q = parse_query(
            "data \"<item><title>A</title><price>3</price></item>\"\n| project \"title\" \"artist\"",
        )
        .unwrap();
        let err = check_query(&q, &catalog(), &ns()).unwrap_err();
        assert!(err.message.contains("field named `artist`"), "{err}");
        assert_eq!(err.col, 19); // points at "artist", not "title"

        let q = parse_query("data \"<item><price>3</price></item>\"\n| topn 2 by \"weight\" desc")
            .unwrap();
        let err = check_query(&q, &catalog(), &ns()).unwrap_err();
        assert!(err.message.contains("sort key `weight`"), "{err}");

        // Remote sources have unknown shape: no field complaints.
        let q = parse_query("url \"mqp://s/\"\n| project \"anything\"").unwrap();
        check_query(&q, &catalog(), &ns()).unwrap();
    }
}
