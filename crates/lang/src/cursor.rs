//! Token cursor shared by the query and policy parsers: lookahead,
//! keyword/punct expectation, and unit-literal parsing, all producing
//! positioned [`Diagnostic`]s on mismatch.

use crate::diag::{Diagnostic, Span};
use crate::lex::{lex, Tok, TokKind};

/// A token stream with one-token lookahead over a source string.
pub struct Cursor<'a> {
    src: &'a str,
    toks: Vec<Tok>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Lexes `src` and positions the cursor at the first token.
    pub fn new(src: &'a str) -> Result<Cursor<'a>, Diagnostic> {
        Ok(Cursor {
            src,
            toks: lex(src)?,
            pos: 0,
        })
    }

    /// The source text (for building diagnostics elsewhere).
    pub fn src(&self) -> &'a str {
        self.src
    }

    /// The current token, if any.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// A span for "here": the current token, or a point at end of input.
    pub fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.src.len()))
    }

    /// A diagnostic pointing at the current position.
    pub fn err(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.src, self.here(), message)
    }

    /// True when the current token is the word `w` (not consumed).
    pub fn at_word(&self, w: &str) -> bool {
        matches!(self.peek(), Some(Tok { kind: TokKind::Word(t), .. }) if t == w)
    }

    /// Consumes the word `w` if it is next; returns whether it did.
    pub fn eat_word(&mut self, w: &str) -> bool {
        if self.at_word(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the punct `c` if it is next; returns whether it did.
    pub fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True when the current token is a string literal.
    pub fn at_str(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok {
                kind: TokKind::Str(_),
                ..
            })
        )
    }

    /// Requires the next token to be any word; names what was wanted on
    /// failure.
    pub fn expect_word(&mut self, wanted: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek() {
            Some(Tok {
                kind: TokKind::Word(w),
                span,
            }) => {
                let out = (w.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err(format!("expected {wanted}"))),
        }
    }

    /// Requires the exact keyword `kw`.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        if self.at_word(kw) {
            let span = self.here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    /// Requires a string literal; names what it should hold on failure.
    pub fn expect_str(&mut self, wanted: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek() {
            Some(Tok {
                kind: TokKind::Str(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err(format!("expected a quoted string ({wanted})"))),
        }
    }

    /// Requires the punct `c`.
    pub fn expect_punct(&mut self, c: char) -> Result<(), Diagnostic> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    /// Requires end of input.
    pub fn expect_eof(&mut self) -> Result<(), Diagnostic> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    /// Parses a plain unsigned number word.
    pub fn expect_number(&mut self, wanted: &str) -> Result<(u64, Span), Diagnostic> {
        let (w, span) = self.expect_word(wanted)?;
        w.parse::<u64>()
            .map(|n| (n, span))
            .map_err(|_| Diagnostic::at(self.src, span, format!("expected {wanted}, found `{w}`")))
    }

    /// Parses a duration word — `30`, `30m`, `30min`, or `2h` — into
    /// minutes.
    pub fn expect_duration(&mut self) -> Result<(u32, Span), Diagnostic> {
        let (w, span) = self.expect_word("a duration (e.g. `30min`, `2h`)")?;
        let (digits, mult) = if let Some(d) = w.strip_suffix("min") {
            (d, 1u32)
        } else if let Some(d) = w.strip_suffix('m') {
            (d, 1)
        } else if let Some(d) = w.strip_suffix('h') {
            (d, 60)
        } else {
            (w.as_str(), 1)
        };
        digits
            .parse::<u32>()
            .ok()
            .and_then(|n| n.checked_mul(mult))
            .map(|n| (n, span))
            .ok_or_else(|| {
                Diagnostic::at(
                    self.src,
                    span,
                    format!("bad duration `{w}` (expected e.g. `30min` or `2h`)"),
                )
            })
    }

    /// Parses a size word — `4096`, `4kb`, or `2mb` — into bytes.
    pub fn expect_size(&mut self) -> Result<(f64, Span), Diagnostic> {
        let (w, span) = self.expect_word("a size (e.g. `4kb`, `2mb`)")?;
        let (digits, mult) = if let Some(d) = w.strip_suffix("kb") {
            (d, 1024.0)
        } else if let Some(d) = w.strip_suffix("mb") {
            (d, 1024.0 * 1024.0)
        } else if let Some(d) = w.strip_suffix('b') {
            (d, 1.0)
        } else {
            (w.as_str(), 1.0)
        };
        digits
            .parse::<u64>()
            .map(|n| (n as f64 * mult, span))
            .map_err(|_| {
                Diagnostic::at(
                    self.src,
                    span,
                    format!("bad size `{w}` (expected e.g. `4kb` or `2mb`)"),
                )
            })
    }
}
