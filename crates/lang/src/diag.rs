//! Positioned diagnostics shared by the query and policy compilers:
//! every compile error carries a line/column position and renders with
//! the offending source line and a caret underline, rustc-style:
//!
//! ```text
//! error: expected a quoted string after `urn`
//!   --> line 2, column 5
//!    |
//!  2 | urn Portland-CDs
//!    |     ^^^^^^^^^^^^
//! ```
//!
//! Positions are computed at construction from the source text and a
//! byte [`Span`], so a diagnostic stays printable after the source is
//! gone. The exact rendering is snapshot-tested (the top error messages
//! must never silently regress).

use std::fmt;

/// A byte range in the source text. `end == start` renders as a single
/// caret (used for end-of-input errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span (caret only).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }
}

/// A compile error with position and source context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong (one line, no position info).
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based column (characters, not bytes).
    pub col: usize,
    /// The full text of the offending line.
    pub line_text: String,
    /// How many characters to underline (≥ 1).
    pub underline: usize,
}

impl Diagnostic {
    /// Builds a diagnostic pointing at `span` within `src`.
    pub fn at(src: &str, span: Span, message: impl Into<String>) -> Diagnostic {
        let start = span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(src.len());
        let line = src[..start].matches('\n').count() + 1;
        let col = src[line_start..start].chars().count() + 1;
        let span_len = src[start..span.end.min(line_end)].chars().count();
        Diagnostic {
            message: message.into(),
            line,
            col,
            line_text: src[line_start..line_end].to_owned(),
            underline: span_len.max(1),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let num = self.line.to_string();
        let gutter = " ".repeat(num.len());
        writeln!(f, "error: {}", self.message)?;
        writeln!(f, " {gutter}--> line {}, column {}", self.line, self.col)?;
        writeln!(f, " {gutter} |")?;
        writeln!(f, " {num} | {}", self.line_text)?;
        write!(
            f,
            " {gutter} | {}{}",
            " ".repeat(self.col - 1),
            "^".repeat(self.underline)
        )
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_and_column_counts_chars() {
        let src = "first line\nurn Portland-CDs\n";
        let at = src.find("Portland").unwrap();
        let d = Diagnostic::at(src, Span::new(at, at + "Portland-CDs".len()), "bad name");
        assert_eq!((d.line, d.col), (2, 5));
        assert_eq!(d.line_text, "urn Portland-CDs");
        assert_eq!(d.underline, 12);
        assert_eq!(
            d.to_string(),
            "error: bad name\n  --> line 2, column 5\n   |\n 2 | urn Portland-CDs\n   |     ^^^^^^^^^^^^"
        );
    }

    #[test]
    fn end_of_input_renders_a_single_caret() {
        let src = "union (";
        let d = Diagnostic::at(src, Span::point(src.len()), "unexpected end of input");
        assert_eq!((d.line, d.col), (1, 8));
        assert_eq!(d.underline, 1);
    }

    #[test]
    fn underline_clips_at_end_of_line() {
        let src = "abc\ndef";
        let d = Diagnostic::at(src, Span::new(4, 40), "x");
        assert_eq!(d.underline, 3);
    }
}
