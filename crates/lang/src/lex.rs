//! The shared lexer: both compilers tokenize with it, so string
//! escaping, comments, and error positions are identical across the
//! query language and the policy DSL.
//!
//! Three token shapes cover both grammars:
//!
//! * quoted strings with `\\ \" \n \r \t` escapes (all other
//!   characters are verbatim, including newlines);
//! * *words* — maximal runs of `[A-Za-z0-9_.-]`: keywords (`select`,
//!   `when`), numbers (`30`), unit literals (`4kb`, `30min`), and bare
//!   annotation keys;
//! * single-character punctuation: `| ( ) , = @`.
//!
//! `#` starts a comment running to end of line. Newlines are plain
//! whitespace — both languages are keyword-delimited, not line-based.

use crate::diag::{Diagnostic, Span};

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// A quoted string, unescaped.
    Str(String),
    /// A bare word (keyword, number, unit literal, annotation key).
    Word(String),
    /// One of `| ( ) , = @`.
    Punct(char),
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token.
    pub kind: TokKind,
    /// Where it came from.
    pub span: Span,
}

fn word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')
}

/// Tokenizes `src`. The only lex-level errors are unterminated strings,
/// unknown escapes, and characters outside the grammar.
pub fn lex(src: &str) -> Result<Vec<Tok>, Diagnostic> {
    let mut toks = Vec::new();
    let mut chars = src.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '#' {
            while let Some(&(_, c)) = chars.peek() {
                if c == '\n' {
                    break;
                }
                chars.next();
            }
            continue;
        }
        if c == '"' {
            chars.next();
            let mut text = String::new();
            loop {
                match chars.next() {
                    None => {
                        return Err(Diagnostic::at(
                            src,
                            Span::new(start, src.len()),
                            "unterminated string literal",
                        ));
                    }
                    Some((end, '"')) => {
                        toks.push(Tok {
                            kind: TokKind::Str(text),
                            span: Span::new(start, end + 1),
                        });
                        break;
                    }
                    Some((at, '\\')) => {
                        match chars.next() {
                            Some((_, '\\')) => text.push('\\'),
                            Some((_, '"')) => text.push('"'),
                            Some((_, 'n')) => text.push('\n'),
                            Some((_, 'r')) => text.push('\r'),
                            Some((_, 't')) => text.push('\t'),
                            Some((end, other)) => {
                                return Err(Diagnostic::at(
                                src,
                                Span::new(at, end + other.len_utf8()),
                                format!("unknown escape `\\{other}` (expected \\\\ \\\" \\n \\r \\t)"),
                            ));
                            }
                            None => {
                                return Err(Diagnostic::at(
                                    src,
                                    Span::new(start, src.len()),
                                    "unterminated string literal",
                                ));
                            }
                        }
                    }
                    Some((_, other)) => text.push(other),
                }
            }
            continue;
        }
        if matches!(c, '|' | '(' | ')' | ',' | '=' | '@') {
            chars.next();
            toks.push(Tok {
                kind: TokKind::Punct(c),
                span: Span::new(start, start + c.len_utf8()),
            });
            continue;
        }
        if word_char(c) {
            let mut end = start;
            while let Some(&(at, c)) = chars.peek() {
                if !word_char(c) {
                    break;
                }
                end = at + c.len_utf8();
                chars.next();
            }
            toks.push(Tok {
                kind: TokKind::Word(src[start..end].to_owned()),
                span: Span::new(start, end),
            });
            continue;
        }
        return Err(Diagnostic::at(
            src,
            Span::new(start, start + c.len_utf8()),
            format!("unexpected character `{c}`"),
        ));
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_puncts_and_strings() {
        assert_eq!(
            kinds("url \"mqp://a/\" | topn 3"),
            vec![
                TokKind::Word("url".into()),
                TokKind::Str("mqp://a/".into()),
                TokKind::Punct('|'),
                TokKind::Word("topn".into()),
                TokKind::Word("3".into()),
            ]
        );
    }

    #[test]
    fn escapes_and_comments() {
        assert_eq!(
            kinds("# heading\n\"a\\\"b\\\\c\\n\" # trailing"),
            vec![TokKind::Str("a\"b\\c\n".into())]
        );
    }

    #[test]
    fn spans_point_at_the_source() {
        let toks = lex("ab \"cd\"").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 7)); // includes the quotes
    }

    #[test]
    fn lex_errors_are_positioned() {
        assert!(lex("\"open")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        assert!(lex("\"\\q\"")
            .unwrap_err()
            .to_string()
            .contains("unknown escape"));
        assert!(lex("select {")
            .unwrap_err()
            .to_string()
            .contains("unexpected character"));
    }
}
