//! `mqp-lang` — the textual front-end to the mutant-query algebra: a
//! **query language** compiled to [`Plan`](mqp_algebra::Plan)s and a
//! **policy DSL** compiled to hot-reloadable
//! [`RuleSet`](mqp_core::RuleSet)s, sharing one lexer and one
//! positioned-diagnostics core.
//!
//! The paper's §4 examples write mutant query plans as XML trees; this
//! crate gives them a surface syntax a person can type:
//!
//! ```text
//! urn "urn:ForSale:Portland-CDs"
//! | select "price < 10"
//! | topn 5 by "price" asc
//! prefer fast within 30min
//! ```
//!
//! compiles to exactly the plan the builder API would produce, and
//! [`mqp_algebra::render`] is its inverse: `parse_query(render(plan))
//! == plan` for every constructible plan (property-tested). The policy
//! DSL (`when bytes over 64kb then defer`) compiles to the same
//! [`RuleSet`](mqp_core::RuleSet) the `policy` wire frame ships, so a
//! file edit can retarget a live cluster without restarting it.
//!
//! Pipeline: [`lex`] → [`cursor`] → (`query` | `policy`) parser →
//! algebra / rules, with [`check`] as an optional catalog+namespace
//! sanity pass between parse and submit. Every error anywhere in the
//! pipeline is a [`Diagnostic`] with line/column and a caret underline.

pub mod check;
pub mod cursor;
pub mod diag;
pub mod lex;
pub mod policy;
pub mod query;

pub use check::check_query;
pub use diag::{Diagnostic, Span};
pub use policy::{parse_policy, render_policy, CompiledPolicy};
pub use query::{parse_query, CompiledQuery};

#[cfg(test)]
mod proptests;
