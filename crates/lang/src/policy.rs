//! The policy DSL compiler: rule text → [`RuleSet`] for hot-reload
//! into a running peer.
//!
//! Grammar (DESIGN.md §13):
//!
//! ```text
//! policy  := line*
//! line    := "default" ("current"|"fast")      # base preference
//!          | "defer" "over" SIZE               # base defer threshold
//!          | "within" DUR                      # base staleness bound
//!          | "when" cond ("and" cond)* "then" action ("," action)*
//! cond    := "always"
//!          | "area" "within" STR               # an InterestArea URN
//!          | "bytes" ("over"|"under") SIZE
//!          | "staleness" "over" DUR
//!          | "role" "is" STR                   # glob over the peer name
//!          | "trust-below" LEVEL               # trusted|probation|quarantined
//! action  := "prefer" ("current"|"fast") | "within" DUR
//!          | "defer" "over" SIZE | "defer" | "evaluate"
//!          | "route" "via" STR | "choose" ("current"|"fast")
//!          | "quarantine" | "verify"           # binding defense, DESIGN.md §14
//! ```
//!
//! Base lines compile to `when always then …` rules in place, so a
//! policy file is *just* an ordered rule list — evaluation order is
//! exactly textual order, later matches override earlier ones (see
//! [`RuleSet::decide`]). A file of only base lines reproduces a plain
//! [`Policy`](mqp_core::Policy): `default current` compiled and applied
//! to `Policy::current()` is a no-op, which is what keeps golden traces
//! byte-identical under the compiled default (tested below).

use mqp_catalog::{Preference, ServerId, TrustLevel};
use mqp_core::{Cond, Rule, RuleAction, RuleSet};
use mqp_namespace::Urn;

use crate::cursor::Cursor;
use crate::diag::Diagnostic;

/// A compiled policy: the rule set plus the source it came from.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// The compiled rules, ready for [`Processor::set_rules`] or a
    /// `policy` wire frame.
    ///
    /// [`Processor::set_rules`]: mqp_core::Processor::set_rules
    pub rules: RuleSet,
    src: String,
}

impl CompiledPolicy {
    /// The source text this policy was compiled from.
    pub fn src(&self) -> &str {
        &self.src
    }
}

/// Compiles policy text. Returns the first error as a positioned
/// diagnostic.
pub fn parse_policy(src: &str) -> Result<CompiledPolicy, Diagnostic> {
    let mut cur = Cursor::new(src)?;
    let mut rules = Vec::new();
    while !cur.at_eof() {
        rules.push(parse_line(&mut cur)?);
    }
    Ok(CompiledPolicy {
        rules: RuleSet::new(rules),
        src: src.to_owned(),
    })
}

fn parse_line(cur: &mut Cursor) -> Result<Rule, Diagnostic> {
    // Base lines: sugar for `when always then <one action>`.
    if cur.eat_word("default") {
        return Ok(always(RuleAction::Prefer(parse_preference(cur)?)));
    }
    if cur.eat_word("defer") {
        cur.expect_keyword("over")?;
        let (bytes, _) = cur.expect_size()?;
        return Ok(always(RuleAction::DeferOver(bytes)));
    }
    if cur.eat_word("within") {
        let (minutes, _) = cur.expect_duration()?;
        return Ok(always(RuleAction::Within(minutes)));
    }

    cur.expect_keyword("when")?;
    let mut conds = vec![parse_cond(cur)?];
    while cur.eat_word("and") {
        conds.push(parse_cond(cur)?);
    }
    cur.expect_keyword("then")?;
    let mut actions = vec![parse_action(cur)?];
    while cur.eat_punct(',') {
        actions.push(parse_action(cur)?);
    }
    Ok(Rule { conds, actions })
}

fn always(action: RuleAction) -> Rule {
    Rule {
        conds: vec![Cond::Always],
        actions: vec![action],
    }
}

fn parse_cond(cur: &mut Cursor) -> Result<Cond, Diagnostic> {
    let (kw, kw_span) =
        cur.expect_word("a condition (always, area, bytes, staleness, role, trust-below)")?;
    match kw.as_str() {
        "always" => Ok(Cond::Always),
        "area" => {
            cur.expect_keyword("within")?;
            let (text, span) = cur.expect_str("an interest-area URN")?;
            let urn = Urn::parse(&text)
                .map_err(|e| Diagnostic::at(cur.src(), span, format!("bad URN: {e}")))?;
            match urn.as_area() {
                Some(area) => Ok(Cond::AreaWithin(area.clone())),
                None => Err(Diagnostic::at(
                    cur.src(),
                    span,
                    format!("`{text}` is not an interest-area URN (expected urn:InterestArea:…)"),
                )),
            }
        }
        "bytes" => {
            let over = if cur.eat_word("over") {
                true
            } else if cur.eat_word("under") {
                false
            } else {
                return Err(cur.err("expected `over` or `under` after `bytes`"));
            };
            let (bytes, _) = cur.expect_size()?;
            Ok(if over {
                Cond::BytesOver(bytes)
            } else {
                Cond::BytesUnder(bytes)
            })
        }
        "staleness" => {
            cur.expect_keyword("over")?;
            let (minutes, _) = cur.expect_duration()?;
            Ok(Cond::StalenessOver(minutes))
        }
        "role" => {
            cur.expect_keyword("is")?;
            let (glob, span) = cur.expect_str("a role glob like \"seller-*\"")?;
            if glob.chars().any(char::is_whitespace) || glob.is_empty() {
                return Err(Diagnostic::at(
                    cur.src(),
                    span,
                    "role globs must be non-empty and contain no whitespace",
                ));
            }
            Ok(Cond::RoleIs(glob))
        }
        "trust-below" => {
            let (level, span) = cur.expect_word("a trust level (trusted, probation, quarantined)")?;
            match TrustLevel::parse(&level) {
                Some(l) => Ok(Cond::TrustBelow(l)),
                None => Err(Diagnostic::at(
                    cur.src(),
                    span,
                    format!(
                        "unknown trust level `{level}` (expected trusted, probation, or quarantined)"
                    ),
                )),
            }
        }
        other => Err(Diagnostic::at(
            cur.src(),
            kw_span,
            format!(
                "unknown condition `{other}` (expected always, area, bytes, staleness, role, or trust-below)"
            ),
        )),
    }
}

fn parse_action(cur: &mut Cursor) -> Result<RuleAction, Diagnostic> {
    let (kw, kw_span) = cur.expect_word(
        "an action (prefer, within, defer, evaluate, route, choose, quarantine, verify)",
    )?;
    match kw.as_str() {
        "prefer" => Ok(RuleAction::Prefer(parse_preference(cur)?)),
        "within" => {
            let (minutes, _) = cur.expect_duration()?;
            Ok(RuleAction::Within(minutes))
        }
        "defer" => {
            if cur.eat_word("over") {
                let (bytes, _) = cur.expect_size()?;
                Ok(RuleAction::DeferOver(bytes))
            } else {
                Ok(RuleAction::ForceDefer)
            }
        }
        "evaluate" => Ok(RuleAction::ForceEvaluate),
        "route" => {
            cur.expect_keyword("via")?;
            let (server, span) = cur.expect_str("a server name like \"idx-pdx\"")?;
            if server.chars().any(char::is_whitespace) || server.is_empty() {
                return Err(Diagnostic::at(
                    cur.src(),
                    span,
                    "server names must be non-empty and contain no whitespace",
                ));
            }
            Ok(RuleAction::RouteVia(ServerId::new(server)))
        }
        "choose" => Ok(RuleAction::Choose(parse_preference(cur)?)),
        "quarantine" => Ok(RuleAction::Quarantine),
        "verify" => Ok(RuleAction::Verify),
        other => Err(Diagnostic::at(
            cur.src(),
            kw_span,
            format!(
                "unknown action `{other}` (expected prefer, within, defer, evaluate, route, choose, quarantine, or verify)"
            ),
        )),
    }
}

/// Renders a rule set back to policy DSL text — the left inverse of
/// [`parse_policy`] for any rule set the DSL can express (integral byte
/// thresholds; property-tested in `crate::proptests`). Every rule
/// renders in the explicit `when … then …` form, so rendering is also a
/// fixed point of parse∘render.
pub fn render_policy(rules: &RuleSet) -> String {
    let mut out = String::new();
    for rule in &rules.rules {
        out.push_str("when ");
        for (i, c) in rule.conds.iter().enumerate() {
            if i > 0 {
                out.push_str(" and ");
            }
            out.push_str(&render_cond(c));
        }
        out.push_str(" then ");
        for (i, a) in rule.actions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&render_action(a));
        }
        out.push('\n');
    }
    out
}

fn render_cond(c: &Cond) -> String {
    match c {
        Cond::Always => "always".to_owned(),
        Cond::AreaWithin(a) => format!("area within \"{}\"", Urn::area(a.clone())),
        Cond::BytesOver(b) => format!("bytes over {}", *b as u64),
        Cond::BytesUnder(b) => format!("bytes under {}", *b as u64),
        Cond::StalenessOver(m) => format!("staleness over {m}min"),
        Cond::RoleIs(glob) => format!("role is \"{glob}\""),
        Cond::TrustBelow(l) => format!("trust-below {}", l.name()),
    }
}

fn render_action(a: &RuleAction) -> String {
    match a {
        RuleAction::Prefer(p) => format!("prefer {}", render_preference(p)),
        RuleAction::Within(m) => format!("within {m}min"),
        RuleAction::DeferOver(b) => format!("defer over {}", *b as u64),
        RuleAction::ForceDefer => "defer".to_owned(),
        RuleAction::ForceEvaluate => "evaluate".to_owned(),
        RuleAction::RouteVia(s) => format!("route via \"{s}\""),
        RuleAction::Choose(p) => format!("choose {}", render_preference(p)),
        RuleAction::Quarantine => "quarantine".to_owned(),
        RuleAction::Verify => "verify".to_owned(),
    }
}

fn render_preference(p: &Preference) -> &'static str {
    match p {
        Preference::Current => "current",
        Preference::Fast => "fast",
    }
}

fn parse_preference(cur: &mut Cursor) -> Result<Preference, Diagnostic> {
    let (which, span) = cur.expect_word("`current` or `fast`")?;
    match which.as_str() {
        "current" => Ok(Preference::Current),
        "fast" => Ok(Preference::Fast),
        other => Err(Diagnostic::at(
            cur.src(),
            span,
            format!("unknown preference `{other}` (expected `current` or `fast`)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_core::{Policy, RuleCtx};

    #[test]
    fn compiled_default_reproduces_the_builtin_policies_exactly() {
        // The golden-trace invariant: applying the compiled default to
        // the matching built-in policy must be an identity.
        for (text, base) in [
            ("default current\ndefer over 64kb", Policy::current()),
            ("default fast", Policy::fast()),
        ] {
            let rules = parse_policy(text).unwrap().rules;
            let decision = rules.decide(&base, &RuleCtx::default());
            assert_eq!(decision.policy, base);
            assert_eq!(decision.or_preference, None);
            assert_eq!(decision.force, None);
            assert_eq!(decision.route, None);
        }
    }

    #[test]
    fn rules_compile_in_textual_order_with_sugar_inlined() {
        let p = parse_policy(
            "# comments are fine\n\
             default fast\n\
             within 2h\n\
             when area within \"urn:InterestArea:(USA.OR.Portland,Merchandise)\" \
               and bytes over 4kb then defer\n\
             when role is \"seller-*\" then route via \"idx-pdx\", choose fast",
        )
        .unwrap();
        let rules = &p.rules.rules;
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].actions, vec![RuleAction::Prefer(Preference::Fast)]);
        assert_eq!(rules[1].actions, vec![RuleAction::Within(120)]);
        assert_eq!(rules[2].conds.len(), 2);
        assert!(matches!(rules[2].conds[1], Cond::BytesOver(b) if b == 4096.0));
        assert_eq!(rules[2].actions, vec![RuleAction::ForceDefer]);
        assert_eq!(
            rules[3].actions,
            vec![
                RuleAction::RouteVia(ServerId::new("idx-pdx")),
                RuleAction::Choose(Preference::Fast),
            ]
        );
        // Compiled rules survive the wire codec (how hot-reload ships them).
        assert_eq!(RuleSet::from_wire(&p.rules.to_wire()).unwrap(), p.rules);
    }

    #[test]
    fn bare_defer_vs_defer_over_disambiguate() {
        let p = parse_policy("when bytes over 1kb then defer\nwhen always then defer over 2kb")
            .unwrap();
        assert_eq!(p.rules.rules[0].actions, vec![RuleAction::ForceDefer]);
        assert_eq!(
            p.rules.rules[1].actions,
            vec![RuleAction::DeferOver(2048.0)]
        );
    }

    #[test]
    fn trust_conditions_and_defense_actions_compile() {
        let p = parse_policy(
            "when trust-below probation then verify\n\
             when trust-below quarantined and role is \"meta\" then quarantine, defer",
        )
        .unwrap();
        let rules = &p.rules.rules;
        assert_eq!(
            rules[0].conds,
            vec![Cond::TrustBelow(mqp_catalog::TrustLevel::Probation)]
        );
        assert_eq!(rules[0].actions, vec![RuleAction::Verify]);
        assert_eq!(
            rules[1].conds[0],
            Cond::TrustBelow(mqp_catalog::TrustLevel::Quarantined)
        );
        assert_eq!(
            rules[1].actions,
            vec![RuleAction::Quarantine, RuleAction::ForceDefer]
        );
        // Hot-reload ships compiled rules over the wire intact.
        assert_eq!(RuleSet::from_wire(&p.rules.to_wire()).unwrap(), p.rules);
        // And the renderer inverts the compiler.
        assert_eq!(
            parse_policy(&render_policy(&p.rules)).unwrap().rules,
            p.rules
        );

        let err = parse_policy("when trust-below sideways then verify").unwrap_err();
        assert!(err.message.contains("unknown trust level"), "{err}");
    }

    #[test]
    fn policy_errors_are_positioned() {
        let err = parse_policy("when area within \"urn:ForSale:pdx\" then defer").unwrap_err();
        assert!(err.message.contains("not an interest-area URN"), "{err}");

        let err = parse_policy("when role is \"two words\" then defer").unwrap_err();
        assert!(err.message.contains("no whitespace"), "{err}");

        let err = parse_policy("when always then teleport").unwrap_err();
        assert!(err.message.contains("unknown action `teleport`"), "{err}");
        assert_eq!(err.line, 1);

        let err = parse_policy("within 9999999999h").unwrap_err();
        assert!(err.message.contains("bad duration"), "{err}");
    }
}
