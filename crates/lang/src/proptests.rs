//! Property tests: the query language is a faithful inverse of the
//! algebra's pretty-printer — `parse_query(plan.render()).plan == plan`
//! for arbitrary constructible plans. The generators mirror
//! `mqp_algebra`'s codec proptests (same leaf shapes, same operator
//! mix) plus arbitrary annotations, so anything the wire codec can
//! carry, the surface syntax can express.

use proptest::prelude::*;

use mqp_algebra::plan::{Annotations, JoinCond, OrAlt, Plan, UrlRef, UrnRef};
use mqp_algebra::predicate::{AggFunc, Predicate};
use mqp_catalog::{Preference, ServerId, TrustLevel};
use mqp_core::{Cond, Rule, RuleAction, RuleSet};
use mqp_namespace::InterestArea;
use mqp_xml::Element;

use crate::policy::{parse_policy, render_policy};
use crate::query::parse_query;

fn arb_item() -> impl Strategy<Value = Element> {
    proptest::collection::vec(("[a-z]{1,6}", "[ -~]{1,10}"), 0..4).prop_map(|fields| {
        let mut e = Element::new("item");
        for (n, v) in fields {
            e.push_child(mqp_xml::Node::Element(Element::new(n).text(v)));
        }
        e
    })
}

fn arb_meta() -> impl Strategy<Value = Annotations> {
    // Keys cover both render paths: bare ident-shaped and arbitrary
    // printable (which render must quote).
    let key = prop_oneof!["[a-z_][a-z0-9_.-]{0,5}", "[ -~]{1,6}"];
    proptest::collection::vec((key, "[ -~]{0,8}"), 0..3).prop_map(|pairs| {
        let mut meta = Annotations::new();
        for (k, v) in pairs {
            meta.set(k, v);
        }
        meta
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        ("[a-z]{1,5}", 0u32..100).prop_map(|(f, n)| Predicate::cmp(
            &f,
            mqp_xml::xpath::Op::Lt,
            n.to_string()
        )),
        ("[a-z]{1,5}", "[a-zA-Z ]{1,6}").prop_map(|(f, v)| Predicate::cmp(
            &f,
            mqp_xml::xpath::Op::Eq,
            v.trim().to_owned()
        )),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let leaf = prop_oneof![
        (proptest::collection::vec(arb_item(), 0..3), arb_meta()).prop_map(|(items, meta)| {
            Plan::Data {
                items: items.into_iter().collect(),
                meta,
            }
        }),
        ("[a-z]{1,8}", arb_meta()).prop_map(|(h, meta)| Plan::Url(UrlRef {
            href: format!("http://{h}:9020/"),
            collection: None,
            meta,
        })),
        ("[A-Za-z]{1,6}", "[A-Za-z0-9-]{1,8}", arb_meta()).prop_map(|(nid, nss, meta)| {
            Plan::Urn(UrnRef {
                urn: mqp_namespace::Urn::named(nid, nss),
                meta,
            })
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (arb_pred(), inner.clone()).prop_map(|(p, i)| Plan::Select {
                pred: p,
                input: Box::new(i)
            }),
            (proptest::collection::vec("[a-z]{1,5}", 1..3), inner.clone())
                .prop_map(|(f, i)| Plan::project(f, i)),
            ("[a-z]{1,4}", "[a-z]{1,4}", inner.clone(), inner.clone())
                .prop_map(|(l, r, a, b)| Plan::join(JoinCond::on(&l, &r), a, b)),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Plan::union),
            proptest::collection::vec((inner.clone(), proptest::option::of(0u32..120)), 1..3)
                .prop_map(|alts| Plan::Or(
                    alts.into_iter()
                        .map(|(p, s)| OrAlt {
                            plan: p,
                            staleness: s
                        })
                        .collect()
                )),
            (
                proptest::sample::select(vec![
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Min,
                    AggFunc::Max,
                    AggFunc::Avg
                ]),
                inner.clone()
            )
                .prop_map(|(f, i)| Plan::aggregate(f, Some("price"), i)),
            (1usize..20, any::<bool>(), inner.clone())
                .prop_map(|(n, asc, i)| Plan::top_n(n, "price", asc, i)),
            ("[a-z0-9.:]{1,12}", inner.clone()).prop_map(|(t, i)| Plan::display(t, i)),
        ]
    })
}

fn arb_trust_level() -> impl Strategy<Value = TrustLevel> {
    proptest::sample::select(vec![
        TrustLevel::Trusted,
        TrustLevel::Probation,
        TrustLevel::Quarantined,
    ])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        proptest::collection::vec(("[A-Z]{1,4}", "[a-z]{1,5}"), 1..3).prop_map(|cells| {
            let cells: Vec<Vec<&str>> = cells
                .iter()
                .map(|(a, b)| vec![a.as_str(), b.as_str()])
                .collect();
            let refs: Vec<&[&str]> = cells.iter().map(Vec::as_slice).collect();
            Cond::AreaWithin(InterestArea::parse(&refs))
        }),
        (1u32..1_000_000).prop_map(|b| Cond::BytesOver(b as f64)),
        (1u32..1_000_000).prop_map(|b| Cond::BytesUnder(b as f64)),
        (0u32..10_000).prop_map(Cond::StalenessOver),
        "[a-z*][a-z0-9*-]{0,8}".prop_map(Cond::RoleIs),
        arb_trust_level().prop_map(Cond::TrustBelow),
    ]
}

fn arb_action() -> impl Strategy<Value = RuleAction> {
    let pref = proptest::sample::select(vec![Preference::Current, Preference::Fast]);
    prop_oneof![
        pref.clone().prop_map(RuleAction::Prefer),
        (0u32..10_000).prop_map(RuleAction::Within),
        (1u32..1_000_000).prop_map(|b| RuleAction::DeferOver(b as f64)),
        Just(RuleAction::ForceDefer),
        Just(RuleAction::ForceEvaluate),
        "[a-z][a-z0-9-]{0,8}".prop_map(|s| RuleAction::RouteVia(ServerId::new(s))),
        pref.clone().prop_map(RuleAction::Choose),
        Just(RuleAction::Quarantine),
        Just(RuleAction::Verify),
    ]
}

fn arb_ruleset() -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(
        (
            proptest::collection::vec(arb_cond(), 1..3),
            proptest::collection::vec(arb_action(), 1..3),
        ),
        0..5,
    )
    .prop_map(|rules| {
        RuleSet::new(
            rules
                .into_iter()
                .map(|(conds, actions)| Rule { conds, actions })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The tentpole invariant: rendering any plan and compiling the
    /// text back yields the *same* plan — structurally, annotations
    /// and all. Queries authored either way are interchangeable.
    #[test]
    fn render_parse_roundtrip(plan in arb_plan()) {
        let text = plan.render();
        let q = parse_query(&text).unwrap_or_else(|e| panic!("rendered text must parse:\n{text}\n{e}"));
        prop_assert_eq!(&q.plan, &plan, "text was:\n{}", text);
        prop_assert!(q.policy.is_none());
    }

    /// Rendering is a fixed point of compile∘render: pretty-printing
    /// the reparsed plan reproduces the text byte for byte (so `.mqpq`
    /// files regenerated from plans are stable).
    #[test]
    fn render_is_stable_under_reparse(plan in arb_plan()) {
        let text = plan.render();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(reparsed.plan.render(), text);
    }

    /// The policy DSL inverts its renderer for every expressible rule
    /// set — trust conditions and defense actions included — and the
    /// rendered text is a fixed point of parse∘render (regenerated
    /// `.mqpp` files are stable).
    #[test]
    fn policy_render_parse_roundtrip(rules in arb_ruleset()) {
        let text = render_policy(&rules);
        let compiled = parse_policy(&text)
            .unwrap_or_else(|e| panic!("rendered policy must parse:\n{text}\n{e}"));
        prop_assert_eq!(&compiled.rules, &rules, "text was:\n{}", text);
        prop_assert_eq!(render_policy(&compiled.rules), text);
    }
}
