//! The query compiler: pipeline text → [`Plan`] (+ optional §4.3
//! preference [`Policy`]).
//!
//! Grammar (see DESIGN.md §13 for the full EBNF):
//!
//! ```text
//! query    := pipeline clause*
//! pipeline := head ( "|" stage )*
//! head     := "urn" STR meta?
//!           | "url" STR ("collection" STR)? meta?
//!           | "data" STR meta?
//!           | "join" "(" pipeline "," pipeline ")" "on" STR "=" STR
//!           | "union" "(" pipeline ("," pipeline)* ")"
//!           | "or" "(" alt ("," alt)* ")"
//! alt      := pipeline ("stale" NUM)?
//! stage    := "select" STR | "project" STR+ | "topn" NUM "by" STR ("asc"|"desc")
//!           | "agg" WORD ("of" STR)? | "display" "to" STR
//! clause   := "prefer" ("current"|"fast") | "within" DUR | "defer" "over" SIZE
//! meta     := "@" "(" (key "=" STR),* ")"
//! ```
//!
//! The parser *is* the code generator — it builds the [`Plan`] directly
//! and keeps a span table keyed by [`NodePath`] so the catalog /
//! namespace check pass ([`crate::check`]) can point diagnostics at the
//! exact offending literal. [`mqp_algebra::render`] is the inverse:
//! `parse_query(render(plan)).plan == plan` for every constructible
//! plan (property-tested in `proptests.rs`).

use std::collections::HashMap;

use mqp_algebra::plan::{Annotations, JoinCond, OrAlt, Plan, UrlRef, UrnRef};
use mqp_algebra::predicate::{AggFunc, Predicate};
use mqp_catalog::Preference;
use mqp_core::Policy;
use mqp_namespace::Urn;
use mqp_xml::xpath::Path;
use mqp_xml::Batch;

use crate::cursor::Cursor;
use crate::diag::{Diagnostic, Span};

/// Span table: node path (root = `[]`) → spans of that node's string
/// literals, in render order.
type SpanMap = HashMap<Vec<usize>, Vec<Span>>;

/// Flat span accumulator used *during* parsing. Paths are stored
/// REVERSED (leaf-to-root) so wrapping a subtree under child index `i`
/// is an O(1) push per entry instead of a HashMap re-key — the final
/// [`SpanMap`] is built once in [`parse_query`] by reversing each key.
type SpanAcc = Vec<(Vec<usize>, Vec<Span>)>;

/// A compiled query: the plan, the optional preference-clause policy,
/// and enough source context to keep producing positioned diagnostics
/// during the check pass.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The compiled plan.
    pub plan: Plan,
    /// Policy from trailing `prefer` / `within` / `defer over` clauses;
    /// `None` when the query has none (use the server's own policy).
    pub policy: Option<Policy>,
    src: String,
    spans: SpanMap,
}

impl CompiledQuery {
    /// The source text this query was compiled from.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Builds a diagnostic pointing at the `idx`-th string literal of
    /// the node at `path` (falling back to position 1:1 for
    /// synthesized plans).
    pub(crate) fn diag_at(&self, path: &[usize], idx: usize, message: String) -> Diagnostic {
        let span = self
            .spans
            .get(path)
            .and_then(|s| s.get(idx).or_else(|| s.first()))
            .copied()
            .unwrap_or_else(|| Span::point(0));
        Diagnostic::at(&self.src, span, message)
    }
}

/// Compiles query text. Returns the first error as a positioned
/// diagnostic.
pub fn parse_query(src: &str) -> Result<CompiledQuery, Diagnostic> {
    let mut cur = Cursor::new(src)?;
    let (plan, acc) = parse_pipeline(&mut cur)?;
    let policy = parse_clauses(&mut cur)?;
    cur.expect_eof()?;
    let spans = acc
        .into_iter()
        .map(|(mut k, v)| {
            k.reverse();
            (k, v)
        })
        .collect();
    Ok(CompiledQuery {
        plan,
        policy,
        src: src.to_owned(),
        spans,
    })
}

/// Re-keys a child span accumulator under the child's index in its
/// parent (paths are reversed, so prepending is a push).
fn nest(mut child: SpanAcc, idx: usize) -> SpanAcc {
    for (k, _) in &mut child {
        k.push(idx);
    }
    child
}

fn parse_pipeline(cur: &mut Cursor) -> Result<(Plan, SpanAcc), Diagnostic> {
    let (mut plan, mut spans) = parse_head(cur)?;
    while cur.eat_punct('|') {
        let (kw, kw_span) = cur.expect_word("a stage (select, project, topn, agg, display)")?;
        spans = nest(spans, 0);
        let mut own = Vec::new();
        plan = match kw.as_str() {
            "select" => {
                let (text, span) = cur.expect_str("a predicate")?;
                let pred = Predicate::parse(&text)
                    .map_err(|e| Diagnostic::at(cur.src(), span, format!("bad predicate: {e}")))?;
                own.push(span);
                Plan::Select {
                    pred,
                    input: Box::new(plan),
                }
            }
            "project" => {
                let mut fields = Vec::new();
                while cur.at_str() {
                    let (f, span) = cur.expect_str("a field name")?;
                    own.push(span);
                    fields.push(f);
                }
                if fields.is_empty() {
                    return Err(cur.err("expected at least one quoted field after `project`"));
                }
                Plan::Project {
                    fields,
                    input: Box::new(plan),
                }
            }
            "topn" => {
                let (n, _) = cur.expect_number("a count after `topn`")?;
                cur.expect_keyword("by")?;
                let (key_text, key_span) = cur.expect_str("a sort key path")?;
                let key = Path::parse(&key_text).map_err(|e| {
                    Diagnostic::at(cur.src(), key_span, format!("bad sort key: {e}"))
                })?;
                own.push(key_span);
                let ascending = if cur.eat_word("asc") {
                    true
                } else if cur.eat_word("desc") {
                    false
                } else {
                    return Err(cur.err("expected `asc` or `desc`"));
                };
                Plan::TopN {
                    n: n as usize,
                    key,
                    ascending,
                    input: Box::new(plan),
                }
            }
            "agg" => {
                let (name, name_span) =
                    cur.expect_word("an aggregate function (count, sum, min, max, avg)")?;
                let func = AggFunc::parse(&name).ok_or_else(|| {
                    Diagnostic::at(
                        cur.src(),
                        name_span,
                        format!("unknown aggregate function `{name}`"),
                    )
                })?;
                let path = if cur.eat_word("of") {
                    let (p, span) = cur.expect_str("an aggregate path")?;
                    own.push(span);
                    Some(Path::parse(&p).map_err(|e| {
                        Diagnostic::at(cur.src(), span, format!("bad aggregate path: {e}"))
                    })?)
                } else {
                    None
                };
                Plan::Aggregate {
                    func,
                    path,
                    input: Box::new(plan),
                }
            }
            "display" => {
                cur.expect_keyword("to")?;
                let (target, span) = cur.expect_str("a display target")?;
                own.push(span);
                Plan::Display {
                    target,
                    input: Box::new(plan),
                }
            }
            other => {
                return Err(Diagnostic::at(
                    cur.src(),
                    kw_span,
                    format!(
                        "unknown stage `{other}` (expected select, project, topn, agg, or display)"
                    ),
                ));
            }
        };
        spans.push((Vec::new(), own));
    }
    Ok((plan, spans))
}

fn parse_head(cur: &mut Cursor) -> Result<(Plan, SpanAcc), Diagnostic> {
    let (kw, kw_span) = cur.expect_word("a source (urn, url, data, join, union, or)")?;
    let mut spans = SpanAcc::new();
    let mut own = Vec::new();
    let plan = match kw.as_str() {
        "urn" => {
            let (text, span) = cur.expect_str("a URN like \"urn:ForSale:Portland-CDs\"")?;
            let urn = Urn::parse(&text)
                .map_err(|e| Diagnostic::at(cur.src(), span, format!("bad URN: {e}")))?;
            own.push(span);
            let meta = parse_meta(cur)?;
            Plan::Urn(UrnRef { urn, meta })
        }
        "url" => {
            let (href, span) = cur.expect_str("a URL like \"mqp://seller-1/\"")?;
            own.push(span);
            let collection = if cur.eat_word("collection") {
                let (c, c_span) = cur.expect_str("a collection path")?;
                own.push(c_span);
                Some(Path::parse(&c).map_err(|e| {
                    Diagnostic::at(cur.src(), c_span, format!("bad collection path: {e}"))
                })?)
            } else {
                None
            };
            let meta = parse_meta(cur)?;
            Plan::Url(UrlRef {
                href,
                collection,
                meta,
            })
        }
        "data" => {
            let (text, span) = cur.expect_str("serialized XML items")?;
            own.push(span);
            let wrapped = format!("<d>{text}</d>");
            let root = mqp_xml::parse(&wrapped).map_err(|e| {
                Diagnostic::at(
                    cur.src(),
                    span,
                    format!("data items are not well-formed XML: {e}"),
                )
            })?;
            let items: Batch = root.child_elements().cloned().collect();
            let meta = parse_meta(cur)?;
            // Built directly (not via `Plan::data`, which injects a
            // cardinality annotation): the text's own annotations must
            // round-trip verbatim.
            Plan::Data { items, meta }
        }
        "join" => {
            cur.expect_punct('(')?;
            let (left, left_spans) = parse_pipeline(cur)?;
            cur.expect_punct(',')?;
            let (right, right_spans) = parse_pipeline(cur)?;
            cur.expect_punct(')')?;
            cur.expect_keyword("on")?;
            let (l, l_span) = cur.expect_str("the left join path")?;
            cur.expect_punct('=')?;
            let (r, r_span) = cur.expect_str("the right join path")?;
            let left_path = Path::parse(&l)
                .map_err(|e| Diagnostic::at(cur.src(), l_span, format!("bad join path: {e}")))?;
            let right_path = Path::parse(&r)
                .map_err(|e| Diagnostic::at(cur.src(), r_span, format!("bad join path: {e}")))?;
            own.push(l_span);
            own.push(r_span);
            spans.extend(nest(left_spans, 0));
            spans.extend(nest(right_spans, 1));
            Plan::Join {
                on: JoinCond {
                    left_path,
                    right_path,
                },
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        "union" => {
            cur.expect_punct('(')?;
            let mut subs = Vec::new();
            loop {
                let (sub, sub_spans) = parse_pipeline(cur)?;
                spans.extend(nest(sub_spans, subs.len()));
                subs.push(sub);
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.expect_punct(')')?;
            Plan::Union(subs)
        }
        "or" => {
            cur.expect_punct('(')?;
            let mut alts = Vec::new();
            loop {
                let (sub, sub_spans) = parse_pipeline(cur)?;
                spans.extend(nest(sub_spans, alts.len()));
                let staleness = if cur.eat_word("stale") {
                    let (s, s_span) = cur.expect_number("a staleness bound in minutes")?;
                    Some(u32::try_from(s).map_err(|_| {
                        Diagnostic::at(cur.src(), s_span, "staleness bound too large".to_owned())
                    })?)
                } else {
                    None
                };
                alts.push(OrAlt {
                    plan: sub,
                    staleness,
                });
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.expect_punct(')')?;
            Plan::Or(alts)
        }
        other => {
            return Err(Diagnostic::at(
                cur.src(),
                kw_span,
                format!("unknown source `{other}` (expected urn, url, data, join, union, or or)"),
            ));
        }
    };
    spans.push((Vec::new(), own));
    Ok((plan, spans))
}

/// `@(key="value", ...)` — keys may be bare words or quoted strings.
fn parse_meta(cur: &mut Cursor) -> Result<Annotations, Diagnostic> {
    let mut meta = Annotations::new();
    if !cur.eat_punct('@') {
        return Ok(meta);
    }
    cur.expect_punct('(')?;
    if cur.eat_punct(')') {
        return Ok(meta);
    }
    loop {
        let key = if cur.at_str() {
            cur.expect_str("an annotation key")?.0
        } else {
            cur.expect_word("an annotation key")?.0
        };
        cur.expect_punct('=')?;
        let (value, _) = cur.expect_str("an annotation value")?;
        meta.set(key, value);
        if !cur.eat_punct(',') {
            break;
        }
    }
    cur.expect_punct(')')?;
    Ok(meta)
}

/// Trailing §4.3 preference clauses. Order-insensitive; later clauses
/// override earlier ones; `None` when there are no clauses at all.
fn parse_clauses(cur: &mut Cursor) -> Result<Option<Policy>, Diagnostic> {
    let mut policy: Option<Policy> = None;
    loop {
        if cur.eat_word("prefer") {
            let (which, span) = cur.expect_word("`current` or `fast` after `prefer`")?;
            let pref = match which.as_str() {
                "current" => Preference::Current,
                "fast" => Preference::Fast,
                other => {
                    return Err(Diagnostic::at(
                        cur.src(),
                        span,
                        format!("unknown preference `{other}` (expected `current` or `fast`)"),
                    ));
                }
            };
            policy.get_or_insert_with(Policy::current).preference = pref;
        } else if cur.eat_word("within") {
            let (minutes, _) = cur.expect_duration()?;
            policy.get_or_insert_with(Policy::current).max_staleness = Some(minutes);
        } else if cur.eat_word("defer") {
            cur.expect_keyword("over")?;
            let (bytes, _) = cur.expect_size()?;
            policy.get_or_insert_with(Policy::current).defer_bytes = bytes;
        } else {
            return Ok(policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_parses_to_the_expected_plan() {
        let q = parse_query(
            "union (\n  url \"mqp://a/\",\n  url \"mqp://b/\"\n)\n| select \"price < 10\"\n| topn 3 by \"price\" asc",
        )
        .unwrap();
        let expected = Plan::top_n(
            3,
            "price",
            true,
            Plan::select(
                "price < 10",
                Plan::union([Plan::url("mqp://a/"), Plan::url("mqp://b/")]),
            ),
        );
        assert_eq!(q.plan, expected);
        assert!(q.policy.is_none());
    }

    #[test]
    fn figure3_query_round_trips_through_render() {
        let text =
            "urn \"urn:ForSale:Portland-CDs\"\n| select \"price < 10\"\n| display to \"client#0\"";
        let q = parse_query(text).unwrap();
        assert_eq!(q.plan.render(), text);
        assert_eq!(parse_query(&q.plan.render()).unwrap().plan, q.plan);
    }

    #[test]
    fn preference_clauses_build_a_policy() {
        let q = parse_query("urn \"urn:X:y\" prefer fast within 30min defer over 4kb").unwrap();
        let p = q.policy.unwrap();
        assert_eq!(p.preference, Preference::Fast);
        assert_eq!(p.max_staleness, Some(30));
        assert_eq!(p.defer_bytes, 4096.0);

        let q = parse_query("urn \"urn:X:y\" within 2h").unwrap();
        assert_eq!(q.policy.unwrap().max_staleness, Some(120));
        assert_eq!(q.policy.unwrap().preference, Preference::Current);
    }

    #[test]
    fn join_or_data_and_annotations_parse() {
        let q = parse_query(
            "join (\n  or (\n    urn \"urn:ForSale:pdx\",\n    url \"mqp://s/\" @(area=\"x\") stale 30\n  ),\n  data \"<item><t>A</t></item>\" @(cardinality=\"1\")\n) on \"album\" = \"title\"",
        )
        .unwrap();
        let Plan::Join { on, left, right } = &q.plan else {
            panic!("expected join");
        };
        assert_eq!(on.left_path.to_string(), "album");
        let Plan::Or(alts) = left.as_ref() else {
            panic!("expected or");
        };
        assert_eq!(alts[1].staleness, Some(30));
        let Plan::Data { items, meta } = right.as_ref() else {
            panic!("expected data");
        };
        assert_eq!(items.len(), 1);
        assert_eq!(meta.get("cardinality"), Some("1"));
        // And the whole thing round-trips.
        assert_eq!(parse_query(&q.plan.render()).unwrap().plan, q.plan);
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_query("urn \"not a urn\"").unwrap_err();
        assert!(err.message.starts_with("bad URN"), "{err}");
        assert_eq!((err.line, err.col), (1, 5));

        let err = parse_query("url \"mqp://a/\" | grep \"x\"").unwrap_err();
        assert!(err.message.contains("unknown stage `grep`"), "{err}");

        let err = parse_query("url \"mqp://a/\" nonsense").unwrap_err();
        assert!(err.message.contains("unexpected trailing input"), "{err}");
    }
}
