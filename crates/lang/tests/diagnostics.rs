//! Snapshot tests for the ten most common compile errors: the exact
//! rendered text — message, position line, gutter, source excerpt, and
//! caret underline — is pinned byte for byte. These strings are the
//! crate's user interface; a formatting regression here is as real as
//! a parser bug.

use mqp_lang::{check_query, parse_policy, parse_query};

fn query_diag(src: &str) -> String {
    parse_query(src).unwrap_err().to_string()
}

fn policy_diag(src: &str) -> String {
    parse_policy(src).unwrap_err().to_string()
}

#[test]
fn unterminated_string() {
    assert_eq!(
        query_diag("urn \"urn:ForSale:pdx"),
        "error: unterminated string literal\n  --> line 1, column 5\n   |\n 1 | urn \"urn:ForSale:pdx\n   |     ^^^^^^^^^^^^^^^^"
    );
}

#[test]
fn unknown_escape() {
    assert_eq!(
        query_diag("url \"mqp:\\qa/\""),
        "error: unknown escape `\\q` (expected \\\\ \\\" \\n \\r \\t)\n  --> line 1, column 10\n   |\n 1 | url \"mqp:\\qa/\"\n   |          ^^"
    );
}

#[test]
fn unexpected_character() {
    assert_eq!(
        query_diag("urn {\"x\"}"),
        "error: unexpected character `{`\n  --> line 1, column 5\n   |\n 1 | urn {\"x\"}\n   |     ^"
    );
}

#[test]
fn bad_urn() {
    assert_eq!(
        query_diag("urn \"Portland-CDs\""),
        "error: bad URN: not a URN: \"Portland-CDs\"\n  --> line 1, column 5\n   |\n 1 | urn \"Portland-CDs\"\n   |     ^^^^^^^^^^^^^^"
    );
}

#[test]
fn bad_predicate() {
    assert_eq!(
        query_diag("url \"mqp://s/\"\n| select \"price <\""),
        "error: bad predicate: expected literal at byte 7\n  --> line 2, column 10\n   |\n 2 | | select \"price <\"\n   |          ^^^^^^^^^"
    );
}

#[test]
fn unknown_stage() {
    assert_eq!(
        query_diag("url \"mqp://s/\" | grep \"x\""),
        "error: unknown stage `grep` (expected select, project, topn, agg, or display)\n  --> line 1, column 18\n   |\n 1 | url \"mqp://s/\" | grep \"x\"\n   |                  ^^^^"
    );
}

#[test]
fn unexpected_trailing_input() {
    assert_eq!(
        query_diag("url \"mqp://s/\" nonsense"),
        "error: unexpected trailing input\n  --> line 1, column 16\n   |\n 1 | url \"mqp://s/\" nonsense\n   |                ^^^^^^^^"
    );
}

#[test]
fn unknown_urn_in_check_pass() {
    let q = parse_query("urn \"urn:ForSale:Nowhere\"").unwrap();
    let catalog = mqp_catalog::Catalog::new();
    let ns = mqp_namespace::Namespace::new([]);
    assert_eq!(
        check_query(&q, &catalog, &ns).unwrap_err().to_string(),
        "error: unknown URN `urn:ForSale:Nowhere` (no catalog entry resolves it)\n  --> line 1, column 5\n   |\n 1 | urn \"urn:ForSale:Nowhere\"\n   |     ^^^^^^^^^^^^^^^^^^^^^"
    );
}

#[test]
fn policy_non_area_urn() {
    assert_eq!(
        policy_diag("when area within \"urn:ForSale:pdx\" then defer"),
        "error: `urn:ForSale:pdx` is not an interest-area URN (expected urn:InterestArea:\u{2026})\n  --> line 1, column 18\n   |\n 1 | when area within \"urn:ForSale:pdx\" then defer\n   |                  ^^^^^^^^^^^^^^^^^"
    );
}

#[test]
fn policy_bad_duration() {
    assert_eq!(
        policy_diag("default fast\nwithin 3fortnights"),
        "error: bad duration `3fortnights` (expected e.g. `30min` or `2h`)\n  --> line 2, column 8\n   |\n 2 | within 3fortnights\n   |        ^^^^^^^^^^^"
    );
}
