//! Interest cells and interest areas (paper §3.1, Figure 5).

use std::fmt;

use crate::hierarchy::{CategoryPath, Namespace};

/// An *interest cell*: the cross product of one category per dimension,
/// written as an n-tuple, e.g. `[USA/OR/Portland, Furniture]`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell(Vec<CategoryPath>);

impl Cell {
    /// Builds a cell from per-dimension coordinates (namespace order).
    pub fn new(coords: impl IntoIterator<Item = CategoryPath>) -> Self {
        Cell(coords.into_iter().collect())
    }

    /// Convenience: builds a cell from path strings, e.g.
    /// `Cell::parse(["USA/OR/Portland", "Furniture"])`.
    pub fn parse<'a>(coords: impl IntoIterator<Item = &'a str>) -> Self {
        Cell(coords.into_iter().map(CategoryPath::from).collect())
    }

    /// The all-inclusive cell `[*, *, …]` for an `arity`-dimension
    /// namespace.
    pub fn top(arity: usize) -> Self {
        Cell(vec![CategoryPath::top(); arity])
    }

    /// Per-dimension coordinates.
    pub fn coords(&self) -> &[CategoryPath] {
        &self.0
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Cell cover (paper): `x` covers `y` iff for *every* dimension the
    /// category of `x` is a parent of, or the same as, that of `y`.
    /// Cells of different arity never cover each other.
    pub fn covers(&self, other: &Cell) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.covers(b))
    }

    /// The intersection cell, if the two cells share any coordinates:
    /// per-dimension the more specific category; `None` if any dimension
    /// is incomparable (then the cells share no items).
    pub fn intersect(&self, other: &Cell) -> Option<Cell> {
        if self.0.len() != other.0.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.0.len());
        for (a, b) in self.0.iter().zip(&other.0) {
            out.push(a.intersect(b)?);
        }
        Some(Cell(out))
    }

    /// True if the two cells share at least one most-specific cell.
    pub fn overlaps(&self, other: &Cell) -> bool {
        self.intersect(other).is_some()
    }

    /// Generalizes every coordinate by `levels` (see
    /// [`CategoryPath::generalize`]).
    pub fn generalize(&self, levels: usize) -> Cell {
        Cell(self.0.iter().map(|c| c.generalize(levels)).collect())
    }

    /// Sum of coordinate depths; a simple specificity measure used to
    /// pick "most detailed authoritative server" (§3.3).
    pub fn specificity(&self) -> usize {
        self.0.iter().map(CategoryPath::depth).sum()
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// An *interest area*: a set of interest cells. Data providers describe
/// their holdings with one; data consumers phrase queries with one.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct InterestArea {
    cells: Vec<Cell>,
}

impl InterestArea {
    /// Empty area (covers nothing).
    pub fn empty() -> Self {
        InterestArea::default()
    }

    /// Area of a single cell.
    pub fn of(cell: Cell) -> Self {
        InterestArea { cells: vec![cell] }.canonical()
    }

    /// Area from several cells; canonicalizes (drops cells covered by
    /// sibling cells, dedups, sorts).
    pub fn new(cells: impl IntoIterator<Item = Cell>) -> Self {
        InterestArea {
            cells: cells.into_iter().collect(),
        }
        .canonical()
    }

    /// Convenience for tests/examples: builds from string tuples, e.g.
    /// `InterestArea::parse(&[&["USA/OR/Portland", "Furniture"]])`.
    pub fn parse(cells: &[&[&str]]) -> Self {
        InterestArea::new(cells.iter().map(|c| Cell::parse(c.iter().copied())))
    }

    /// The area's cells (canonical order).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// True if the area has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Canonical form: no cell covered by another cell of the same area,
    /// no duplicates, sorted. Two areas denoting the same region compare
    /// equal in canonical form *when cover structure makes them equal as
    /// cell sets*; full extensional equality would need the hierarchy
    /// (e.g. a parent equals the union of all its children only if the
    /// children are exhaustive, which providers cannot know — see §3.2).
    pub fn canonical(mut self) -> Self {
        self.cells.sort();
        self.cells.dedup();
        let cells = std::mem::take(&mut self.cells);
        let mut keep: Vec<Cell> = Vec::with_capacity(cells.len());
        // After dedup, mutual cover implies equality, so `covers` on
        // distinct cells is strict domination.
        for c in &cells {
            let dominated = cells.iter().any(|other| other != c && other.covers(c));
            if !dominated {
                keep.push(c.clone());
            }
        }
        InterestArea { cells: keep }
    }

    /// Area cover (paper): `a` covers `b` iff every cell of `b` is
    /// covered by *some* cell of `a`.
    pub fn covers(&self, other: &InterestArea) -> bool {
        other
            .cells
            .iter()
            .all(|b| self.cells.iter().any(|a| a.covers(b)))
    }

    /// Two areas overlap iff some cell is covered by both — equivalently,
    /// some pair of their cells intersects.
    pub fn overlaps(&self, other: &InterestArea) -> bool {
        self.cells
            .iter()
            .any(|a| other.cells.iter().any(|b| a.overlaps(b)))
    }

    /// The intersection area: all pairwise cell intersections.
    pub fn intersect(&self, other: &InterestArea) -> InterestArea {
        InterestArea::new(
            self.cells
                .iter()
                .flat_map(|a| other.cells.iter().filter_map(move |b| a.intersect(b))),
        )
    }

    /// The union area (canonicalized).
    pub fn union(&self, other: &InterestArea) -> InterestArea {
        InterestArea::new(self.cells.iter().chain(&other.cells).cloned())
    }

    /// Validates every cell against the namespace.
    pub fn valid_in(&self, ns: &Namespace) -> bool {
        self.cells.iter().all(|c| ns.validates_cell(c))
    }

    /// Rewrites every coordinate to its nearest known category in `ns`
    /// (§3.5 approximation: loses precision, never recall).
    pub fn generalize_to_known(&self, ns: &Namespace) -> InterestArea {
        InterestArea::new(self.cells.iter().map(|cell| {
            Cell::new(
                cell.coords()
                    .iter()
                    .zip(ns.dimensions())
                    .map(|(c, d)| d.generalize_to_known(c)),
            )
        }))
    }

    /// Maximum cell specificity in the area.
    pub fn specificity(&self) -> usize {
        self.cells.iter().map(Cell::specificity).max().unwrap_or(0)
    }
}

impl fmt::Display for InterestArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cells.is_empty() {
            return write!(f, "∅");
        }
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdx_furniture() -> Cell {
        Cell::parse(["USA/OR/Portland", "Furniture"])
    }

    #[test]
    fn cell_covers_requires_all_dims() {
        let broad = Cell::parse(["USA", "Furniture"]);
        let narrow = Cell::parse(["USA/OR/Portland", "Furniture/Chairs"]);
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        // One dimension broader, the other narrower: neither covers.
        let mixed = Cell::parse(["USA/OR", "Furniture/Chairs/Armchairs"]);
        let other = Cell::parse(["USA/OR/Portland", "Furniture"]);
        assert!(!mixed.covers(&other));
        assert!(!other.covers(&mixed));
        // But they overlap (figure-5 style partial overlap).
        assert!(mixed.overlaps(&other));
        assert_eq!(
            mixed.intersect(&other).unwrap(),
            Cell::parse(["USA/OR/Portland", "Furniture/Chairs/Armchairs"])
        );
    }

    #[test]
    fn disjoint_cells_do_not_intersect() {
        let pdx = Cell::parse(["USA/OR/Portland", "Furniture"]);
        let fr = Cell::parse(["France", "Furniture"]);
        assert!(pdx.intersect(&fr).is_none());
        assert!(!pdx.overlaps(&fr));
    }

    #[test]
    fn arity_mismatch_never_covers() {
        let a = Cell::parse(["USA"]);
        let b = Cell::parse(["USA", "Furniture"]);
        assert!(!a.covers(&b));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn paper_figure5_areas() {
        // Area (a): Vancouver–Portland furniture; area (b): all of Portland.
        let a = InterestArea::parse(&[
            &["USA/WA/Vancouver", "Furniture"],
            &["USA/OR/Portland", "Furniture"],
        ]);
        let b = InterestArea::parse(&[&["USA/OR/Portland", "*"]]);
        // The armchair query of §3.1.
        let q = InterestArea::parse(&[&["USA/OR/Portland", "Furniture/Chairs"]]);
        assert!(a.overlaps(&q));
        assert!(b.overlaps(&q));
        assert!(b.covers(&q));
        assert!(!a.covers(&b));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn canonical_drops_dominated_cells() {
        let area = InterestArea::parse(&[
            &["USA", "Furniture"],
            &["USA/OR/Portland", "Furniture/Chairs"], // covered by the first
            &["France", "*"],
        ]);
        assert_eq!(area.cells().len(), 2);
        assert!(area.covers(&InterestArea::parse(&[&[
            "USA/OR/Portland",
            "Furniture/Chairs"
        ]])));
    }

    #[test]
    fn canonical_dedups() {
        let area = InterestArea::parse(&[&["USA", "*"], &["USA", "*"]]);
        assert_eq!(area.cells().len(), 1);
    }

    #[test]
    fn intersect_areas() {
        let sporting = InterestArea::parse(&[&["USA/OR", "SportingGoods"]]);
        let pdx_all = InterestArea::parse(&[&["USA/OR/Portland", "*"]]);
        let both = sporting.intersect(&pdx_all);
        assert_eq!(
            both,
            InterestArea::parse(&[&["USA/OR/Portland", "SportingGoods"]])
        );
        let fr = InterestArea::parse(&[&["France", "*"]]);
        assert!(sporting.intersect(&fr).is_empty());
    }

    #[test]
    fn union_canonicalizes() {
        let a = InterestArea::parse(&[&["USA/OR/Portland", "Furniture"]]);
        let b = InterestArea::parse(&[&["USA", "Furniture"]]);
        let u = a.union(&b);
        assert_eq!(u.cells().len(), 1);
        assert_eq!(u, b);
    }

    #[test]
    fn empty_area_behaviour() {
        let e = InterestArea::empty();
        let any = InterestArea::parse(&[&["USA", "*"]]);
        assert!(any.covers(&e)); // vacuous
        assert!(!e.covers(&any));
        assert!(!e.overlaps(&any));
        assert_eq!(e.to_string(), "∅");
    }

    #[test]
    fn display_formats() {
        assert_eq!(pdx_furniture().to_string(), "[USA/OR/Portland, Furniture]");
        let area = InterestArea::parse(&[
            &["USA/OR/Portland", "Furniture"],
            &["USA/WA/Vancouver", "Furniture"],
        ]);
        let s = area.to_string();
        assert!(s.contains(" + "), "{s}");
    }

    #[test]
    fn generalize_to_known_against_namespace() {
        use crate::hierarchy::{Hierarchy, Namespace};
        let ns = Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Furniture/Chairs"]),
        ]);
        let area =
            InterestArea::parse(&[&["USA/OR/Portland/Hawthorne", "Furniture/Chairs/Recliners"]]);
        assert!(!area.valid_in(&ns));
        let g = area.generalize_to_known(&ns);
        assert!(g.valid_in(&ns));
        assert_eq!(
            g,
            InterestArea::parse(&[&["USA/OR/Portland", "Furniture/Chairs"]])
        );
        assert!(g.covers(&InterestArea::parse(&[&[
            "USA/OR/Portland",
            "Furniture/Chairs"
        ]])));
    }

    #[test]
    fn specificity_orders_detail() {
        let broad = InterestArea::parse(&[&["USA", "*"]]);
        let narrow = InterestArea::parse(&[&["USA/OR/Portland", "Furniture/Chairs"]]);
        assert!(narrow.specificity() > broad.specificity());
    }
}
