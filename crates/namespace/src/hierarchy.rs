//! Categorization hierarchies and category paths.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use mqp_xml::Name;

/// A path from a hierarchy's root to a category, e.g. `USA/OR/Portland`.
/// The empty path is the all-inclusive top category `*` (paper §3.1).
///
/// Paths are meaningful relative to a [`Hierarchy`]; [`CategoryPath`]
/// itself is purely lexical so URN decoding can stay lexical (§3.4).
///
/// Segments are interned [`Name`]s: a federation of 100k peers repeats
/// the same few hundred category names across every interest area,
/// catalog entry, and query coordinate, so each distinct segment is one
/// shared allocation and cloning a path bumps reference counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CategoryPath(Vec<Name>);

impl CategoryPath {
    /// The top category `*`.
    pub fn top() -> Self {
        CategoryPath(Vec::new())
    }

    /// Builds a path from segments.
    pub fn new<S: Into<Name>>(segments: impl IntoIterator<Item = S>) -> Self {
        CategoryPath(segments.into_iter().map(Into::into).collect())
    }

    /// Number of levels below the root (0 for `*`).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// True for the all-inclusive top category.
    pub fn is_top(&self) -> bool {
        self.0.is_empty()
    }

    /// The path segments.
    pub fn segments(&self) -> &[Name] {
        &self.0
    }

    /// Final segment, if any (`Portland` for `USA/OR/Portland`).
    pub fn leaf(&self) -> Option<&str> {
        self.0.last().map(Name::as_str)
    }

    /// The immediate parent (`USA/OR` for `USA/OR/Portland`); `None` for
    /// the top category.
    pub fn parent(&self) -> Option<CategoryPath> {
        if self.0.is_empty() {
            None
        } else {
            Some(CategoryPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Extends the path by one segment.
    pub fn child(&self, segment: impl Into<Name>) -> CategoryPath {
        let mut v = self.0.clone();
        v.push(segment.into());
        CategoryPath(v)
    }

    /// True if `self` is the same as or an ancestor of `other` — i.e. the
    /// category `self` *covers* the category `other` (prefix relation).
    pub fn covers(&self, other: &CategoryPath) -> bool {
        self.0.len() <= other.0.len() && self.0[..] == other.0[..self.0.len()]
    }

    /// True if one of the two covers the other (they lie on one root
    /// path); exactly when the two categories share items.
    pub fn comparable(&self, other: &CategoryPath) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The more specific of two comparable paths; `None` if incomparable.
    /// This is the intersection of the two categories as item sets.
    pub fn intersect(&self, other: &CategoryPath) -> Option<CategoryPath> {
        if self.covers(other) {
            Some(other.clone())
        } else if other.covers(self) {
            Some(self.clone())
        } else {
            None
        }
    }

    /// Generalizes the path by dropping its last `levels` segments
    /// (paper §3.5: "rewrite `USA/OR/Portland` into `USA/OR`, with a
    /// possible loss of precision, but no loss of recall").
    pub fn generalize(&self, levels: usize) -> CategoryPath {
        let keep = self.0.len().saturating_sub(levels);
        CategoryPath(self.0[..keep].to_vec())
    }

    /// Longest common prefix of the two paths.
    pub fn common_ancestor(&self, other: &CategoryPath) -> CategoryPath {
        let n = self
            .0
            .iter()
            .zip(&other.0)
            .take_while(|(a, b)| a == b)
            .count();
        CategoryPath(self.0[..n].to_vec())
    }
}

impl fmt::Display for CategoryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            f.write_str("*")
        } else {
            for (i, seg) in self.0.iter().enumerate() {
                if i > 0 {
                    f.write_str("/")?;
                }
                f.write_str(seg.as_str())?;
            }
            Ok(())
        }
    }
}

impl FromStr for CategoryPath {
    type Err = std::convert::Infallible;

    /// Parses `USA/OR/Portland` or `*`. Never fails: the lexical form of
    /// every string is some path; validity against a hierarchy is a
    /// separate check ([`Hierarchy::contains`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "*" {
            return Ok(CategoryPath::top());
        }
        Ok(CategoryPath(
            s.split('/')
                .filter(|p| !p.is_empty())
                .map(Name::new)
                .collect(),
        ))
    }
}

impl From<&str> for CategoryPath {
    fn from(s: &str) -> Self {
        s.parse().expect("infallible")
    }
}

/// One categorization hierarchy ("dimension"), e.g. Location or
/// Merchandise. A rooted tree of named categories; the root is the
/// all-inclusive `*`.
///
/// Stored as a sorted map from path to child names, which keeps
/// enumeration deterministic (important for reproducible simulations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    name: String,
    /// Every known category path (excluding the root), mapped to its
    /// children's leaf names. The root's children live under `top()`.
    children: BTreeMap<CategoryPath, Vec<Name>>,
}

impl Hierarchy {
    /// Creates an empty hierarchy (just the `*` root) with a dimension
    /// name, e.g. `"Location"`.
    pub fn new(name: impl Into<String>) -> Self {
        let mut children = BTreeMap::new();
        children.insert(CategoryPath::top(), Vec::new());
        Hierarchy {
            name: name.into(),
            children,
        }
    }

    /// The dimension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a category (and all missing ancestors). Idempotent.
    pub fn add(&mut self, path: impl Into<CategoryPath>) {
        let path = path.into();
        let mut cur = CategoryPath::top();
        for seg in path.segments() {
            let kids = self.children.entry(cur.clone()).or_default();
            if !kids.iter().any(|k| k == seg) {
                kids.push(seg.clone());
                kids.sort();
            }
            cur = cur.child(seg.clone());
            self.children.entry(cur.clone()).or_default();
        }
    }

    /// Bulk [`Hierarchy::add`]; returns `self` for chaining.
    pub fn with(mut self, paths: impl IntoIterator<Item = &'static str>) -> Self {
        for p in paths {
            self.add(p);
        }
        self
    }

    /// True if the path names a known category (the root always exists).
    pub fn contains(&self, path: &CategoryPath) -> bool {
        path.is_top() || self.children.contains_key(path)
    }

    /// Leaf names of the immediate subcategories of `path` — the category
    /// server query of §3.2 ("What are the immediate subcategories of
    /// Furniture?").
    pub fn subcategories(&self, path: &CategoryPath) -> &[Name] {
        self.children
            .get(path)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Full paths of the immediate subcategories of `path`.
    pub fn subcategory_paths(&self, path: &CategoryPath) -> Vec<CategoryPath> {
        self.subcategories(path)
            .iter()
            .map(|s| path.child(s.clone()))
            .collect()
    }

    /// All category paths in the hierarchy, including the root, in
    /// depth-first sorted order.
    pub fn all_paths(&self) -> Vec<CategoryPath> {
        let mut v: Vec<CategoryPath> = self.children.keys().cloned().collect();
        v.sort();
        v
    }

    /// Leaf categories (no children).
    pub fn leaves(&self) -> Vec<CategoryPath> {
        self.children
            .iter()
            .filter(|(_, kids)| kids.is_empty())
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Number of categories (excluding the root).
    pub fn len(&self) -> usize {
        self.children.len() - 1
    }

    /// True if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rewrites `path` to its nearest known ancestor (possibly the root):
    /// the approximation rule of §3.5. Returns the path unchanged when it
    /// is already known.
    pub fn generalize_to_known(&self, path: &CategoryPath) -> CategoryPath {
        let mut p = path.clone();
        while !self.contains(&p) {
            match p.parent() {
                Some(parent) => p = parent,
                None => return CategoryPath::top(),
            }
        }
        p
    }

    /// Maximum depth of any category.
    pub fn max_depth(&self) -> usize {
        self.children
            .keys()
            .map(CategoryPath::depth)
            .max()
            .unwrap_or(0)
    }
}

/// An ordered set of dimensions: the multi-hierarchic namespace of §3.1.
/// Cell and area coordinates are aligned with this dimension order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Namespace {
    dimensions: Vec<Hierarchy>,
}

impl Namespace {
    /// Creates a namespace from dimensions; order is significant.
    pub fn new(dimensions: impl IntoIterator<Item = Hierarchy>) -> Self {
        Namespace {
            dimensions: dimensions.into_iter().collect(),
        }
    }

    /// The dimensions in coordinate order.
    pub fn dimensions(&self) -> &[Hierarchy] {
        &self.dimensions
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dimensions.len()
    }

    /// Looks a dimension up by name.
    pub fn dimension(&self, name: &str) -> Option<&Hierarchy> {
        self.dimensions.iter().find(|d| d.name() == name)
    }

    /// Index of a dimension by name.
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.name() == name)
    }

    /// Validates that every coordinate of `cell` names a known category.
    pub fn validates_cell(&self, cell: &crate::area::Cell) -> bool {
        cell.coords().len() == self.arity()
            && cell
                .coords()
                .iter()
                .zip(&self.dimensions)
                .all(|(c, d)| d.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn location() -> Hierarchy {
        Hierarchy::new("Location").with([
            "USA/OR/Portland",
            "USA/OR/Eugene",
            "USA/WA/Seattle",
            "USA/WA/Vancouver",
            "France",
        ])
    }

    #[test]
    fn path_parse_and_display() {
        let p: CategoryPath = "USA/OR/Portland".into();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), "USA/OR/Portland");
        assert_eq!(CategoryPath::top().to_string(), "*");
        let t: CategoryPath = "*".into();
        assert!(t.is_top());
    }

    #[test]
    fn covers_is_prefix_relation() {
        let usa: CategoryPath = "USA".into();
        let or: CategoryPath = "USA/OR".into();
        let pdx: CategoryPath = "USA/OR/Portland".into();
        let fr: CategoryPath = "France".into();
        assert!(CategoryPath::top().covers(&pdx));
        assert!(usa.covers(&pdx));
        assert!(or.covers(&pdx));
        assert!(pdx.covers(&pdx));
        assert!(!pdx.covers(&or));
        assert!(!usa.covers(&fr));
        assert!(!fr.covers(&usa));
    }

    #[test]
    fn intersect_picks_more_specific() {
        let usa: CategoryPath = "USA".into();
        let pdx: CategoryPath = "USA/OR/Portland".into();
        let fr: CategoryPath = "France".into();
        assert_eq!(usa.intersect(&pdx), Some(pdx.clone()));
        assert_eq!(pdx.intersect(&usa), Some(pdx.clone()));
        assert_eq!(usa.intersect(&fr), None);
    }

    #[test]
    fn generalize_drops_levels() {
        let pdx: CategoryPath = "USA/OR/Portland".into();
        assert_eq!(pdx.generalize(1).to_string(), "USA/OR");
        assert_eq!(pdx.generalize(9), CategoryPath::top());
    }

    #[test]
    fn common_ancestor() {
        let pdx: CategoryPath = "USA/OR/Portland".into();
        let eug: CategoryPath = "USA/OR/Eugene".into();
        let sea: CategoryPath = "USA/WA/Seattle".into();
        assert_eq!(pdx.common_ancestor(&eug).to_string(), "USA/OR");
        assert_eq!(pdx.common_ancestor(&sea).to_string(), "USA");
    }

    #[test]
    fn hierarchy_add_creates_ancestors() {
        let h = location();
        assert!(h.contains(&"USA".into()));
        assert!(h.contains(&"USA/OR".into()));
        assert!(h.contains(&"USA/OR/Portland".into()));
        assert!(!h.contains(&"USA/CA".into()));
        // USA, USA/OR, Portland, Eugene, USA/WA, Seattle, Vancouver, France
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn subcategories_sorted() {
        let h = location();
        assert_eq!(h.subcategories(&"USA/OR".into()), ["Eugene", "Portland"]);
        assert_eq!(h.subcategories(&CategoryPath::top()), ["France", "USA"]);
        assert!(h.subcategories(&"France".into()).is_empty());
    }

    #[test]
    fn leaves_have_no_children() {
        let h = location();
        let leaves = h.leaves();
        assert!(leaves.contains(&"USA/OR/Portland".into()));
        assert!(leaves.contains(&"France".into()));
        assert!(!leaves.contains(&"USA".into()));
    }

    #[test]
    fn generalize_to_known_walks_up() {
        let h = location();
        let unknown: CategoryPath = "USA/OR/Portland/Hawthorne".into();
        assert_eq!(
            h.generalize_to_known(&unknown).to_string(),
            "USA/OR/Portland"
        );
        let alien: CategoryPath = "Atlantis/Deep".into();
        assert!(h.generalize_to_known(&alien).is_top());
    }

    #[test]
    fn add_is_idempotent() {
        let mut h = location();
        let before = h.clone();
        h.add("USA/OR/Portland");
        assert_eq!(h, before);
    }

    #[test]
    fn namespace_lookup() {
        let ns = Namespace::new([
            location(),
            Hierarchy::new("Merchandise").with(["Furniture/Chairs"]),
        ]);
        assert_eq!(ns.arity(), 2);
        assert_eq!(ns.dimension_index("Merchandise"), Some(1));
        assert!(ns.dimension("Absent").is_none());
        assert_eq!(ns.dimension("Location").unwrap().max_depth(), 3);
    }
}
