//! # mqp-namespace — multi-hierarchic namespaces (paper §3.1, Figure 5)
//!
//! The paper's distributed catalogs rest on *multi-hierarchic
//! namespaces*: a set of independent categorization hierarchies
//! ("dimensions", e.g. Location × Merchandise). Within one hierarchy an
//! item belongs to exactly one *most-specific category* and to all of its
//! ancestors. An *interest cell* picks one category per dimension; an
//! *interest area* is a set of cells. Cover/overlap relations over areas
//! drive both catalog indexing and query routing.
//!
//! This crate implements:
//! * [`Hierarchy`] — one categorization hierarchy (a rooted tree whose
//!   root is the all-inclusive `*` category).
//! * [`CategoryPath`] — a path from the root, e.g. `USA/OR/Portland`.
//! * [`Namespace`] — an ordered set of dimensions.
//! * [`Cell`] / [`InterestArea`] — with `covers`, `overlaps`,
//!   `intersect`, and canonicalization.
//! * [`urn`] — the purely lexical URN codec of §3.4
//!   (`urn:InterestArea:(USA.OR.Portland,Furniture)+…`) plus named
//!   resource URNs (`urn:ForSale:Portland-CDs`).
//! * Category generalization (§3.5): rewriting an unknown category to an
//!   ancestor, losing precision but not recall.

pub mod area;
pub mod hierarchy;
pub mod urn;

pub use area::{Cell, InterestArea};
pub use hierarchy::{CategoryPath, Hierarchy, Namespace};
pub use urn::Urn;

#[cfg(test)]
mod proptests;
