//! Property tests: the cover relation is a partial order on canonical
//! areas, overlap is symmetric and witnessed by intersection, and the URN
//! codec round-trips — the invariants DESIGN.md §5 commits to.

use proptest::prelude::*;

use crate::area::{Cell, InterestArea};
use crate::hierarchy::CategoryPath;
use crate::urn::{decode_area, encode_area, Urn};

/// Category paths drawn from a small alphabet so cover/overlap cases are
/// actually exercised (a huge alphabet would make everything disjoint).
fn arb_path() -> impl Strategy<Value = CategoryPath> {
    proptest::collection::vec(proptest::sample::select(vec!["A", "B", "C"]), 0..4)
        .prop_map(|segs| CategoryPath::new(segs.into_iter().map(str::to_owned)))
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    proptest::collection::vec(arb_path(), 2..=2).prop_map(Cell::new)
}

fn arb_area() -> impl Strategy<Value = InterestArea> {
    proptest::collection::vec(arb_cell(), 1..5).prop_map(InterestArea::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn path_cover_partial_order(a in arb_path(), b in arb_path(), c in arb_path()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    #[test]
    fn path_intersect_is_glb(a in arb_path(), b in arb_path()) {
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.covers(&i) && b.covers(&i));
                // Greatest: i is one of the two inputs.
                prop_assert!(i == a || i == b);
            }
            None => prop_assert!(!a.comparable(&b)),
        }
    }

    #[test]
    fn cell_cover_partial_order(a in arb_cell(), b in arb_cell(), c in arb_cell()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    #[test]
    fn cell_overlap_symmetric_with_witness(a in arb_cell(), b in arb_cell()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if let Some(w) = a.intersect(&b) {
            prop_assert!(a.covers(&w) && b.covers(&w));
        }
    }

    #[test]
    fn area_cover_reflexive_transitive(a in arb_area(), b in arb_area(), c in arb_area()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    #[test]
    fn area_overlap_symmetric(a in arb_area(), b in arb_area()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn area_intersection_covered_by_both(a in arb_area(), b in arb_area()) {
        let i = a.intersect(&b);
        prop_assert!(a.covers(&i), "a={a} b={b} i={i}");
        prop_assert!(b.covers(&i), "a={a} b={b} i={i}");
        prop_assert_eq!(!i.is_empty(), a.overlaps(&b));
    }

    #[test]
    fn area_union_covers_both(a in arb_area(), b in arb_area()) {
        let u = a.union(&b);
        prop_assert!(u.covers(&a));
        prop_assert!(u.covers(&b));
    }

    #[test]
    fn canonical_is_idempotent_and_equivalent(a in arb_area()) {
        let c = a.clone().canonical();
        prop_assert_eq!(c.clone().canonical(), c.clone());
        // Canonicalization preserves the covered region.
        prop_assert!(c.covers(&a) && a.covers(&c));
    }

    #[test]
    fn urn_roundtrip(a in arb_area()) {
        let urn = Urn::area(a.clone());
        let s = urn.to_string();
        let back = Urn::parse(&s).expect("urn reparse");
        prop_assert_eq!(back, urn);
        // And via the raw codec.
        prop_assert_eq!(decode_area(&encode_area(&a)).unwrap(), a);
    }

    #[test]
    fn cover_implies_overlap_on_nonempty(a in arb_area(), b in arb_area()) {
        if a.covers(&b) && !b.is_empty() {
            prop_assert!(a.overlaps(&b));
        }
    }
}
