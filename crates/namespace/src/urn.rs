//! URN codec (paper §3.4).
//!
//! Two URN forms appear in the paper:
//!
//! * Named resources, e.g. `urn:ForSale:Portland-CDs` and
//!   `urn:CD:TrackListings` (Figure 3) — an opaque namespace identifier
//!   plus a namespace-specific string, resolved via catalog mappings.
//! * Interest-area URNs, e.g.
//!   `urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)`
//!   — "encoding is a purely lexical process of transliterating our
//!   interest area notation to URN syntax". Levels are joined with `.`,
//!   dimensions with `,`, cells with `+`; `*` is the top category.

use std::fmt;
use std::str::FromStr;

use crate::area::{Cell, InterestArea};
use crate::hierarchy::CategoryPath;

/// NID used for interest-area URNs.
pub const INTEREST_AREA_NID: &str = "InterestArea";

/// A parsed URN.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Urn {
    /// `urn:InterestArea:<area-spec>` — decoded lexically into an area.
    InterestArea(InterestArea),
    /// Any other `urn:<nid>:<nss>` pair, resolved via catalog mappings.
    Named {
        /// Namespace identifier (e.g. `ForSale`).
        nid: String,
        /// Namespace-specific string (e.g. `Portland-CDs`).
        nss: String,
    },
}

/// Errors from URN parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrnError {
    /// Input does not start with `urn:` or lacks the NSS part.
    NotAUrn(String),
    /// Interest-area spec was malformed.
    BadAreaSpec(String),
}

impl fmt::Display for UrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrnError::NotAUrn(s) => write!(f, "not a URN: {s:?}"),
            UrnError::BadAreaSpec(s) => write!(f, "bad interest-area spec: {s:?}"),
        }
    }
}

impl std::error::Error for UrnError {}

impl Urn {
    /// Builds a named URN.
    pub fn named(nid: impl Into<String>, nss: impl Into<String>) -> Urn {
        Urn::Named {
            nid: nid.into(),
            nss: nss.into(),
        }
    }

    /// Builds an interest-area URN.
    pub fn area(area: InterestArea) -> Urn {
        Urn::InterestArea(area)
    }

    /// The interest area, if this is an interest-area URN.
    pub fn as_area(&self) -> Option<&InterestArea> {
        match self {
            Urn::InterestArea(a) => Some(a),
            Urn::Named { .. } => None,
        }
    }

    /// Parses a URN string.
    pub fn parse(s: &str) -> Result<Urn, UrnError> {
        let rest = s
            .strip_prefix("urn:")
            .ok_or_else(|| UrnError::NotAUrn(s.to_owned()))?;
        let (nid, nss) = rest
            .split_once(':')
            .ok_or_else(|| UrnError::NotAUrn(s.to_owned()))?;
        if nid.is_empty() || nss.is_empty() {
            return Err(UrnError::NotAUrn(s.to_owned()));
        }
        if nid == INTEREST_AREA_NID {
            Ok(Urn::InterestArea(decode_area(nss)?))
        } else {
            Ok(Urn::Named {
                nid: nid.to_owned(),
                nss: nss.to_owned(),
            })
        }
    }
}

impl fmt::Display for Urn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Urn::InterestArea(a) => write!(f, "urn:{INTEREST_AREA_NID}:{}", encode_area(a)),
            Urn::Named { nid, nss } => write!(f, "urn:{nid}:{nss}"),
        }
    }
}

impl FromStr for Urn {
    type Err = UrnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Urn::parse(s)
    }
}

/// Encodes an interest area as the paper's NSS syntax:
/// `(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)`.
pub fn encode_area(area: &InterestArea) -> String {
    let mut out = String::new();
    for (i, cell) in area.cells().iter().enumerate() {
        if i > 0 {
            out.push('+');
        }
        out.push('(');
        for (j, coord) in cell.coords().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            if coord.is_top() {
                out.push('*');
            } else {
                out.push_str(&coord.segments().join("."));
            }
        }
        out.push(')');
    }
    out
}

/// Decodes the paper's NSS syntax into an interest area (purely lexical —
/// validate against a [`crate::Namespace`] separately).
pub fn decode_area(nss: &str) -> Result<InterestArea, UrnError> {
    let mut cells = Vec::new();
    let mut arity: Option<usize> = None;
    for part in nss.split('+') {
        let inner = part
            .strip_prefix('(')
            .and_then(|p| p.strip_suffix(')'))
            .ok_or_else(|| UrnError::BadAreaSpec(nss.to_owned()))?;
        if inner.is_empty() || inner.contains('(') || inner.contains(')') {
            return Err(UrnError::BadAreaSpec(nss.to_owned()));
        }
        let coords: Vec<CategoryPath> = inner
            .split(',')
            .map(|c| {
                let c = c.trim();
                if c == "*" {
                    Ok(CategoryPath::top())
                } else if c.is_empty() || c.split('.').any(|seg| seg.is_empty()) {
                    Err(UrnError::BadAreaSpec(nss.to_owned()))
                } else {
                    Ok(CategoryPath::new(c.split('.')))
                }
            })
            .collect::<Result<_, _>>()?;
        match arity {
            None => arity = Some(coords.len()),
            Some(a) if a != coords.len() => {
                return Err(UrnError::BadAreaSpec(nss.to_owned()));
            }
            Some(_) => {}
        }
        cells.push(Cell::new(coords));
    }
    if cells.is_empty() {
        return Err(UrnError::BadAreaSpec(nss.to_owned()));
    }
    Ok(InterestArea::new(cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_roundtrip() {
        // The exact URN from §3.4.
        let s = "urn:InterestArea:(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)";
        let urn = Urn::parse(s).unwrap();
        let area = urn.as_area().unwrap();
        assert_eq!(area.cells().len(), 2);
        // Canonical order may differ from input order; re-encode and
        // re-parse must be stable.
        let encoded = urn.to_string();
        assert_eq!(Urn::parse(&encoded).unwrap(), urn);
    }

    #[test]
    fn named_urn_roundtrip() {
        let urn = Urn::parse("urn:ForSale:Portland-CDs").unwrap();
        assert_eq!(urn, Urn::named("ForSale", "Portland-CDs"));
        assert_eq!(urn.to_string(), "urn:ForSale:Portland-CDs");
        assert!(urn.as_area().is_none());
    }

    #[test]
    fn nss_with_colons_allowed() {
        let urn = Urn::parse("urn:CD:Track:Listings").unwrap();
        assert_eq!(urn, Urn::named("CD", "Track:Listings"));
    }

    #[test]
    fn top_category_star() {
        let urn = Urn::parse("urn:InterestArea:(USA.OR.Portland,*)").unwrap();
        let area = urn.as_area().unwrap();
        assert_eq!(area.cells()[0].coords()[1], CategoryPath::top());
        assert!(urn.to_string().ends_with("(USA.OR.Portland,*)"));
    }

    #[test]
    fn bad_urns_rejected() {
        for bad in ["", "urn:", "urn:x", "nope:a:b", "urn::b", "urn:a:"] {
            assert!(Urn::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn bad_area_specs_rejected() {
        for bad in [
            "urn:InterestArea:",
            "urn:InterestArea:USA",           // missing parens
            "urn:InterestArea:()",            // empty cell
            "urn:InterestArea:(USA)(FR)",     // missing +
            "urn:InterestArea:(USA..OR)",     // empty level
            "urn:InterestArea:(USA,)",        // empty coordinate
            "urn:InterestArea:(USA)+(USA,X)", // arity mismatch
        ] {
            assert!(Urn::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn encode_canonicalizes() {
        // A dominated cell disappears in the parsed area.
        let urn = Urn::parse("urn:InterestArea:(USA,Furniture)+(USA.OR,Furniture.Chairs)").unwrap();
        assert_eq!(urn.as_area().unwrap().cells().len(), 1);
    }

    #[test]
    fn single_dimension_area() {
        let urn = Urn::parse("urn:InterestArea:(Mammalia.Eutheria)").unwrap();
        let area = urn.as_area().unwrap();
        assert_eq!(area.cells()[0].arity(), 1);
        assert_eq!(area.cells()[0].coords()[0].to_string(), "Mammalia/Eutheria");
    }
}
