//! Reconnect pacing for socket transports: jittered exponential
//! backoff, deterministic given its seed.
//!
//! The connection state machine in `mqp_peer::tcp` moves a link to
//! `Backoff` whenever a connect attempt fails or an established
//! connection drops; [`Backoff::next_delay`] answers "how long until
//! the next attempt". Delays double from `base` up to `cap`, and each
//! is jittered by ±25% (a splitmix64 draw keyed off the seed and the
//! attempt number) so a hundred peers cut off by the same restart do
//! not reconnect in lock-step — the classic thundering-herd failure of
//! unjittered backoff.

use std::time::{Duration, Instant};

/// Jittered exponential backoff: `base * 2^attempt`, capped at `cap`,
/// ±25% jitter. Deterministic for a given `(seed, attempt)` pair.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

/// splitmix64 — the same tiny generator the scale workload uses for
/// pure-hash assignment; good enough to decorrelate reconnect times.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Backoff {
    /// A fresh backoff: first delay ≈ `base`, growing to ≈ `cap`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            seed,
            attempt: 0,
        }
    }

    /// Consecutive failures so far (resets on success).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay before the next attempt, advancing the attempt
    /// counter. Doubling is saturating, so a long outage settles at
    /// `cap` ± jitter instead of overflowing.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 * base is far past any sane cap
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .as_micros() as u64;
        // Jitter in [-25%, +25%): draw 0..=raw/2, subtract raw/4.
        let span = (raw / 2).max(1);
        let draw = splitmix64(self.seed ^ u64::from(self.attempt)) % span;
        Duration::from_micros(raw - raw / 4 + draw)
    }

    /// A connection succeeded: the next failure starts over at `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// A [`Backoff`] plus the bookkeeping every retrying resource ends up
/// reimplementing around it: "am I allowed to try yet", "how many
/// failures in a row", and "is the budget exhausted". Shared by the TCP
/// link reconnect state machine (`mqp_peer::tcp`) and the durable
/// catalog's WAL fsync/reopen path (`mqp_catalog::durable`), so the
/// pacing and give-up policy live in exactly one place.
///
/// `max_attempts == 0` means an unbounded budget: the retrier never
/// goes dead, it just keeps pacing at `cap`.
#[derive(Debug, Clone)]
pub struct Retrier {
    backoff: Backoff,
    max_attempts: u32,
    /// Next attempt no sooner than this; `None` = ready now.
    next_at: Option<Instant>,
    dead: bool,
}

impl Retrier {
    /// A fresh retrier pacing `base → cap` with the given seed and
    /// attempt budget (0 = unbounded).
    pub fn new(base: Duration, cap: Duration, seed: u64, max_attempts: u32) -> Self {
        Retrier {
            backoff: Backoff::new(base, cap, seed),
            max_attempts,
            next_at: None,
            dead: false,
        }
    }

    /// True when an attempt is allowed right now: not dead, and past
    /// the pacing deadline of the last failure.
    pub fn ready(&self) -> bool {
        !self.dead && self.next_at.is_none_or(|t| Instant::now() >= t)
    }

    /// Records a failed attempt: schedules the next one a jittered
    /// backoff delay from now, and kills the retrier when the attempt
    /// budget is exhausted. Returns `true` when dead — the caller's cue
    /// to shed whatever it was retrying for.
    pub fn failure(&mut self) -> bool {
        self.next_at = Some(Instant::now() + self.backoff.next_delay());
        if self.max_attempts > 0 && self.backoff.attempts() >= self.max_attempts {
            self.dead = true;
        }
        self.dead
    }

    /// Records a successful attempt: pacing and the attempt budget
    /// start over.
    pub fn success(&mut self) {
        self.backoff.reset();
        self.next_at = None;
        self.dead = false;
    }

    /// Budget exhausted (only with `max_attempts > 0`).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Consecutive failures so far.
    pub fn attempts(&self) -> u32 {
        self.backoff.attempts()
    }

    /// Synchronous retry loop for a blocking resource (the WAL
    /// fsync/reopen path): runs `f` until it succeeds or the attempt
    /// budget dies, sleeping each backoff delay in between. Returns the
    /// last error when the budget is exhausted. Do not call with
    /// `max_attempts == 0` unless `f` is guaranteed to eventually
    /// succeed.
    pub fn run_blocking<T, E>(&mut self, mut f: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        loop {
            match f() {
                Ok(v) => {
                    self.success();
                    return Ok(v);
                }
                Err(e) => {
                    if self.failure() {
                        return Err(e);
                    }
                    if let Some(at) = self.next_at {
                        let now = Instant::now();
                        if at > now {
                            std::thread::sleep(at - now);
                        }
                    }
                }
            }
        }
    }
}

/// Sender-side frame accounting for a socket transport, with an exact
/// identity mirroring [`NetStats::balances`](crate::NetStats::balances):
///
/// ```text
/// frames_enqueued = frames_sent + dropped_backpressure
///                 + dropped_disconnected + abandoned + queued
/// ```
///
/// where `queued` is whatever still sits in write queues at the moment
/// of observation (zero after a drained shutdown). Every frame a peer
/// hands to the transport is eventually flushed onto a socket
/// (`frames_sent`), dropped because a full write queue chose
/// drop-newest (`dropped_backpressure`), dropped because the link was
/// down past its reconnect budget (`dropped_disconnected`), or
/// abandoned in-queue when its owning peer was killed or shut down
/// (`abandoned`).
///
/// Receive-side counters (`frames_received`, `bytes_received`) do not
/// enter the identity: with real sockets, bytes in a kernel buffer at
/// the instant a peer dies are lost without any sender-side event —
/// which is exactly the gap retry watches exist to cover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Frames handed to the transport for a remote peer.
    pub frames_enqueued: u64,
    /// Frames fully flushed onto a socket.
    pub frames_sent: u64,
    /// Frames dropped by a full write queue (drop-newest policy).
    pub dropped_backpressure: u64,
    /// Frames dropped because the destination link was down.
    pub dropped_disconnected: u64,
    /// Frames abandoned in write queues at kill/shutdown.
    pub abandoned: u64,
    /// Bytes flushed onto sockets (length prefixes included).
    pub bytes_sent: u64,
    /// Frames decoded off sockets.
    pub frames_received: u64,
    /// Bytes read off sockets.
    pub bytes_received: u64,
    /// Frames delivered peer-locally (self-sends never touch a socket).
    pub frames_local: u64,
    /// Successful connects (initial and re-).
    pub connects: u64,
    /// Connect attempts that failed or established links that dropped.
    pub disconnects: u64,
    /// Timeout-driven protocol retries observed by peers.
    pub retries: u64,
}

impl SocketStats {
    /// The exact sender-side accounting identity (see type docs).
    pub fn balances(&self, queued: u64) -> bool {
        self.frames_enqueued
            == self.frames_sent
                + self.dropped_backpressure
                + self.dropped_disconnected
                + self.abandoned
                + queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_resets() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(640);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev = Duration::ZERO;
        for i in 0..12 {
            let d = b.next_delay();
            // Within ±25% of the uncapped-then-capped ideal.
            let ideal = base.saturating_mul(1 << i.min(20)).min(cap);
            assert!(
                d >= ideal - ideal / 4,
                "attempt {i}: {d:?} < 75% of {ideal:?}"
            );
            assert!(
                d <= ideal + ideal / 4,
                "attempt {i}: {d:?} > 125% of {ideal:?}"
            );
            if i >= 7 {
                // Past the cap the delay stops growing (modulo jitter).
                assert!(d <= cap + cap / 4);
            }
            prev = d;
        }
        assert!(prev <= cap + cap / 4);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= base + base / 4);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_jittered_across_seeds() {
        let delays = |seed| {
            let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(1), seed);
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(delays(1), delays(1));
        assert_ne!(delays(1), delays(2), "different seeds must decorrelate");
    }

    #[test]
    fn retrier_paces_dies_and_resets() {
        let mut r = Retrier::new(Duration::from_micros(10), Duration::from_micros(100), 3, 2);
        assert!(r.ready());
        assert!(!r.failure(), "first failure must not exhaust a 2-budget");
        assert_eq!(r.attempts(), 1);
        assert!(r.failure(), "second failure exhausts the budget");
        assert!(r.is_dead());
        assert!(!r.ready());
        r.success();
        assert!(!r.is_dead());
        assert_eq!(r.attempts(), 0);
        assert!(r.ready());
        // Unbounded budget never dies.
        let mut open = Retrier::new(Duration::from_micros(1), Duration::from_micros(2), 9, 0);
        for _ in 0..50 {
            assert!(!open.failure());
        }
        assert!(!open.is_dead());
    }

    #[test]
    fn retrier_run_blocking_retries_transients_and_gives_up() {
        let mut r = Retrier::new(Duration::from_micros(1), Duration::from_micros(10), 5, 4);
        let mut calls = 0;
        let got = r.run_blocking(|| {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(got, Ok(3));
        assert_eq!(r.attempts(), 0, "success resets the budget");

        let mut always = 0;
        let got: Result<(), &str> = r.run_blocking(|| {
            always += 1;
            Err("permanent")
        });
        assert_eq!(got, Err("permanent"));
        assert_eq!(always, 4, "budget of 4 means exactly 4 attempts");
        assert!(r.is_dead());
    }

    #[test]
    fn socket_identity() {
        let mut s = SocketStats {
            frames_enqueued: 10,
            frames_sent: 6,
            dropped_backpressure: 1,
            dropped_disconnected: 2,
            abandoned: 1,
            ..SocketStats::default()
        };
        assert!(s.balances(0));
        assert!(!s.balances(1));
        s.frames_sent -= 1;
        assert!(s.balances(1));
        // Receive-side counters never enter the identity.
        s.frames_received = 99;
        s.frames_local = 3;
        assert!(s.balances(1));
    }
}
