//! Calendar-queue event scheduler (Brown, CACM 1988).
//!
//! [`SimNet`](crate::SimNet) used to keep its future events in a global
//! `BinaryHeap`, whose `O(log n)` push/pop is what dominates a run once
//! the simulation holds six digits of peers and their timers. A calendar
//! queue spreads events over an array of time buckets ("days") so that
//! push is a constant-time index and pop scans one short bucket —
//! `O(1)` amortized either way, provided occupancy stays near one event
//! per bucket, which periodic rebuilds maintain.
//!
//! This variant is *non-wrapping*: the bucket array covers one
//! contiguous window `[base, base + width × buckets)`, events beyond it
//! wait in an unsorted overflow list, and when the window is exhausted
//! the queue rebases onto the overflow. That exploits the simulator's
//! contract — `push(at)` always has `at >=` the last popped time, so the
//! cursor never needs to wrap backwards — and keeps far-future events
//! (churn rejoin timers, retry deadlines) from forcing a huge ring.
//!
//! Ordering is *exactly* the `(at, seq)` order of the old heap: within a
//! bucket the pop scans for the minimum `(at, seq)` pair, and `seq` is
//! unique, so the pop sequence is a total order independent of bucket
//! layout. Golden traces cannot tell the schedulers apart (property-
//! tested against a reference `BinaryHeap` in this module's tests).

use crate::topology::NodeId;

/// One scheduled event; ordered by `(at, seq)` so ties break in send
/// order — the property that makes runs reproducible.
#[derive(Debug, Clone)]
pub(crate) struct Event<P> {
    pub(crate) at: u64,
    pub(crate) seq: u64,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) bytes: usize,
    pub(crate) payload: P,
    /// Timer events bypass fault injection and message accounting.
    pub(crate) timer: bool,
}

/// Smallest bucket array: covers bursty startup without rebuilds.
const MIN_BUCKETS: usize = 16;
/// Largest bucket array: 1M peers' worth of in-flight events at one
/// event per bucket; 24 B per empty bucket keeps this under 26 MB.
const MAX_BUCKETS: usize = 1 << 20;
/// Grow (rebuild) when the in-window population exceeds this many
/// events per bucket on average.
const GROW_AT: usize = 2;
/// How many event times to sample when estimating the bucket width.
const WIDTH_SAMPLE: usize = 64;

pub(crate) struct Calendar<P> {
    /// The current window's buckets; bucket `i` covers
    /// `[base + i·width, base + (i+1)·width)`.
    buckets: Vec<Vec<Event<P>>>,
    /// Start time of `buckets[0]`'s window.
    base: u64,
    /// Bucket width in µs (≥ 1).
    width: u64,
    /// Buckets before `cursor` are empty; the next event is at `cursor`
    /// or later (or in `overflow`).
    cursor: usize,
    /// Events at or beyond the window's end, unsorted.
    overflow: Vec<Event<P>>,
    /// Events in `buckets` (excludes `overflow`).
    in_window: usize,
    /// Total events (buckets + overflow).
    len: usize,
    /// Cached location of the minimum event found by the last scan:
    /// `(bucket, slot, pushes-stamp)`. Invalidated by any push.
    cached_min: Option<(usize, usize, u64)>,
    /// Monotone push counter, for cache validation.
    pushes: u64,
}

impl<P> Calendar<P> {
    pub(crate) fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            base: 0,
            width: 1,
            cursor: 0,
            overflow: Vec::new(),
            in_window: 0,
            len: 0,
            cached_min: None,
            pushes: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Bucket index for an event time, or `None` when it lies beyond
    /// the window. Computed via the offset (never via an absolute end
    /// time, which saturates for events parked near `u64::MAX` and
    /// would exile even the window's own minimum to overflow). Times
    /// before the window — a rebase moves `base` to the overflow's
    /// minimum, which may be far ahead of `now`, and the next push can
    /// land in the gap — map to bucket 0; the caller clamps to the
    /// cursor, which is ordering-safe (see `push`).
    fn day_of(&self, at: u64) -> Option<usize> {
        let idx = at.saturating_sub(self.base) / self.width;
        (idx < self.buckets.len() as u64).then_some(idx as usize)
    }

    /// Schedules an event. Contract (upheld by the simulator, which only
    /// schedules at `now + delay`): `ev.at` is never earlier than the
    /// last popped event's time.
    pub(crate) fn push(&mut self, ev: Event<P>) {
        self.pushes += 1;
        self.cached_min = None;
        self.len += 1;
        let Some(idx) = self.day_of(ev.at) else {
            self.overflow.push(ev);
            return;
        };
        // Clamping to the cursor keeps ordering exact: a clamped event
        // has `at` below every later bucket's window (the push contract
        // gives `at >=` the last popped time), and the pop scan picks
        // the true minimum within the cursor bucket.
        self.buckets[idx.max(self.cursor)].push(ev);
        self.in_window += 1;
        if self.in_window > GROW_AT * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Time of the earliest event, or `None` when empty. Advances the
    /// cursor over empty buckets and caches the found minimum, so the
    /// pop that typically follows is a cache hit.
    pub(crate) fn peek_at(&mut self) -> Option<u64> {
        self.find_min().map(|(b, s, _)| self.buckets[b][s].at)
    }

    /// Removes and returns the earliest event (minimum `(at, seq)`).
    pub(crate) fn pop(&mut self) -> Option<Event<P>> {
        let (b, s, _) = self.find_min()?;
        self.cached_min = None;
        self.len -= 1;
        self.in_window -= 1;
        Some(self.buckets[b].swap_remove(s))
    }

    /// Locates the minimum event, rebasing onto the overflow when the
    /// window is drained. Returns `(bucket, slot, stamp)`.
    fn find_min(&mut self) -> Option<(usize, usize, u64)> {
        if let Some((b, s, stamp)) = self.cached_min {
            if stamp == self.pushes {
                return Some((b, s, stamp));
            }
        }
        if self.len == 0 {
            return None;
        }
        loop {
            while self.cursor < self.buckets.len() {
                let bucket = &self.buckets[self.cursor];
                if !bucket.is_empty() {
                    let mut best = 0;
                    for (i, ev) in bucket.iter().enumerate().skip(1) {
                        if (ev.at, ev.seq) < (bucket[best].at, bucket[best].seq) {
                            best = i;
                        }
                    }
                    let found = (self.cursor, best, self.pushes);
                    self.cached_min = Some(found);
                    return Some(found);
                }
                self.cursor += 1;
            }
            debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing anywhere");
            self.rebase();
        }
    }

    /// Window drained: restart it at the overflow's earliest event and
    /// pull in whatever now fits.
    fn rebase(&mut self) {
        let min_at = self.overflow.iter().map(|e| e.at).min().expect("nonempty");
        let target = bucket_count_for(self.overflow.len());
        let events = std::mem::take(&mut self.overflow);
        self.reshape(min_at, target, events);
    }

    /// Occupancy outgrew the window: rebuild with more buckets, keeping
    /// the window anchored at the cursor's day (every live event is at
    /// or after it).
    fn rebuild(&mut self) {
        let base = self.base + self.width * self.cursor as u64;
        let target = bucket_count_for(self.len);
        let mut events: Vec<Event<P>> = std::mem::take(&mut self.overflow);
        events.reserve(self.in_window);
        for b in &mut self.buckets {
            events.append(b);
        }
        self.reshape(base, target, events);
    }

    /// Re-seats `events` (plus nothing else — buckets must already be
    /// drained into it) into a fresh window starting at `new_base`.
    fn reshape(&mut self, new_base: u64, n_buckets: usize, mut events: Vec<Event<P>>) {
        self.width = estimate_width(&events);
        if self.buckets.len() != n_buckets {
            self.buckets = (0..n_buckets).map(|_| Vec::new()).collect();
        }
        self.base = new_base;
        self.cursor = 0;
        self.in_window = 0;
        self.cached_min = None;
        self.overflow = Vec::new();
        for ev in events.drain(..) {
            match self.day_of(ev.at) {
                Some(idx) => {
                    self.buckets[idx].push(ev);
                    self.in_window += 1;
                }
                None => self.overflow.push(ev),
            }
        }
    }
}

/// Power-of-two bucket count sized for about one event per bucket.
fn bucket_count_for(events: usize) -> usize {
    events.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS)
}

/// Bucket width ≈ the mean gap between event times, estimated from a
/// deterministic sample. A trimmed mean would resist far-future
/// outliers better, but outliers here only cost overflow re-scans, and
/// sampled adjacent gaps already ignore the one huge gap to a straggler
/// unless it is sampled.
fn estimate_width<P>(events: &[Event<P>]) -> u64 {
    let step = (events.len() / WIDTH_SAMPLE).max(1);
    let mut times: Vec<u64> = events.iter().step_by(step).map(|e| e.at).collect();
    times.sort_unstable();
    times.dedup();
    if times.len() < 2 {
        return 1;
    }
    // Median gap, not mean: one churn timer parked hours out must not
    // stretch every bucket to minutes. Events past the window it yields
    // simply wait in overflow until a rebase reaches their neighborhood.
    let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    gaps[gaps.len() / 2].max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> Event<u32> {
        Event {
            at,
            seq,
            from: 0,
            to: (seq % 97) as usize,
            bytes: 0,
            payload: seq as u32,
            timer: false,
        }
    }

    /// Reference model: the `BinaryHeap<Reverse<(at, seq)>>` the
    /// simulator used before the calendar queue.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(u64, u64, NodeId)>>,
    }

    impl RefHeap {
        fn push(&mut self, e: &Event<u32>) {
            self.heap.push(Reverse((e.at, e.seq, e.to)));
        }
        fn pop(&mut self) -> Option<(u64, u64, NodeId)> {
            self.heap.pop().map(|Reverse(t)| t)
        }
    }

    /// Drives both queues through the same interleaved schedule and
    /// asserts identical (time, seq, node) pop sequences.
    fn check_schedule(ops: &[(u64, u32)]) {
        // ops: (delay from current time, pushes before next pop)
        let mut cal = Calendar::new();
        let mut reference = RefHeap::default();
        let mut now = 0u64;
        let mut seq = 0u64;
        for &(delay, batch) in ops {
            for b in 0..=u64::from(batch) {
                let e = ev(now + delay + b % 3, seq);
                reference.push(&e);
                cal.push(e);
                seq += 1;
            }
            let want = reference.pop();
            let got = cal.pop().map(|e| (e.at, e.seq, e.to));
            assert_eq!(got, want);
            if let Some((at, _, _)) = want {
                now = now.max(at);
            }
        }
        loop {
            let want = reference.pop();
            let got = cal.pop().map(|e| (e.at, e.seq, e.to));
            assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn empty_queue() {
        let mut c: Calendar<u32> = Calendar::new();
        assert_eq!(c.len(), 0);
        assert!(c.peek_at().is_none());
        assert!(c.pop().is_none());
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c = Calendar::new();
        c.push(ev(1000, 0));
        c.push(ev(10, 1));
        c.push(ev(10, 2));
        assert_eq!(c.peek_at(), Some(10));
        assert_eq!(c.pop().map(|e| e.seq), Some(1));
        assert_eq!(c.pop().map(|e| e.seq), Some(2));
        assert_eq!(c.pop().map(|e| e.at), Some(1000));
        assert!(c.pop().is_none());
    }

    #[test]
    fn same_timestamp_burst_pops_in_seq_order() {
        let mut c = Calendar::new();
        for s in 0..500u64 {
            c.push(ev(42, s));
        }
        for s in 0..500u64 {
            assert_eq!(c.pop().map(|e| e.seq), Some(s));
        }
    }

    #[test]
    fn far_future_timer_among_near_events() {
        let mut c = Calendar::new();
        c.push(ev(u64::MAX / 2, 0)); // churn timer parked absurdly far out
        for s in 1..100u64 {
            c.push(ev(s * 7, s));
        }
        for s in 1..100u64 {
            assert_eq!(c.pop().map(|e| e.seq), Some(s));
        }
        assert_eq!(c.pop().map(|e| e.seq), Some(0));
    }

    #[test]
    fn interleaved_push_pop_tracks_reference() {
        check_schedule(&[
            (100, 3),
            (0, 0),
            (50, 10),
            (1_000_000, 2),
            (0, 5),
            (3, 0),
            (0, 0),
            (0, 0),
        ]);
    }

    #[test]
    fn grows_through_rebuilds_and_rebases() {
        let mut c = Calendar::new();
        let mut reference = RefHeap::default();
        for s in 0..10_000u64 {
            let e = ev((s * 37) % 5_000, s);
            reference.push(&e);
            c.push(e);
        }
        // Everything was pushed before any pop, so arbitrary at-order is
        // fine; drain and compare.
        for _ in 0..10_000 {
            assert_eq!(c.pop().map(|e| (e.at, e.seq, e.to)), reference.pop());
        }
        assert_eq!(c.len(), 0);
    }

    use proptest::prelude::*;

    /// Push delays mixing same-instant bursts, near-ties, typical
    /// transit times, retry deadlines, and far-future churn timers.
    fn arb_delay() -> impl Strategy<Value = u64> {
        prop_oneof![
            Just(0u64),                          // same-timestamp burst
            0u64..5,                             // near-tie
            0u64..50_000,                        // typical transit
            0u64..5_000_000,                     // retry timer
            0u64..600_000_000,                   // churn horizon
            (u64::MAX / 4 - 10)..(u64::MAX / 4), // absurdly far out
        ]
    }

    /// One schedule step: a batch of pushes, then a batch of pops.
    fn arb_step() -> impl Strategy<Value = (Vec<u64>, usize)> {
        (proptest::collection::vec(arb_delay(), 0..12), 0usize..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// For arbitrary interleaved schedules the calendar queue and
        /// the reference `BinaryHeap` pop identical (time, seq, node)
        /// sequences — the property that makes the scheduler swap
        /// invisible to golden traces.
        #[test]
        fn calendar_matches_reference_heap(
            steps in proptest::collection::vec(arb_step(), 1..60),
        ) {
            let mut cal = Calendar::new();
            let mut reference = RefHeap::default();
            let mut now = 0u64;
            let mut seq = 0u64;
            for (delays, pops) in steps {
                for delay in delays {
                    let e = ev(now.saturating_add(delay), seq);
                    reference.push(&e);
                    cal.push(e);
                    seq += 1;
                }
                for _ in 0..pops {
                    let want = reference.pop();
                    let got = cal.pop().map(|e| (e.at, e.seq, e.to));
                    prop_assert_eq!(got, want);
                    if let Some((at, _, _)) = want {
                        now = now.max(at);
                    }
                }
            }
            loop {
                let want = reference.pop();
                let got = cal.pop().map(|e| (e.at, e.seq, e.to));
                prop_assert_eq!(got, want);
                if want.is_none() {
                    break;
                }
            }
            prop_assert_eq!(cal.len(), 0);
        }
    }
}
