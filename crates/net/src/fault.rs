//! Deterministic fault injection: the adversarial schedule every
//! resilience experiment runs under.
//!
//! A [`FaultPlan`] turns the perfectly reliable [`SimNet`](crate::SimNet)
//! into a lossy, jittery, churning network — while keeping DESIGN.md §5
//! invariant 6 intact: all randomness flows from one seeded `StdRng`
//! whose draws depend only on the send sequence, so identical seeds and
//! identical send sequences yield byte-identical delivery traces.
//!
//! Three independent knobs, each drawn per message at *send* time (never
//! at delivery time, where heap ordering could leak into the draw
//! order):
//!
//! * **loss** — the message vanishes on the wire (counted in
//!   [`NetStats::messages_lost`](crate::NetStats));
//! * **jitter** — extra delay, uniform in `[0, jitter_frac × base
//!   transit]`, which is also what produces reordering between messages
//!   on the same link;
//! * **duplication** — a second copy is enqueued with its own jitter
//!   draw (counted in
//!   [`NetStats::messages_duplicated`](crate::NetStats)).
//!
//! Peer **churn** is a pre-computed schedule of crash/join events
//! ([`ChurnEvent`]) applied as the simulated clock passes each event
//! time; crashes reuse the `fail`/`recover` machinery, so messages to a
//! crashed node drop exactly as manual failure injection always did.
//!
//! Self-sends (`from == to`) bypass all fault knobs: they model local
//! work, not wire traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::topology::NodeId;

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Simulated time (µs) the change takes effect.
    pub at: u64,
    /// The node that crashes or rejoins.
    pub node: NodeId,
    /// `false` = crash (node starts dropping deliveries), `true` =
    /// rejoin (node accepts deliveries again).
    pub up: bool,
}

/// Seeded disk-fault knobs riding on a [`FaultPlan`]: consumed by
/// `mqp_catalog::durable::FaultyDisk` (via the peer layer) when a churn
/// experiment wants each crash to also exercise the durable catalog's
/// recovery path. The wire simulator itself never reads these — disk
/// faults change what a crashed node *remembers*, not what the network
/// delivers — so a plan whose only active knob is `disk` still counts
/// as a no-op for [`SimNet`](crate::SimNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskFaults {
    /// Mixed into each node's disk RNG (derive per-node seeds from it).
    pub seed: u64,
    /// A crash keeps a seeded prefix of the unsynced WAL tail instead
    /// of dropping it whole — the torn/short-write case.
    pub torn_tail: bool,
    /// Flip one seeded byte of the WAL on read-back (latent sector
    /// corruption surfacing at recovery time).
    pub corrupt_read: bool,
    /// Every Nth fsync fails transiently (0 = never); the WAL layer's
    /// retry helper is expected to absorb these.
    pub sync_fail_period: u64,
}

/// A complete, seeded fault model for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw (loss, jitter, duplication).
    pub seed: u64,
    /// Per-message loss probability on non-self links, in `[0, 1]`.
    pub loss: f64,
    /// Maximum extra delay as a fraction of the link's base transit
    /// time; the draw is uniform in `[0, jitter_frac × base]`.
    pub jitter_frac: f64,
    /// Per-message duplication probability on non-self links.
    pub duplicate: f64,
    /// Crash/join schedule, applied in `(at, node)` order.
    pub churn: Vec<ChurnEvent>,
    /// Disk faults for crashed nodes' durable state (never touches the
    /// wire; see [`DiskFaults`]).
    pub disk: Option<DiskFaults>,
}

impl FaultPlan {
    /// A fault plan with every knob off — identical behavior to a
    /// reliable network, but with the RNG plumbing installed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            jitter_frac: 0.0,
            duplicate: 0.0,
            churn: Vec::new(),
            disk: None,
        }
    }

    /// Sets the per-message loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = p;
        self
    }

    /// Sets the jitter bound (fraction of base transit time).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        assert!(frac >= 0.0, "jitter fraction must be non-negative");
        self.jitter_frac = frac;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability out of range"
        );
        self.duplicate = p;
        self
    }

    /// Installs disk faults for crashed nodes' durable state.
    pub fn with_disk_faults(mut self, disk: DiskFaults) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Installs an explicit churn schedule (sorted internally).
    pub fn with_churn(mut self, mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.node, e.up));
        self.churn = events;
        self
    }

    /// Generates a crash/rejoin schedule over the `eligible` nodes:
    /// `crashes` crash events at seeded-uniform times in
    /// `[0, horizon_us)`, each followed by a rejoin `downtime_us` later
    /// (omitted when the crash would outlive the horizon — a permanent
    /// departure). Deterministic in `seed`; the draw order is fixed, so
    /// the schedule is independent of anything the simulation does.
    pub fn with_generated_churn(
        mut self,
        eligible: &[NodeId],
        crashes: usize,
        horizon_us: u64,
        downtime_us: u64,
    ) -> Self {
        assert!(!eligible.is_empty() || crashes == 0, "no eligible nodes");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6368_7572_6e21); // "churn!"
        let mut events = Vec::with_capacity(crashes * 2);
        for _ in 0..crashes {
            let node = eligible[rng.gen_range(0..eligible.len())];
            let at = rng.gen_range(0..horizon_us.max(1));
            events.push(ChurnEvent {
                at,
                node,
                up: false,
            });
            let back = at.saturating_add(downtime_us);
            if back < horizon_us {
                events.push(ChurnEvent {
                    at: back,
                    node,
                    up: true,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.node, e.up));
        self.churn = events;
        self
    }

    /// True when no *wire* knob is active (the plan is a no-op for the
    /// network). Disk faults deliberately do not count: they are read
    /// by the durability layer, never by the simulator, so a disk-only
    /// plan must not perturb delivery traces.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0
            && self.jitter_frac == 0.0
            && self.duplicate == 0.0
            && self.churn.is_empty()
    }
}

/// The live state [`SimNet`](crate::SimNet) keeps for an installed plan.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: StdRng,
    next_churn: usize,
}

/// What the send-time draws decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendFate {
    /// Extra delay added to the base transit time.
    pub(crate) jitter_us: u64,
    /// The message is lost on the wire.
    pub(crate) lost: bool,
    /// Extra delay for the duplicate copy, if one was drawn.
    pub(crate) duplicate_jitter_us: Option<u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        let mut plan = plan;
        plan.churn.sort_by_key(|e| (e.at, e.node, e.up));
        FaultState {
            plan,
            rng,
            next_churn: 0,
        }
    }

    /// Draws the fate of one message. The draw order is fixed (jitter,
    /// loss, duplication, duplicate-jitter) and each knob only consumes
    /// randomness when enabled, so traces are stable under adding a
    /// disabled knob.
    pub(crate) fn fate(&mut self, base_transit_us: u64) -> SendFate {
        let max_jitter = (base_transit_us as f64 * self.plan.jitter_frac) as u64;
        let jitter_us = if max_jitter > 0 {
            self.rng.gen_range(0..=max_jitter)
        } else {
            0
        };
        let lost = self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss);
        let duplicate = self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate);
        let duplicate_jitter_us = if duplicate {
            Some(if max_jitter > 0 {
                self.rng.gen_range(0..=max_jitter)
            } else {
                0
            })
        } else {
            None
        };
        SendFate {
            jitter_us,
            lost,
            duplicate_jitter_us,
        }
    }

    /// Churn events that take effect at or before `t`, in order.
    /// Advances the schedule cursor.
    pub(crate) fn churn_until(&mut self, t: u64) -> &[ChurnEvent] {
        let start = self.next_churn;
        while self.next_churn < self.plan.churn.len() && self.plan.churn[self.next_churn].at <= t {
            self.next_churn += 1;
        }
        &self.plan.churn[start..self.next_churn]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_knobs() {
        let p = FaultPlan::new(7)
            .with_loss(0.25)
            .with_jitter(1.5)
            .with_duplication(0.1);
        assert_eq!(p.seed, 7);
        assert_eq!(p.loss, 0.25);
        assert_eq!(p.jitter_frac, 1.5);
        assert_eq!(p.duplicate, 0.1);
        assert!(!p.is_noop());
        assert!(FaultPlan::new(7).is_noop());
    }

    #[test]
    fn disk_faults_ride_along_without_touching_the_wire() {
        let p = FaultPlan::new(7).with_disk_faults(DiskFaults {
            seed: 3,
            torn_tail: true,
            corrupt_read: true,
            sync_fail_period: 4,
        });
        assert_eq!(p.disk.unwrap().sync_fail_period, 4);
        // A disk-only plan is still a wire no-op: delivery traces must
        // not change because crashed nodes gained durable state.
        assert!(p.is_noop());
    }

    #[test]
    fn generated_churn_is_deterministic_and_sorted() {
        let gen = || {
            FaultPlan::new(99)
                .with_generated_churn(&[3, 4, 5, 6], 10, 1_000_000, 100_000)
                .churn
        };
        let a = gen();
        assert_eq!(a, gen());
        assert!(a
            .windows(2)
            .all(|w| (w[0].at, w[0].node) <= (w[1].at, w[1].node)));
        // Every crash either has a matching rejoin or outlives the horizon.
        let downs = a.iter().filter(|e| !e.up).count();
        let ups = a.iter().filter(|e| e.up).count();
        assert_eq!(downs, 10);
        assert!(ups <= downs);
    }

    #[test]
    fn fate_draws_are_deterministic() {
        let plan = FaultPlan::new(5)
            .with_loss(0.3)
            .with_jitter(2.0)
            .with_duplication(0.2);
        let run = || {
            let mut st = FaultState::new(plan.clone());
            (0..50).map(|i| st.fate(1_000 + i * 10)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_cursor_yields_in_order_once() {
        let plan = FaultPlan::new(0).with_churn(vec![
            ChurnEvent {
                at: 50,
                node: 1,
                up: false,
            },
            ChurnEvent {
                at: 10,
                node: 2,
                up: false,
            },
            ChurnEvent {
                at: 60,
                node: 2,
                up: true,
            },
        ]);
        let mut st = FaultState::new(plan);
        let first: Vec<ChurnEvent> = st.churn_until(50).to_vec();
        assert_eq!(first.len(), 2);
        assert_eq!((first[0].at, first[0].node), (10, 2));
        assert_eq!((first[1].at, first[1].node), (50, 1));
        assert!(st.churn_until(50).is_empty());
        assert_eq!(st.churn_until(u64::MAX).len(), 1);
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn loss_out_of_range_panics() {
        let _ = FaultPlan::new(0).with_loss(1.5);
    }
}
