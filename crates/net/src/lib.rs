//! # mqp-net — the network substrate
//!
//! The paper's prototype ran on a real wide-area testbed that we do not
//! have; every claim it makes about routing is about *message counts,
//! bytes shipped, hops, and latency* — quantities a deterministic
//! simulator measures exactly. This crate provides:
//!
//! * [`SimNet`] — a discrete-event network simulator, generic over the
//!   payload type. Latency comes from a [`Topology`] (uniform or
//!   clustered — wide-area links between clusters, LAN links within);
//!   transfer time is `bytes / bandwidth`; all accounting (messages,
//!   bytes, hops, drops, losses, duplicates) is collected in
//!   [`NetStats`]. Same seed and same send sequence ⇒ identical event
//!   trace (property-tested).
//! * [`FaultPlan`] — deterministic fault injection (DESIGN.md §6):
//!   seeded per-message loss, delay jitter (which produces reordering),
//!   duplication, and a crash/join churn schedule ([`ChurnEvent`]).
//!   Installed with [`SimNet::set_fault_plan`]; hosts can also schedule
//!   local timers with [`SimNet::schedule`] to build timeout/retry
//!   policies on top.
//! * Failure injection: [`SimNet::fail`] / [`SimNet::recover`] — sends
//!   to a down node are counted and dropped, which is how the
//!   availability experiments exercise the "R may be unavailable"
//!   scenario of §4.2 Example 3. Churn schedules drive the same
//!   machinery on a clock.
//! * [`threaded`] — a `std::sync::mpsc` transport carrying real wire
//!   bytes (`Envelope::payload`), over which `mqp_peer`'s
//!   `ThreadedCluster` drives the same sans-IO peer protocol on real
//!   OS threads.
//! * [`backoff`] — the shared pieces every real-socket driver needs:
//!   jittered exponential [`Backoff`] for reconnect pacing, the
//!   [`Retrier`] state machine wrapping it (attempt budget + pacing
//!   deadline + dead state, shared by TCP link reconnect and the
//!   durable catalog's WAL fsync retries), and [`SocketStats`],
//!   sender-side frame accounting with an exact balance identity (the
//!   socket-path analogue of
//!   [`NetStats::balances`](stats::NetStats::balances)). Used by
//!   `mqp_peer::tcp`.

pub mod backoff;
mod calendar;
pub mod fault;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod topology;

pub use backoff::{Backoff, Retrier, SocketStats};
pub use fault::{ChurnEvent, DiskFaults, FaultPlan};
pub use sim::{Delivery, NodeId, SimNet};
pub use stats::NetStats;
pub use topology::Topology;
