//! The discrete-event simulator core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::stats::NetStats;
use crate::topology::Topology;

pub use crate::topology::NodeId;

/// A message delivered by [`SimNet::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Simulated delivery time in microseconds.
    pub at: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size charged to the network.
    pub bytes: usize,
    /// The payload.
    pub payload: P,
}

/// Heap entry; ordered by (time, sequence) so ties break in send order —
/// the property that makes runs reproducible.
struct Event<P> {
    at: u64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    bytes: usize,
    payload: P,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Event<P> {}
impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event network over a [`Topology`].
///
/// Drive it caller-side:
///
/// ```
/// use mqp_net::{SimNet, Topology};
///
/// let mut net: SimNet<&'static str> = SimNet::new(Topology::uniform(3, 1_000));
/// net.send(0, 1, 64, "hello");
/// while let Some(d) = net.step() {
///     if d.payload == "hello" {
///         net.send(d.to, 2, 64, "onward");
///     }
/// }
/// assert_eq!(net.stats().messages_delivered, 2);
/// assert_eq!(net.now(), 2_000);
/// ```
pub struct SimNet<P> {
    topology: Topology,
    queue: BinaryHeap<Reverse<Event<P>>>,
    now: u64,
    seq: u64,
    down: HashSet<NodeId>,
    stats: NetStats,
}

impl<P> SimNet<P> {
    /// A fresh network at time 0.
    pub fn new(topology: Topology) -> Self {
        let stats = NetStats::new(topology.len());
        SimNet {
            topology,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            down: HashSet::new(),
            stats,
        }
    }

    /// The simulated clock (µs): time of the last delivery (or 0).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Sends a message; it will be delivered after the topology's
    /// transit time, unless the destination is down at delivery time.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize, payload: P) {
        let at = self.now + self.topology.transit_time(from, to, bytes);
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.per_node[from].0 += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            from,
            to,
            bytes,
            payload,
        }));
        self.seq += 1;
    }

    /// Delivers the next message, advancing the clock. Messages to down
    /// nodes are dropped (counted) and the next live delivery is
    /// returned. `None` when the queue is empty.
    pub fn step(&mut self) -> Option<Delivery<P>> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = self.now.max(ev.at);
            if self.down.contains(&ev.to) {
                self.stats.messages_dropped += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            self.stats.bytes_delivered += ev.bytes as u64;
            self.stats.per_node[ev.to].1 += 1;
            return Some(Delivery {
                at: ev.at,
                from: ev.from,
                to: ev.to,
                bytes: ev.bytes,
                payload: ev.payload,
            });
        }
        None
    }

    /// Runs the network dry, discarding deliveries. Returns how many
    /// were delivered.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while self.step().is_some() {
            n += 1;
        }
        n
    }

    /// Marks a node down: deliveries to it are dropped until
    /// [`SimNet::recover`].
    pub fn fail(&mut self, node: NodeId) {
        self.down.insert(node);
    }

    /// Brings a node back.
    pub fn recover(&mut self, node: NodeId) {
        self.down.remove(&node);
    }

    /// True if the node is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Number of messages waiting in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize, lat: u64) -> SimNet<u32> {
        SimNet::new(Topology::uniform(n, lat))
    }

    #[test]
    fn delivery_order_by_time_then_seq() {
        let mut s = SimNet::new(Topology::clustered(4, 2, 10, 1000));
        s.send(0, 1, 0, 1); // inter: at 1000
        s.send(0, 2, 0, 2); // intra: at 10
        s.send(0, 2, 0, 3); // intra: at 10, later seq
        let d1 = s.step().unwrap();
        let d2 = s.step().unwrap();
        let d3 = s.step().unwrap();
        assert_eq!((d1.payload, d1.at), (2, 10));
        assert_eq!((d2.payload, d2.at), (3, 10));
        assert_eq!((d3.payload, d3.at), (1, 1000));
        assert_eq!(s.now(), 1000);
    }

    #[test]
    fn clock_advances_with_chained_sends() {
        let mut s = net(3, 100);
        s.send(0, 1, 0, 0);
        let d = s.step().unwrap();
        assert_eq!(d.at, 100);
        s.send(d.to, 2, 0, 1);
        let d2 = s.step().unwrap();
        assert_eq!(d2.at, 200);
    }

    #[test]
    fn failed_node_drops() {
        let mut s = net(2, 10);
        s.fail(1);
        s.send(0, 1, 5, 7);
        assert!(s.step().is_none());
        assert_eq!(s.stats().messages_dropped, 1);
        assert_eq!(s.stats().messages_delivered, 0);
        s.recover(1);
        s.send(0, 1, 5, 8);
        assert_eq!(s.step().unwrap().payload, 8);
    }

    #[test]
    fn stats_account_bytes_and_per_node() {
        let mut s = net(3, 10);
        s.send(0, 1, 100, 0);
        s.send(1, 2, 50, 1);
        s.drain();
        let st = s.stats();
        assert_eq!(st.messages_sent, 2);
        assert_eq!(st.bytes_sent, 150);
        assert_eq!(st.bytes_delivered, 150);
        assert_eq!(st.per_node[0], (1, 0));
        assert_eq!(st.per_node[1], (1, 1));
        assert_eq!(st.per_node[2], (0, 1));
    }

    #[test]
    fn determinism_same_sends_same_trace() {
        let run = || {
            let mut s = SimNet::new(Topology::clustered(10, 3, 5, 500).with_bandwidth(1.0));
            for i in 0..10usize {
                s.send(i, (i * 7 + 3) % 10, i * 13, i as u32);
            }
            let mut trace = Vec::new();
            while let Some(d) = s.step() {
                trace.push((d.at, d.from, d.to, d.payload));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn self_send_is_instant() {
        let mut s = net(2, 1000);
        s.send(0, 0, 10, 9);
        let d = s.step().unwrap();
        assert_eq!(d.at, 0);
    }
}
