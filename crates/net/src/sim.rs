//! The discrete-event simulator core.

use std::collections::HashSet;

use crate::calendar::{Calendar, Event};
use crate::fault::{FaultPlan, FaultState};
use crate::stats::NetStats;
use crate::topology::Topology;

pub use crate::topology::NodeId;

/// A message delivered by [`SimNet::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Simulated delivery time in microseconds.
    pub at: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size charged to the network.
    pub bytes: usize,
    /// The payload.
    pub payload: P,
    /// True for local timer events scheduled with [`SimNet::schedule`]
    /// — they carry no bytes and are invisible to message accounting.
    pub timer: bool,
}

/// A deterministic discrete-event network over a [`Topology`].
///
/// Drive it caller-side:
///
/// ```
/// use mqp_net::{SimNet, Topology};
///
/// let mut net: SimNet<&'static str> = SimNet::new(Topology::uniform(3, 1_000));
/// net.send(0, 1, 64, "hello");
/// while let Some(d) = net.step() {
///     if d.payload == "hello" {
///         net.send(d.to, 2, 64, "onward");
///     }
/// }
/// assert_eq!(net.stats().messages_delivered, 2);
/// assert_eq!(net.now(), 2_000);
/// ```
///
/// With a [`FaultPlan`] installed (see [`SimNet::set_fault_plan`]) the
/// network injects seeded loss, jitter, duplication, and churn — still
/// byte-for-byte deterministic for a given seed and send sequence.
pub struct SimNet<P> {
    topology: Topology,
    queue: Calendar<P>,
    now: u64,
    seq: u64,
    down: HashSet<NodeId>,
    stats: NetStats,
    faults: Option<FaultState>,
    /// Non-timer messages currently queued (in flight).
    in_flight: usize,
    /// Plan-driven churn transitions applied by [`SimNet::step`], for
    /// the host to drain ([`SimNet::drain_churn`]) — how a driver
    /// learns "node 7 just crashed / just rejoined" so it can run the
    /// node's own crash/recovery machinery (durable catalog replay).
    churn_log: Vec<crate::fault::ChurnEvent>,
}

impl<P> SimNet<P> {
    /// A fresh network at time 0.
    pub fn new(topology: Topology) -> Self {
        let stats = NetStats::new(topology.len());
        SimNet {
            topology,
            queue: Calendar::new(),
            now: 0,
            seq: 0,
            down: HashSet::new(),
            stats,
            faults: None,
            in_flight: 0,
            churn_log: Vec::new(),
        }
    }

    /// Builds a network with a fault plan installed.
    pub fn with_faults(topology: Topology, plan: FaultPlan) -> Self {
        let mut net = SimNet::new(topology);
        net.set_fault_plan(plan);
        net
    }

    /// Installs (or replaces) the fault plan. Messages already in
    /// flight keep the fate they were drawn at send time.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// The simulated clock (µs): time of the last delivery (or 0).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics — hosts use this to record protocol-level
    /// events (retries) the raw network cannot see.
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Schedules a local timer at `node`, firing `delay_us` from now.
    /// Timers are not messages: they carry no bytes, bypass fault
    /// injection, and are skipped silently (not counted as drops) if
    /// the node is down when they fire.
    pub fn schedule(&mut self, node: NodeId, delay_us: u64, payload: P) {
        self.queue.push(Event {
            at: self.now + delay_us,
            seq: self.seq,
            from: node,
            to: node,
            bytes: 0,
            payload,
            timer: true,
        });
        self.seq += 1;
        self.note_depth();
    }

    fn enqueue_msg(&mut self, at: u64, from: NodeId, to: NodeId, bytes: usize, payload: P) {
        self.queue.push(Event {
            at,
            seq: self.seq,
            from,
            to,
            bytes,
            payload,
            timer: false,
        });
        self.seq += 1;
        self.in_flight += 1;
        self.note_depth();
    }

    fn note_depth(&mut self) {
        let depth = self.queue.len() as u64;
        if depth > self.stats.peak_queue_depth {
            self.stats.peak_queue_depth = depth;
        }
    }

    /// Delivers the next event, advancing the clock. Messages to down
    /// nodes are dropped (counted) and the next live delivery is
    /// returned; timers at down nodes are discarded silently. `None`
    /// when the queue is empty.
    pub fn step(&mut self) -> Option<Delivery<P>> {
        loop {
            // Apply churn that takes effect before (or exactly at) the
            // next event: a node crashed at t drops deliveries at t.
            let next_at = self.queue.peek_at()?;
            if let Some(f) = &mut self.faults {
                for ev in f.churn_until(next_at) {
                    if ev.up {
                        self.down.remove(&ev.node);
                    } else {
                        self.down.insert(ev.node);
                    }
                    self.churn_log.push(*ev);
                }
            }
            let ev = self.queue.pop().expect("peeked above");
            self.now = self.now.max(ev.at);
            self.stats.events_processed += 1;
            if ev.timer {
                if self.down.contains(&ev.to) {
                    continue; // dead node's timer: discard silently
                }
                return Some(Delivery {
                    at: ev.at,
                    from: ev.from,
                    to: ev.to,
                    bytes: 0,
                    payload: ev.payload,
                    timer: true,
                });
            }
            self.in_flight -= 1;
            if self.down.contains(&ev.to) {
                self.stats.messages_dropped += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            self.stats.bytes_delivered += ev.bytes as u64;
            self.stats.per_node[ev.to].1 += 1;
            return Some(Delivery {
                at: ev.at,
                from: ev.from,
                to: ev.to,
                bytes: ev.bytes,
                payload: ev.payload,
                timer: false,
            });
        }
    }

    /// Runs the network dry, discarding deliveries. Returns how many
    /// were delivered.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while self.step().is_some() {
            n += 1;
        }
        n
    }

    /// Marks a node down: deliveries to it are dropped until
    /// [`SimNet::recover`].
    pub fn fail(&mut self, node: NodeId) {
        self.down.insert(node);
    }

    /// Brings a node back.
    pub fn recover(&mut self, node: NodeId) {
        self.down.remove(&node);
    }

    /// True if the node is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Number of messages waiting in flight (timers excluded).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Drains the log of plan-driven churn transitions applied since
    /// the last drain, in application order. Manual [`SimNet::fail`] /
    /// [`SimNet::recover`] calls are not logged — the caller made those
    /// itself and can run its own crash/recovery hooks directly.
    pub fn drain_churn(&mut self) -> Vec<crate::fault::ChurnEvent> {
        std::mem::take(&mut self.churn_log)
    }
}

impl<P: Clone> SimNet<P> {
    /// Sends a message; it will be delivered after the topology's
    /// transit time (plus any fault-plan jitter), unless the fault plan
    /// loses it or the destination is down at delivery time. Self-sends
    /// bypass fault injection entirely.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize, payload: P) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.per_node[from].0 += 1;
        let base = self.topology.transit_time(from, to, bytes);
        let fate = match &mut self.faults {
            Some(f) if from != to => Some(f.fate(base)),
            _ => None,
        };
        let Some(fate) = fate else {
            self.enqueue_msg(self.now + base, from, to, bytes, payload);
            return;
        };
        // The fate is fully drawn before any copy is constructed: the
        // payload is cloned only when both the duplicate *and* the
        // original actually enter the queue. (The duplicate keeps the
        // earlier sequence number either way, so traces are unchanged.)
        if let Some(dup_jitter) = fate.duplicate_jitter_us {
            // The duplicate is a full extra copy: counted as sent so
            // the accounting identity stays exact.
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            self.stats.per_node[from].0 += 1;
            self.stats.messages_duplicated += 1;
            let dup_at = self.now + base + dup_jitter;
            if fate.lost {
                self.stats.messages_lost += 1;
                self.enqueue_msg(dup_at, from, to, bytes, payload);
            } else {
                self.enqueue_msg(dup_at, from, to, bytes, payload.clone());
                self.enqueue_msg(self.now + base + fate.jitter_us, from, to, bytes, payload);
            }
            return;
        }
        if fate.lost {
            self.stats.messages_lost += 1;
            return;
        }
        self.enqueue_msg(self.now + base + fate.jitter_us, from, to, bytes, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ChurnEvent;

    fn net(n: usize, lat: u64) -> SimNet<u32> {
        SimNet::new(Topology::uniform(n, lat))
    }

    #[test]
    fn delivery_order_by_time_then_seq() {
        let mut s = SimNet::new(Topology::clustered(4, 2, 10, 1000));
        s.send(0, 1, 0, 1); // inter: at 1000
        s.send(0, 2, 0, 2); // intra: at 10
        s.send(0, 2, 0, 3); // intra: at 10, later seq
        let d1 = s.step().unwrap();
        let d2 = s.step().unwrap();
        let d3 = s.step().unwrap();
        assert_eq!((d1.payload, d1.at), (2, 10));
        assert_eq!((d2.payload, d2.at), (3, 10));
        assert_eq!((d3.payload, d3.at), (1, 1000));
        assert_eq!(s.now(), 1000);
    }

    #[test]
    fn clock_advances_with_chained_sends() {
        let mut s = net(3, 100);
        s.send(0, 1, 0, 0);
        let d = s.step().unwrap();
        assert_eq!(d.at, 100);
        s.send(d.to, 2, 0, 1);
        let d2 = s.step().unwrap();
        assert_eq!(d2.at, 200);
    }

    #[test]
    fn failed_node_drops() {
        let mut s = net(2, 10);
        s.fail(1);
        s.send(0, 1, 5, 7);
        assert!(s.step().is_none());
        assert_eq!(s.stats().messages_dropped, 1);
        assert_eq!(s.stats().messages_delivered, 0);
        s.recover(1);
        s.send(0, 1, 5, 8);
        assert_eq!(s.step().unwrap().payload, 8);
    }

    #[test]
    fn stats_account_bytes_and_per_node() {
        let mut s = net(3, 10);
        s.send(0, 1, 100, 0);
        s.send(1, 2, 50, 1);
        s.drain();
        let st = s.stats();
        assert_eq!(st.messages_sent, 2);
        assert_eq!(st.bytes_sent, 150);
        assert_eq!(st.bytes_delivered, 150);
        assert_eq!(st.per_node[0], (1, 0));
        assert_eq!(st.per_node[1], (1, 1));
        assert_eq!(st.per_node[2], (0, 1));
    }

    #[test]
    fn determinism_same_sends_same_trace() {
        let run = || {
            let mut s = SimNet::new(Topology::clustered(10, 3, 5, 500).with_bandwidth(1.0));
            for i in 0..10usize {
                s.send(i, (i * 7 + 3) % 10, i * 13, i as u32);
            }
            let mut trace = Vec::new();
            while let Some(d) = s.step() {
                trace.push((d.at, d.from, d.to, d.payload));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn self_send_is_instant() {
        let mut s = net(2, 1000);
        s.send(0, 0, 10, 9);
        let d = s.step().unwrap();
        assert_eq!(d.at, 0);
    }

    #[test]
    fn total_loss_loses_everything_nonlocal() {
        let mut s = net(3, 100);
        s.set_fault_plan(FaultPlan::new(1).with_loss(1.0));
        s.send(0, 1, 10, 1);
        s.send(1, 2, 10, 2);
        s.send(2, 2, 10, 3); // self-send: immune
        assert_eq!(s.step().unwrap().payload, 3);
        assert!(s.step().is_none());
        let st = s.stats();
        assert_eq!(st.messages_sent, 3);
        assert_eq!(st.messages_lost, 2);
        assert_eq!(st.messages_delivered, 1);
        assert_eq!(s.in_flight(), 0);
        assert!(st.balances(s.in_flight()));
    }

    #[test]
    fn duplication_delivers_twice_and_balances() {
        let mut s = net(2, 100);
        s.set_fault_plan(FaultPlan::new(1).with_duplication(1.0));
        s.send(0, 1, 10, 7);
        let d1 = s.step().unwrap();
        let d2 = s.step().unwrap();
        assert_eq!((d1.payload, d2.payload), (7, 7));
        assert!(s.step().is_none());
        let st = s.stats();
        assert_eq!(st.messages_sent, 2); // original + copy
        assert_eq!(st.messages_duplicated, 1);
        assert_eq!(st.messages_delivered, 2);
        assert!(st.balances(s.in_flight()));
    }

    #[test]
    fn jitter_delays_but_preserves_payloads() {
        let mut s = net(2, 1_000);
        s.set_fault_plan(FaultPlan::new(3).with_jitter(2.0));
        for i in 0..20u32 {
            s.send(0, 1, 0, i);
        }
        let mut got = Vec::new();
        while let Some(d) = s.step() {
            assert!(d.at >= 1_000 && d.at <= 3_000, "at = {}", d.at);
            got.push(d.payload);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // With 20 messages over a 2x jitter window, at least one pair
        // reorders for this seed (a fixed, reproducible property).
        assert_ne!(got, sorted, "expected reordering under jitter");
    }

    #[test]
    fn churn_schedule_crashes_and_rejoins() {
        let mut s = net(2, 100);
        s.set_fault_plan(FaultPlan::new(0).with_churn(vec![
            ChurnEvent {
                at: 150,
                node: 1,
                up: false,
            },
            ChurnEvent {
                at: 350,
                node: 1,
                up: true,
            },
        ]));
        s.send(0, 1, 1, 1); // delivered at 100, before crash
        assert_eq!(s.step().unwrap().payload, 1);
        s.send(0, 1, 1, 2); // delivered at 200: node down -> dropped
        assert!(s.step().is_none());
        assert!(s.is_down(1));
        assert_eq!(s.stats().messages_dropped, 1);
        // Clock is at 200; next send lands at 300, still down.
        s.send(0, 1, 1, 3);
        assert!(s.step().is_none());
        // Now at 300; next send lands at 400, after the rejoin.
        s.send(0, 1, 1, 4);
        assert_eq!(s.step().unwrap().payload, 4);
        assert!(!s.is_down(1));
        assert!(s.stats().balances(s.in_flight()));
        // Both plan-driven transitions were logged, in order, and the
        // drain is consumed exactly once.
        let log = s.drain_churn();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].node, log[0].up), (1, false));
        assert_eq!((log[1].node, log[1].up), (1, true));
        assert!(s.drain_churn().is_empty());
    }

    #[test]
    fn manual_fail_recover_not_in_churn_log() {
        let mut s = net(2, 10);
        s.fail(1);
        s.recover(1);
        s.send(0, 1, 1, 1);
        s.drain();
        assert!(s.drain_churn().is_empty());
    }

    #[test]
    fn timers_fire_in_order_and_skip_dead_nodes() {
        let mut s = net(2, 100);
        s.schedule(0, 500, 10);
        s.schedule(1, 300, 20);
        s.fail(1);
        let d = s.step().unwrap();
        assert!(d.timer);
        assert_eq!((d.payload, d.at), (10, 500));
        assert!(s.step().is_none());
        // Timers never touch message accounting.
        let st = s.stats();
        assert_eq!(st.messages_sent, 0);
        assert_eq!(st.messages_dropped, 0);
        assert_eq!(s.in_flight(), 0);
    }

    /// Payload that counts how many times it is cloned.
    #[derive(Debug)]
    struct CountClones(std::rc::Rc<std::cell::Cell<usize>>);

    impl Clone for CountClones {
        fn clone(&self) -> Self {
            self.0.set(self.0.get() + 1);
            CountClones(std::rc::Rc::clone(&self.0))
        }
    }

    #[test]
    fn duplicate_fault_path_clones_only_when_both_copies_fly() {
        // Both fates are drawn before any copy is constructed, so a
        // duplicate whose original is lost moves the payload instead of
        // cloning it.
        let clones = std::rc::Rc::new(std::cell::Cell::new(0));
        let payload = || CountClones(std::rc::Rc::clone(&clones));

        // No faults: never clones.
        let mut s: SimNet<CountClones> = net_with(2, 100, None);
        s.send(0, 1, 8, payload());
        assert_eq!(s.drain(), 1);
        assert_eq!(clones.get(), 0);

        // Duplicate + original both fly: exactly one clone.
        let mut s = net_with(2, 100, Some(FaultPlan::new(1).with_duplication(1.0)));
        s.send(0, 1, 8, payload());
        assert_eq!(s.drain(), 2);
        assert_eq!(clones.get(), 1);

        // Original lost, duplicate flies alone: zero clones.
        let mut s = net_with(
            2,
            100,
            Some(FaultPlan::new(1).with_duplication(1.0).with_loss(1.0)),
        );
        s.send(0, 1, 8, payload());
        assert_eq!(s.drain(), 1);
        assert_eq!(clones.get(), 1); // unchanged from the run above
        assert!(s.stats().balances(s.in_flight()));
    }

    fn net_with(n: usize, lat: u64, plan: Option<FaultPlan>) -> SimNet<CountClones> {
        let mut s = SimNet::new(Topology::uniform(n, lat));
        if let Some(p) = plan {
            s.set_fault_plan(p);
        }
        s
    }

    #[test]
    fn events_processed_and_peak_depth_counters() {
        let mut s = net(3, 100);
        s.send(0, 1, 1, 1);
        s.send(0, 2, 1, 2);
        s.schedule(1, 50, 9);
        assert_eq!(s.stats().peak_queue_depth, 3);
        s.fail(2); // the message to 2 will be dropped, still an event
        assert_eq!(s.drain(), 2); // timer + delivery to node 1
        let st = s.stats();
        assert_eq!(st.events_processed, 3);
        assert_eq!(st.messages_dropped, 1);
        assert!(st.balances(s.in_flight()));
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let run = || {
            let mut s = SimNet::with_faults(
                Topology::clustered(10, 3, 50, 2_000),
                FaultPlan::new(77)
                    .with_loss(0.2)
                    .with_jitter(1.0)
                    .with_duplication(0.15)
                    .with_generated_churn(&[4, 5, 6, 7, 8, 9], 3, 100_000, 10_000),
            );
            for i in 0..40usize {
                s.send(i % 10, (i * 3 + 1) % 10, i, i as u32);
            }
            let mut trace = Vec::new();
            while let Some(d) = s.step() {
                trace.push((d.at, d.from, d.to, d.payload));
            }
            (trace, s.stats().clone(), s.now())
        };
        assert_eq!(run(), run());
    }
}
