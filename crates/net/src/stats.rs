//! Network accounting: the numbers the routing experiments report.

/// Aggregate counters for a simulation run.
///
/// The counters satisfy an exact identity at every instant (tested in
/// `sim.rs` and `tests/resilience.rs`):
///
/// ```text
/// messages_sent = messages_delivered + messages_dropped
///               + messages_lost + in_flight
/// ```
///
/// where `in_flight` is [`SimNet::in_flight`](crate::SimNet::in_flight).
/// Duplicate copies injected by a fault plan are counted in
/// `messages_sent` (and tallied separately in `messages_duplicated`),
/// so the identity holds under duplication too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (including fault-injected
    /// duplicate copies).
    pub messages_sent: u64,
    /// Messages delivered to a live node.
    pub messages_delivered: u64,
    /// Messages dropped because the destination was down.
    pub messages_dropped: u64,
    /// Messages lost on the wire by the fault plan.
    pub messages_lost: u64,
    /// Extra copies injected by the fault plan's duplication knob.
    pub messages_duplicated: u64,
    /// Protocol-level retransmissions recorded by the host (the
    /// harness's timeout/retry machinery, Chord's hop retransmits).
    pub retries: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Events popped from the scheduler: deliveries, drops, and timer
    /// firings alike. The scheduler-throughput numerator for
    /// `exp_scale`'s events/sec metric.
    pub events_processed: u64,
    /// High-water mark of the scheduler queue (messages + timers
    /// simultaneously pending) — the population the calendar queue must
    /// keep O(1) at 100k+ peers.
    pub peak_queue_depth: u64,
    /// Per-node (sent, received) message counts; indexed by node id.
    pub per_node: Vec<(u64, u64)>,
}

impl NetStats {
    pub(crate) fn new(n: usize) -> Self {
        NetStats {
            per_node: vec![(0, 0); n],
            ..Default::default()
        }
    }

    /// The exact accounting identity: every sent message is delivered,
    /// dropped (dead destination), lost (fault plan), or still in
    /// flight.
    pub fn balances(&self, in_flight: usize) -> bool {
        self.messages_sent
            == self.messages_delivered
                + self.messages_dropped
                + self.messages_lost
                + in_flight as u64
    }

    /// The busiest receiver: `(node, received)` — used to spot central
    /// bottlenecks (the Napster problem, §1).
    pub fn hottest_receiver(&self) -> Option<(usize, u64)> {
        self.per_node
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (i, *r))
            .max_by_key(|&(i, r)| (r, std::cmp::Reverse(i)))
    }

    /// Mean messages received per node.
    pub fn mean_received(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        let total: u64 = self.per_node.iter().map(|(_, r)| r).sum();
        total as f64 / self.per_node.len() as f64
    }

    /// Receive-load imbalance: hottest / mean (1.0 = perfectly even).
    pub fn receive_imbalance(&self) -> f64 {
        let mean = self.mean_received();
        if mean == 0.0 {
            return 0.0;
        }
        self.hottest_receiver()
            .map(|(_, r)| r as f64)
            .unwrap_or(0.0)
            / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_receiver_and_imbalance() {
        let mut s = NetStats::new(3);
        s.per_node[0] = (5, 8);
        s.per_node[1] = (1, 1);
        s.per_node[2] = (0, 0);
        assert_eq!(s.hottest_receiver(), Some((0, 8)));
        assert!((s.mean_received() - 3.0).abs() < 1e-9);
        assert!((s.receive_imbalance() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = NetStats::new(0);
        assert_eq!(s.hottest_receiver(), None);
        assert_eq!(s.mean_received(), 0.0);
        assert_eq!(s.receive_imbalance(), 0.0);
    }

    #[test]
    fn balance_identity() {
        let mut s = NetStats::new(2);
        s.messages_sent = 10;
        s.messages_delivered = 5;
        s.messages_dropped = 2;
        s.messages_lost = 1;
        assert!(s.balances(2));
        assert!(!s.balances(3));
        // Retries and duplicates do not enter the identity directly.
        s.retries = 4;
        s.messages_duplicated = 3;
        assert!(s.balances(2));
    }
}
