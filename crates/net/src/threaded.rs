//! A small in-process transport over `std::sync::mpsc` channels, for
//! running peers on real OS threads (the live examples). Same shape as
//! the simulator's API — `send(from, to, bytes, payload)` / blocking
//! receive — so peer logic is transport-agnostic.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;

use crate::topology::NodeId;

/// A message received from the threaded transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size (accounting only; no artificial delay is applied).
    pub bytes: usize,
    /// The payload.
    pub payload: P,
}

/// One node's endpoint: can send to any node and receive its own mail.
pub struct Endpoint<P> {
    id: NodeId,
    senders: Vec<Sender<Envelope<P>>>,
    inbox: Receiver<Envelope<P>>,
}

impl<P> Endpoint<P> {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the transport.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the transport has no nodes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a payload to `to`. Returns `false` if the destination's
    /// endpoint has been dropped (node "down").
    pub fn send(&self, to: NodeId, bytes: usize, payload: P) -> bool {
        self.senders[to]
            .send(Envelope {
                from: self.id,
                to,
                bytes,
                payload,
            })
            .is_ok()
    }

    /// Blocking receive with timeout. `None` on timeout or when all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<P>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<P>> {
        self.inbox.try_recv().ok()
    }
}

/// Creates a fully connected in-process transport with `n` endpoints.
pub fn mesh<P>(n: usize) -> Vec<Endpoint<P>> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(id, inbox)| Endpoint {
            id,
            senders: senders.clone(),
            inbox,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mesh_roundtrip_across_threads() {
        let mut eps = mesh::<String>(3);
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        let h1 = thread::spawn(move || {
            // B relays whatever it gets to C.
            let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
            b.send(2, env.bytes, format!("{} via b", env.payload));
        });
        let h2 = thread::spawn(move || {
            let env = c.recv_timeout(Duration::from_secs(5)).unwrap();
            (env.from, env.payload)
        });
        assert!(a.send(1, 5, "hello".to_owned()));
        h1.join().unwrap();
        let (from, payload) = h2.join().unwrap();
        assert_eq!(from, 1);
        assert_eq!(payload, "hello via b");
    }

    #[test]
    fn try_recv_empty() {
        let eps = mesh::<u32>(1);
        assert!(eps[0].try_recv().is_none());
        assert!(eps[0].send(0, 0, 42));
        assert_eq!(eps[0].try_recv().unwrap().payload, 42);
    }

    #[test]
    fn send_to_dropped_endpoint_fails() {
        let mut eps = mesh::<u32>(2);
        let a = eps.remove(0);
        drop(eps); // drop endpoint 1 (its receiver)
        assert!(!a.send(1, 0, 1));
    }
}
