//! An in-process transport over `std::sync::mpsc` channels, for running
//! peers on real OS threads. Unlike the simulator — which moves typed
//! payloads and *charges* a logical byte count — this transport carries
//! the actual serialized wire bytes of every message, so the byte count
//! is a property of the payload, not an argument the sender asserts.
//! `mqp_peer::ThreadedCluster` drives the sans-IO `PeerNode` protocol
//! core over these endpoints.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;

use crate::topology::NodeId;

/// A message received from the threaded transport: real wire bytes
/// plus addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The serialized wire bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Size on the wire — derived from the payload, never asserted.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }
}

/// One node's endpoint: can send to any node and receive its own mail.
pub struct Endpoint {
    id: NodeId,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the transport.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the transport has no nodes (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends wire bytes to `to`. Returns `false` if the destination's
    /// endpoint has been dropped (node "down").
    pub fn send(&self, to: NodeId, payload: Vec<u8>) -> bool {
        self.senders[to]
            .send(Envelope {
                from: self.id,
                to,
                payload,
            })
            .is_ok()
    }

    /// Blocking receive with timeout. `None` on timeout or when all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }
}

/// Creates a fully connected in-process transport with `n` endpoints.
pub fn mesh(n: usize) -> Vec<Endpoint> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(id, inbox)| Endpoint {
            id,
            senders: senders.clone(),
            inbox,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mesh_roundtrip_across_threads() {
        let mut eps = mesh(3);
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        let h1 = thread::spawn(move || {
            // B relays whatever it gets to C.
            let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
            let mut relayed = env.payload.clone();
            relayed.extend_from_slice(b" via b");
            b.send(2, relayed);
        });
        let h2 = thread::spawn(move || {
            let env = c.recv_timeout(Duration::from_secs(5)).unwrap();
            (env.from, env.payload)
        });
        assert!(a.send(1, b"hello".to_vec()));
        h1.join().unwrap();
        let (from, payload) = h2.join().unwrap();
        assert_eq!(from, 1);
        assert_eq!(payload, b"hello via b");
    }

    #[test]
    fn byte_count_is_derived_from_payload() {
        let eps = mesh(1);
        assert!(eps[0].try_recv().is_none());
        assert!(eps[0].send(0, vec![42; 7]));
        let env = eps[0].try_recv().unwrap();
        assert_eq!(env.bytes(), 7);
        assert_eq!(env.payload, vec![42; 7]);
    }

    #[test]
    fn send_to_dropped_endpoint_fails() {
        let mut eps = mesh(2);
        let a = eps.remove(0);
        drop(eps); // drop endpoint 1 (its receiver)
        assert!(!a.send(1, Vec::new()));
    }
}
