//! Topologies: where latency comes from.

/// Node address in the simulator (dense index).
pub type NodeId = usize;

/// A latency/bandwidth model over `n` nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    kind: Kind,
    /// Bytes per microsecond per link; `None` = infinite bandwidth
    /// (latency-only model).
    bandwidth: Option<f64>,
}

#[derive(Debug, Clone)]
enum Kind {
    /// Same latency between every pair.
    Uniform { latency_us: u64 },
    /// Nodes grouped into clusters (LANs); cheap links within a
    /// cluster, expensive links between clusters. Cluster assignment is
    /// round-robin (`node % clusters`), which keeps it deterministic
    /// and independent of any RNG.
    Clustered {
        clusters: usize,
        intra_us: u64,
        inter_us: u64,
    },
}

impl Topology {
    /// Uniform latency between all pairs (self-sends cost 0).
    pub fn uniform(n: usize, latency_us: u64) -> Self {
        Topology {
            n,
            kind: Kind::Uniform { latency_us },
            bandwidth: None,
        }
    }

    /// Clustered topology: `clusters` LANs with `intra_us` latency
    /// inside and `inter_us` between them — the "geographic locality"
    /// the garage-sale scenario assumes (§2).
    pub fn clustered(n: usize, clusters: usize, intra_us: u64, inter_us: u64) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        Topology {
            n,
            kind: Kind::Clustered {
                clusters,
                intra_us,
                inter_us,
            },
            bandwidth: None,
        }
    }

    /// Adds a bandwidth model: transfer time = bytes / `bytes_per_us`,
    /// added to propagation latency.
    pub fn with_bandwidth(mut self, bytes_per_us: f64) -> Self {
        assert!(bytes_per_us > 0.0, "bandwidth must be positive");
        self.bandwidth = Some(bytes_per_us);
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The cluster a node belongs to (0 for uniform topologies).
    pub fn cluster_of(&self, node: NodeId) -> usize {
        match self.kind {
            Kind::Uniform { .. } => 0,
            Kind::Clustered { clusters, .. } => node % clusters,
        }
    }

    /// Propagation latency between two nodes in microseconds.
    pub fn latency(&self, from: NodeId, to: NodeId) -> u64 {
        assert!(from < self.n && to < self.n, "node out of range");
        if from == to {
            return 0;
        }
        match self.kind {
            Kind::Uniform { latency_us } => latency_us,
            Kind::Clustered {
                intra_us, inter_us, ..
            } => {
                if self.cluster_of(from) == self.cluster_of(to) {
                    intra_us
                } else {
                    inter_us
                }
            }
        }
    }

    /// Total delivery time for a message of `bytes` bytes.
    pub fn transit_time(&self, from: NodeId, to: NodeId, bytes: usize) -> u64 {
        let prop = self.latency(from, to);
        match self.bandwidth {
            Some(bw) if from != to => prop + (bytes as f64 / bw).ceil() as u64,
            _ => prop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_latency() {
        let t = Topology::uniform(4, 50_000);
        assert_eq!(t.latency(0, 1), 50_000);
        assert_eq!(t.latency(3, 2), 50_000);
        assert_eq!(t.latency(2, 2), 0);
    }

    #[test]
    fn clustered_latency() {
        let t = Topology::clustered(6, 2, 1_000, 80_000);
        // Round-robin assignment: 0,2,4 in cluster 0; 1,3,5 in cluster 1.
        assert_eq!(t.latency(0, 2), 1_000);
        assert_eq!(t.latency(1, 5), 1_000);
        assert_eq!(t.latency(0, 1), 80_000);
        assert_eq!(t.cluster_of(4), 0);
        assert_eq!(t.cluster_of(5), 1);
    }

    #[test]
    fn bandwidth_adds_transfer_time() {
        let t = Topology::uniform(2, 1_000).with_bandwidth(10.0); // 10 B/µs
        assert_eq!(t.transit_time(0, 1, 0), 1_000);
        assert_eq!(t.transit_time(0, 1, 100), 1_000 + 10);
        assert_eq!(t.transit_time(0, 1, 105), 1_000 + 11); // ceil
        assert_eq!(t.transit_time(1, 1, 1_000_000), 0); // self-send free
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Topology::uniform(2, 1).latency(0, 5);
    }
}
