//! The real-thread driver: the same sans-IO [`PeerNode`]s the
//! simulator runs, each on its own OS thread over the
//! [`mqp_net::threaded`] transport, with an [`MqpClient`] front-end
//! for submitting queries and collecting [`QueryOutcome`]s.
//!
//! Where the simulator driver is omniscient (free acks, global
//! completion knowledge, a virtual clock), this driver is honest:
//! acknowledgements travel as real `ack` frames, retry deadlines are
//! enforced with receive timeouts against the wall clock, and
//! completion effects are funneled to the front-end over a results
//! channel (driver plumbing, not peer traffic — the simulator's
//! `completed` vector, made concurrent). Both drivers execute the
//! identical protocol core, which is what the sim-vs-threaded
//! equivalence test (`tests/equivalence.rs`) pins down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mqp_algebra::plan::Plan;
use mqp_core::{Mqp, QueryId, QueryOutcome};
use mqp_net::threaded::{mesh, Endpoint};
use mqp_net::NodeId;

use crate::node::{Directory, Effect, PeerNode, RetryPolicy};
use crate::peer::Peer;
use crate::wire::Frame;

/// How long an idle worker blocks on its inbox before re-checking its
/// timers.
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// Driver control for a worker, delivered out-of-band of the frame
/// transport (the same shape the TCP driver uses): crash the peer or
/// bring it back through the recovery state machine.
enum Ctl {
    /// Crash: durable peers lose volatile state and their disk power-
    /// fails; while down the worker discards every delivered frame.
    Kill,
    /// Restart: recover the catalog from the journal and re-announce
    /// surviving bindings (`rereg`).
    Restart,
}

/// Aggregate statistics for a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Wire frames delivered to workers (acks and control included).
    pub frames_delivered: u64,
    /// Actual wire bytes delivered to workers.
    pub bytes_delivered: u64,
    /// Timeout-driven retries across all workers.
    pub retries: u64,
}

struct SharedCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
    retries: AtomicU64,
}

/// Per-worker driver loop: block on the inbox (bounded by the node's
/// next retry deadline), feed frames to the node, execute effects.
fn worker_loop(
    mut node: PeerNode,
    endpoint: Endpoint,
    ctl: Receiver<Ctl>,
    outcomes: Sender<QueryOutcome>,
    counters: Arc<SharedCounters>,
    epoch: Instant,
    service_delay: Duration,
) {
    let now_us = || epoch.elapsed().as_micros() as u64;
    let mut down = false;
    loop {
        // Driver control first: a pending kill must take effect before
        // the next frame is processed.
        while let Ok(c) = ctl.try_recv() {
            match c {
                Ctl::Kill => {
                    down = true;
                    node.crash();
                }
                Ctl::Restart => {
                    if down {
                        down = false;
                        let effects = node.recover(now_us());
                        apply(&endpoint, &outcomes, &counters, effects);
                    }
                }
            }
        }
        let wait = match node.next_deadline().filter(|_| !down) {
            Some(d) => Duration::from_micros(d.saturating_sub(now_us())).min(IDLE_WAIT),
            None => IDLE_WAIT,
        };
        let received = endpoint.recv_timeout(wait);
        if down {
            // A crashed peer receives nothing: discard deliveries
            // uncounted (they are lost exactly as on a real network).
            // Only the driver's stop still applies, so shutdown can
            // never hang on a dead worker.
            if let Some(env) = received {
                if Frame::kind(&env.payload) == "stop" {
                    return;
                }
            }
            continue;
        }
        if let Some(env) = received {
            counters.frames.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes
                .fetch_add(env.bytes() as u64, Ordering::Relaxed);
            match Frame::kind(&env.payload) {
                "stop" => {
                    // Drain before dying: frames already queued behind
                    // the stop (self-sends especially — a peer routing
                    // to itself enqueues into its own inbox) carry
                    // completions the front-end is still owed. Without
                    // this, an immediate shutdown after a burst of
                    // submissions loses outcomes at teardown.
                    while let Some(env) = endpoint.try_recv() {
                        counters.frames.fetch_add(1, Ordering::Relaxed);
                        counters
                            .bytes
                            .fetch_add(env.bytes() as u64, Ordering::Relaxed);
                        if Frame::kind(&env.payload) != "stop" {
                            let effects = node.on_message(env.from, &env.payload, now_us());
                            apply(&endpoint, &outcomes, &counters, effects);
                        }
                    }
                    return;
                }
                kind => {
                    // Model per-envelope service time (store access,
                    // disk, remote fetch) for MQP processing — the knob
                    // `exp_threaded_throughput` uses to show the
                    // cluster overlapping service stalls across
                    // workers.
                    if kind == "mqp" && !service_delay.is_zero() {
                        std::thread::sleep(service_delay);
                    }
                    let effects = node.on_message(env.from, &env.payload, now_us());
                    apply(&endpoint, &outcomes, &counters, effects);
                }
            }
        }
        // Fire any expired retry watches.
        if node.next_deadline().is_some_and(|d| d <= now_us()) {
            let effects = node.on_tick(now_us());
            apply(&endpoint, &outcomes, &counters, effects);
        }
    }
}

/// Executes a node's effects against the real transport.
fn apply(
    endpoint: &Endpoint,
    outcomes: &Sender<QueryOutcome>,
    counters: &SharedCounters,
    effects: Vec<Effect>,
) {
    for effect in effects {
        match effect {
            Effect::Send { to, bytes } => {
                // A dropped endpoint is a crashed node: the message is
                // lost, exactly as on a real network. Retry watches (if
                // armed) take it from there.
                let _ = endpoint.send(to, bytes);
            }
            Effect::Ack { to, qid } => {
                let _ = endpoint.send(to, Frame::Ack { qid }.encode());
            }
            Effect::Complete(outcome) => {
                let _ = outcomes.send(outcome);
            }
            Effect::Retried { .. } => {
                counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            // The node's internal watch list is the timer state; the
            // worker loop polls `next_deadline` — nothing to do here.
            Effect::SetTimer { .. } => {}
            Effect::Register(_) | Effect::Recovered(_) => {}
        }
    }
}

/// The front-end: submits plans into the cluster and collects
/// outcomes. Obtained from [`ThreadedCluster::new`]; the cluster and
/// its client are separable so submission can happen from any thread.
pub struct MqpClient {
    endpoint: Endpoint,
    outcomes: Receiver<QueryOutcome>,
    next_qid: u64,
    /// Outcome dedup: under retries the same query can complete twice.
    seen: std::collections::HashSet<QueryId>,
}

impl MqpClient {
    /// Submits `plan` at worker `client` (the peer that becomes the
    /// query's client). Returns the query id; the outcome arrives
    /// later via [`MqpClient::poll`] / [`MqpClient::collect`].
    pub fn submit(&mut self, client: NodeId, plan: &Plan) -> QueryId {
        let qid = QueryId::new(self.next_qid);
        self.next_qid += 1;
        let frame = Frame::Submit {
            qid,
            plan: Mqp::without_original(plan.clone()).to_wire(),
        };
        assert!(
            self.endpoint.send(client, frame.encode()),
            "worker {client} is gone"
        );
        qid
    }

    /// Pushes a policy rule set to worker `node` (hot reload). Returns
    /// `false` when the worker is gone. Queries already in flight at
    /// the worker keep their accounting; the next processing step sees
    /// the new rules.
    pub fn push_policy(&mut self, node: NodeId, rules: &mqp_core::RuleSet) -> bool {
        self.endpoint
            .send(node, Frame::Policy(rules.clone()).encode())
    }

    /// Delivers a catalog registration to worker `node` — the same
    /// `Register` wire frame the simulator's `send_registration` ships,
    /// so adversarial registration schedules run identically on every
    /// driver. Returns `false` when the worker is gone.
    pub fn register(&mut self, node: NodeId, entry: &mqp_catalog::CatalogEntry) -> bool {
        self.endpoint
            .send(node, Frame::Register(entry.clone()).encode())
    }

    /// Non-blocking: the next completed outcome, if any.
    pub fn poll(&mut self) -> Option<QueryOutcome> {
        loop {
            let outcome = self.outcomes.try_recv().ok()?;
            if self.seen.insert(outcome.qid) {
                return Some(outcome);
            }
        }
    }

    /// Blocking: collects `n` distinct outcomes or gives up after
    /// `timeout` without progress.
    pub fn collect(&mut self, n: usize, timeout: Duration) -> Vec<QueryOutcome> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.outcomes.recv_timeout(timeout) {
                Ok(outcome) => {
                    if self.seen.insert(outcome.qid) {
                        out.push(outcome);
                    }
                }
                Err(_) => break,
            }
        }
        out
    }
}

/// A population of peers on real OS threads: one worker thread per
/// peer, fully connected over `mqp_net::threaded`, plus a client slot
/// (node `n`) for the front-end.
pub struct ThreadedCluster {
    workers: Vec<JoinHandle<()>>,
    ctls: Vec<Sender<Ctl>>,
    counters: Arc<SharedCounters>,
    n: usize,
}

impl ThreadedCluster {
    /// Spawns one worker per peer. Peer `i` sits at node `i`; the
    /// returned [`MqpClient`] holds node `n`.
    pub fn new(peers: Vec<Peer>) -> (ThreadedCluster, MqpClient) {
        Self::with_config(peers, None, Duration::ZERO)
    }

    /// Spawns with a retry policy and/or a per-envelope service delay
    /// (see `worker_loop`).
    pub fn with_config(
        peers: Vec<Peer>,
        retry: Option<RetryPolicy>,
        service_delay: Duration,
    ) -> (ThreadedCluster, MqpClient) {
        let n = peers.len();
        let directory = Arc::new(Directory::new(
            peers.iter().map(|p| p.id().clone()).collect(),
        ));
        let mut endpoints = mesh(n + 1);
        let client_endpoint = endpoints.pop().expect("client endpoint");
        let (tx, rx) = channel();
        let counters = Arc::new(SharedCounters {
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        });
        let epoch = Instant::now();
        let mut ctls = Vec::with_capacity(n);
        let workers = peers
            .into_iter()
            .zip(endpoints)
            .enumerate()
            .map(|(i, (peer, endpoint))| {
                let mut node = PeerNode::new(i, peer, Arc::clone(&directory));
                node.set_retry(retry);
                let outcomes = tx.clone();
                let counters = Arc::clone(&counters);
                let (ctl_tx, ctl_rx) = channel();
                ctls.push(ctl_tx);
                std::thread::Builder::new()
                    .name(format!("mqp-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            node,
                            endpoint,
                            ctl_rx,
                            outcomes,
                            counters,
                            epoch,
                            service_delay,
                        )
                    })
                    .expect("spawn worker")
            })
            .collect();
        (
            ThreadedCluster {
                workers,
                ctls,
                counters,
                n,
            },
            MqpClient {
                endpoint: client_endpoint,
                outcomes: rx,
                next_qid: 0,
                seen: std::collections::HashSet::new(),
            },
        )
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Crashes worker `i` (the API parity twin of
    /// `TcpCluster::kill`): the peer's volatile state is dropped, a
    /// durable catalog's disk power-fails, and every frame delivered
    /// while down is discarded. Asynchronous — the worker notices on
    /// its next loop iteration (≤ `IDLE_WAIT`).
    pub fn kill(&self, i: usize) {
        let _ = self.ctls[i].send(Ctl::Kill);
    }

    /// Restarts worker `i`: the catalog recovers from its journal
    /// (prefix-consistent replay) and surviving bindings are
    /// re-announced as `rereg` frames. A no-op if the worker is up.
    pub fn restart(&self, i: usize) {
        let _ = self.ctls[i].send(Ctl::Restart);
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            frames_delivered: self.counters.frames.load(Ordering::Relaxed),
            bytes_delivered: self.counters.bytes.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
        }
    }

    /// Stops every worker and joins the threads. Returns final stats.
    pub fn shutdown(mut self, client: &MqpClient) -> ClusterStats {
        for i in 0..self.n {
            let _ = client.endpoint.send(i, Frame::Stop.encode());
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Music/CDs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    fn world() -> Vec<Peer> {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        vec![client, meta, s1, s2]
    }

    #[test]
    fn end_to_end_over_real_threads() {
        let (cluster, mut client) = ThreadedCluster::new(world());
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qid = client.submit(0, &plan);
        let done = client.collect(1, Duration::from_secs(10));
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        assert!(q.hops >= 3);
        let stats = cluster.shutdown(&client);
        assert!(stats.frames_delivered > 0);
        assert!(stats.bytes_delivered > 0);
    }

    #[test]
    fn many_concurrent_queries_all_complete() {
        let (cluster, mut client) = ThreadedCluster::new(world());
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qids: Vec<QueryId> = (0..24).map(|_| client.submit(0, &plan)).collect();
        let done = client.collect(qids.len(), Duration::from_secs(10));
        assert_eq!(done.len(), qids.len());
        let mut got: Vec<QueryId> = done.iter().map(|q| q.qid).collect();
        got.sort();
        assert_eq!(got, qids);
        for q in &done {
            assert!(q.failure.is_none(), "{:?}", q.failure);
            assert_eq!(q.items.len(), 2);
        }
        cluster.shutdown(&client);
    }

    /// The shutdown-ordering guarantee: a stop sent right behind a
    /// burst of submissions must not outrace their deliveries. With a
    /// single self-routing peer every delivery is a self-send queued
    /// behind the stop in its own inbox, so without the worker's
    /// stop-drain exactly zero outcomes would survive.
    #[test]
    fn stop_drains_behind_submissions() {
        let mut solo = Peer::new("solo", ns());
        solo.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>A</title><price>8</price></item>").unwrap()],
        );
        let (cluster, mut client) = ThreadedCluster::new(vec![solo]);
        let k = 8;
        for _ in 0..k {
            client.submit(0, &Plan::url("mqp://solo/"));
        }
        // No collect before shutdown: the outcomes must ride the drain.
        cluster.shutdown(&client);
        let done = client.collect(k, Duration::from_millis(100));
        assert_eq!(done.len(), k, "outcomes lost at teardown");
    }

    /// ThreadedCluster's kill/restart API (the parity twin of
    /// `TcpCluster`'s) drives the same recovery state machine: a durable
    /// seller loses its in-memory catalog at kill, recovers it from the
    /// journal at restart, and serves again audit-clean.
    #[test]
    fn durable_peer_survives_kill_restart() {
        use mqp_catalog::durable::{DurableCatalog, MemDisk, SharedDisk};
        use mqp_catalog::CatalogEntry;
        let mut peers = world();
        peers[2]
            .catalog_mut()
            .register(CatalogEntry::index("meta", pdx_cds()));
        peers[2].enable_durability(DurableCatalog::new(SharedDisk::new(MemDisk::new())));
        let (cluster, mut client) = ThreadedCluster::new(peers);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        client.submit(0, &plan);
        let before = client.collect(1, Duration::from_secs(10));
        assert_eq!(before.len(), 1);
        assert!(before[0].failure.is_none(), "{:?}", before[0].failure);

        // Power-cycle seller-1; the control messages are async, so give
        // the worker a loop iteration (≤ IDLE_WAIT) to notice each.
        cluster.kill(2);
        std::thread::sleep(Duration::from_millis(120));
        cluster.restart(2);
        std::thread::sleep(Duration::from_millis(120));

        client.submit(0, &plan);
        let done = client.collect(1, Duration::from_secs(10));
        assert_eq!(done.len(), 1, "query stranded across durable restart");
        let q = &done[0];
        assert!(q.failure.is_none(), "{:?}", q.failure);
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        assert_eq!(q.audit_clean, Some(true));
        cluster.shutdown(&client);
    }

    /// A volatile peer keeps the legacy interface-outage semantics
    /// through the same kill/restart API: protocol state survives in
    /// memory, so a killed-then-restarted peer serves with no journal.
    #[test]
    fn volatile_peer_keeps_state_across_kill_restart() {
        let (cluster, mut client) = ThreadedCluster::new(world());
        cluster.kill(2);
        std::thread::sleep(Duration::from_millis(120));
        cluster.restart(2);
        std::thread::sleep(Duration::from_millis(120));
        let qid = client.submit(0, &Plan::url("mqp://seller-1/"));
        let done = client.collect(1, Duration::from_secs(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].qid, qid);
        assert!(done[0].failure.is_none(), "{:?}", done[0].failure);
        assert_eq!(done[0].items.len(), 2);
        cluster.shutdown(&client);
    }

    #[test]
    fn poll_is_nonblocking_and_dedups() {
        let (cluster, mut client) = ThreadedCluster::new(world());
        assert!(client.poll().is_none());
        let qid = client.submit(0, &Plan::url("mqp://seller-2/"));
        let deadline = Instant::now() + Duration::from_secs(10);
        let outcome = loop {
            if let Some(o) = client.poll() {
                break o;
            }
            assert!(Instant::now() < deadline, "query never completed");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(outcome.qid, qid);
        cluster.shutdown(&client);
    }
}
