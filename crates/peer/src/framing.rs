//! Length-prefixed framing for byte-stream transports.
//!
//! A TCP connection is a byte stream: one `write` on the sender can
//! arrive as any number of `read`s on the receiver, split anywhere.
//! The [`wire`](crate::wire) frames are self-describing only down to
//! their header line, so stream transports wrap each encoded frame in
//! a 4-byte big-endian length prefix:
//!
//! ```text
//! stream  := frame*
//! frame   := len:u32be payload:[u8; len]      1 <= len <= MAX_FRAME
//! payload := Frame::encode() bytes (see crate::wire)
//! ```
//!
//! [`FrameDecoder`] is the incremental reader: push arbitrary byte
//! chunks in, pop complete payloads out. It tolerates any read-boundary
//! split (property-tested below) but is deliberately unforgiving about
//! corruption: a length of zero or one above [`MAX_FRAME`] poisons the
//! decoder permanently. There is no resynchronization — past a corrupt
//! length header every subsequent byte offset is a guess, and guessing
//! turns one flipped byte into an unbounded stream of plausible-looking
//! garbage frames. The connection owner must drop the connection and
//! let the retry machinery re-cover the loss, exactly as it would for
//! a peer crash.

/// Largest payload a stream transport will frame or accept. Generous:
/// the biggest legitimate frame is an MQP envelope dragging a large
/// `Data` batch, well under a megabyte in every workload; 16 MiB keeps
/// headroom while bounding what a corrupt or hostile length header can
/// make a receiver buffer.
pub const MAX_FRAME: usize = 16 << 20;

/// Bytes of length prefix per frame.
pub const PREFIX: usize = 4;

/// Wraps one encoded wire frame in its length prefix.
///
/// # Panics
/// If `payload` is empty or exceeds [`MAX_FRAME`] — both are protocol
/// bugs at the sender (no [`crate::wire::Frame`] encodes to zero
/// bytes), not conditions to signal to a remote peer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME,
        "unframeable payload length {}",
        payload.len()
    );
    let mut out = Vec::with_capacity(PREFIX + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a [`FrameDecoder`] refused its input. Both are fatal to the
/// connection: the decoder stays poisoned afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix of zero or greater than [`MAX_FRAME`].
    CorruptLength {
        /// The decoded (bad) length.
        len: u64,
    },
    /// The decoder was fed after reporting an error.
    Poisoned,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::CorruptLength { len } => {
                write!(f, "corrupt frame length {len} (max {MAX_FRAME})")
            }
            FrameError::Poisoned => write!(f, "decoder poisoned by an earlier corrupt frame"),
        }
    }
}

/// Incremental frame reader over an arbitrary chunking of the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes read off the stream. Accepts any split: one call
    /// per byte and one call per megabyte decode identically.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return; // nothing past a corrupt header is trustworthy
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete payload, if one is buffered.
    ///
    /// * `Ok(Some(payload))` — one frame, prefix stripped.
    /// * `Ok(None)` — need more bytes (a truncated frame is simply an
    ///   incomplete one; it only becomes an error if the connection
    ///   closes, which the connection owner observes, not the decoder).
    /// * `Err(_)` — corrupt length header; the decoder is poisoned and
    ///   every later call errors too.
    // Not `Iterator`: errors are sticky and terminal, which `Result`
    // inside `Option<Item>` would invert.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Poisoned);
        }
        let avail = self.buf.len() - self.pos;
        if avail < PREFIX {
            return Ok(None);
        }
        let p = &self.buf[self.pos..self.pos + PREFIX];
        let len = u32::from_be_bytes([p[0], p[1], p[2], p[3]]) as usize;
        if len == 0 || len > MAX_FRAME {
            self.poisoned = true;
            self.buf.clear();
            self.pos = 0;
            return Err(FrameError::CorruptLength { len: len as u64 });
        }
        if avail < PREFIX + len {
            return Ok(None);
        }
        let start = self.pos + PREFIX;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        // Compact once the dead prefix dominates, keeping push() O(1)
        // amortized without unbounded growth on long-lived connections.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(d: &mut FrameDecoder) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(Some(p)) = d.next() {
            out.push(p);
        }
        out
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut d = FrameDecoder::new();
        d.push(&encode_frame(b"hello frame"));
        assert_eq!(drain(&mut d), vec![b"hello frame".to_vec()]);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.next(), Ok(None));
    }

    #[test]
    fn byte_at_a_time_decoding() {
        let frames: Vec<&[u8]> = vec![b"a", b"second frame", b"x\ny\nz"];
        let stream: Vec<u8> = frames.iter().flat_map(|f| encode_frame(f)).collect();
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            d.push(&[b]);
            got.extend(drain(&mut d));
        }
        let want: Vec<Vec<u8>> = frames.iter().map(|f| f.to_vec()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn truncated_frame_is_incomplete_not_an_error() {
        let framed = encode_frame(b"truncate me");
        let mut d = FrameDecoder::new();
        d.push(&framed[..framed.len() - 3]);
        assert_eq!(d.next(), Ok(None));
        d.push(&framed[framed.len() - 3..]);
        assert_eq!(d.next(), Ok(Some(b"truncate me".to_vec())));
    }

    #[test]
    fn zero_length_poisons() {
        let mut d = FrameDecoder::new();
        d.push(&[0, 0, 0, 0, b'x']);
        assert_eq!(d.next(), Err(FrameError::CorruptLength { len: 0 }));
        // Poisoned: pushes are ignored, next() keeps erroring.
        d.push(&encode_frame(b"fine"));
        assert_eq!(d.next(), Err(FrameError::Poisoned));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn oversized_length_poisons_without_buffering() {
        let mut d = FrameDecoder::new();
        let bad = (MAX_FRAME as u32 + 1).to_be_bytes();
        d.push(&bad);
        assert_eq!(
            d.next(),
            Err(FrameError::CorruptLength {
                len: MAX_FRAME as u64 + 1
            })
        );
        assert_eq!(d.next(), Err(FrameError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "unframeable")]
    fn empty_payload_is_a_sender_bug() {
        encode_frame(b"");
    }

    #[test]
    fn compaction_keeps_decoding_correct() {
        // Push enough small frames to trigger the compaction path.
        let mut d = FrameDecoder::new();
        let payload = vec![7u8; 300];
        for i in 0..100u32 {
            let mut p = payload.clone();
            p[0] = i as u8;
            d.push(&encode_frame(&p));
            let got = d.next().unwrap().expect("frame");
            assert_eq!(got[0], i as u8);
            assert_eq!(got.len(), 300);
        }
        assert_eq!(d.pending(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..=255u8, 1..200)
    }

    proptest! {
        /// Encode → concatenate → split at arbitrary boundaries →
        /// decode reproduces the exact payload sequence, byte for byte.
        #[test]
        fn split_anywhere_roundtrips(
            payloads in proptest::collection::vec(arb_payload(), 1..8),
            cuts in proptest::collection::vec(0u16..=u16::MAX, 0..12),
        ) {
            let stream: Vec<u8> =
                payloads.iter().flat_map(|p| encode_frame(p)).collect();
            // Derive sorted split points inside the stream from the
            // raw cut draws.
            let mut points: Vec<usize> = cuts
                .iter()
                .map(|&c| c as usize % (stream.len() + 1))
                .collect();
            points.sort_unstable();
            points.dedup();
            let mut d = FrameDecoder::new();
            let mut got = Vec::new();
            let mut prev = 0;
            for p in points.into_iter().chain([stream.len()]) {
                d.push(&stream[prev..p]);
                prev = p;
                while let Some(frame) = d.next().unwrap() {
                    got.push(frame);
                }
            }
            prop_assert_eq!(got, payloads);
            prop_assert_eq!(d.pending(), 0);
        }

        /// A corrupt length header (zero or oversized) is rejected
        /// without panicking, and the decoder never attempts to
        /// resynchronize past it: everything afterwards — including
        /// perfectly valid frames — is refused.
        #[test]
        fn corrupt_prefix_rejects_and_never_resyncs(
            good_before in proptest::collection::vec(arb_payload(), 0..4),
            bad_len in prop_oneof![
                Just(0u32),
                (MAX_FRAME as u32 + 1)..=u32::MAX,
            ],
            tail in proptest::collection::vec(0u8..=255u8, 0..64),
            good_after in proptest::collection::vec(arb_payload(), 0..4),
        ) {
            let mut d = FrameDecoder::new();
            for p in &good_before {
                d.push(&encode_frame(p));
                prop_assert_eq!(d.next().unwrap(), Some(p.clone()));
            }
            d.push(&bad_len.to_be_bytes());
            d.push(&tail);
            prop_assert_eq!(
                d.next(),
                Err(FrameError::CorruptLength { len: bad_len as u64 })
            );
            // No resync: later pushes of valid frames stay refused.
            for p in &good_after {
                d.push(&encode_frame(p));
                prop_assert_eq!(d.next(), Err(FrameError::Poisoned));
            }
            prop_assert_eq!(d.pending(), 0);
        }

        /// Truncation is never mistaken for corruption: any strict
        /// prefix of a valid stream decodes a prefix of the frames and
        /// then reports "incomplete", not an error.
        #[test]
        fn truncation_is_incomplete_not_corrupt(
            payloads in proptest::collection::vec(arb_payload(), 1..6),
            cut_back in 0u16..=u16::MAX,
        ) {
            let stream: Vec<u8> =
                payloads.iter().flat_map(|p| encode_frame(p)).collect();
            let keep = stream.len() - 1 - (cut_back as usize % stream.len());
            let mut d = FrameDecoder::new();
            d.push(&stream[..keep]);
            let mut got = 0usize;
            loop {
                match d.next() {
                    Ok(Some(p)) => {
                        prop_assert_eq!(&p, &payloads[got]);
                        got += 1;
                    }
                    Ok(None) => break,
                    Err(e) => panic!("truncation misread as corruption: {e}"),
                }
            }
            prop_assert!(got < payloads.len());
        }
    }
}
