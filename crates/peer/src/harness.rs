//! The simulation harness: a population of peers over `mqp-net`,
//! exchanging serialized MQP envelopes. Every experiment (EXPERIMENTS.md)
//! runs through this.

use std::collections::HashMap;

use mqp_catalog::{CatalogEntry, ServerId};
use mqp_core::{Mqp, Outcome};
use mqp_namespace::InterestArea;
use mqp_net::{NodeId, SimNet, Topology};
use mqp_xml::Element;

use crate::peer::Peer;

/// Messages between peers.
#[derive(Debug, Clone)]
pub enum PeerMsg {
    /// A serialized MQP envelope in flight.
    Mqp(String),
    /// A completed result returning to the query's client.
    Result {
        /// Query id.
        qid: u64,
        /// Serialized result items.
        items: String,
    },
    /// Catalog registration (a base/index server announcing itself,
    /// §3.2/§3.3).
    Register(CatalogEntry),
}

impl PeerMsg {
    /// Bytes charged to the network for this message.
    pub fn wire_bytes(&self) -> usize {
        match self {
            PeerMsg::Mqp(s) => s.len(),
            PeerMsg::Result { items, .. } => items.len() + 32,
            PeerMsg::Register(e) => {
                // Server id + encoded area + level/flags.
                e.server.as_str().len() + mqp_namespace::urn::encode_area(&e.area).len() + 16
            }
        }
    }
}

/// Per-query accounting.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Node that submitted the query.
    pub client: NodeId,
    /// Simulated submission time (µs).
    pub submitted_at: u64,
    /// MQP hops so far (server-to-server forwards, including the final
    /// result delivery).
    pub hops: u64,
    /// Total MQP bytes shipped.
    pub mqp_bytes: u64,
    /// The interest area of the query's first interest-area URN, if
    /// any (used for cache learning).
    pub area: Option<InterestArea>,
    /// The index/meta server that bound the query's URN — what §3.4's
    /// route caches remember (filled at completion from provenance).
    pub bound_by: Option<ServerId>,
}

/// Final outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query id (from [`SimHarness::submit`]).
    pub qid: u64,
    /// Result items (empty when stuck).
    pub items: Vec<Element>,
    /// `None` on success; the reason when the query got stuck.
    pub failure: Option<String>,
    /// Completion time minus submission time (µs).
    pub latency_us: u64,
    /// MQP hops.
    pub hops: u64,
    /// Total MQP bytes shipped for this query.
    pub mqp_bytes: u64,
}

/// A population of peers on a simulated network.
pub struct SimHarness {
    /// The network (exposed for failure injection and stats).
    pub net: SimNet<PeerMsg>,
    peers: Vec<Peer>,
    index_of: HashMap<ServerId, NodeId>,
    pending: HashMap<u64, QueryStats>,
    completed: Vec<QueryOutcome>,
    next_qid: u64,
    /// When true, a completed query teaches the client's route cache
    /// which server finished it (§3.4 caching).
    pub cache_learning: bool,
}

impl SimHarness {
    /// Builds a harness; peer `i` sits at network node `i`.
    pub fn new(topology: Topology, peers: Vec<Peer>) -> Self {
        assert_eq!(
            topology.len(),
            peers.len(),
            "topology size must match peer count"
        );
        let index_of = peers
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id().clone(), i))
            .collect();
        SimHarness {
            net: SimNet::new(topology),
            peers,
            index_of,
            pending: HashMap::new(),
            completed: Vec::new(),
            next_qid: 0,
            cache_learning: false,
        }
    }

    /// Node id of a peer.
    pub fn node_of(&self, id: &ServerId) -> Option<NodeId> {
        self.index_of.get(id).copied()
    }

    /// Peer by node id.
    pub fn peer(&self, node: NodeId) -> &Peer {
        &self.peers[node]
    }

    /// Mutable peer by node id.
    pub fn peer_mut(&mut self, node: NodeId) -> &mut Peer {
        &mut self.peers[node]
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the harness has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Sends a registration message (counted as network traffic); the
    /// receiving peer adds the entry to its catalog on delivery.
    pub fn send_registration(&mut self, from: NodeId, to: NodeId, entry: CatalogEntry) {
        let msg = PeerMsg::Register(entry);
        let bytes = msg.wire_bytes();
        self.net.send(from, to, bytes, msg);
    }

    /// §3.3's complementary *pull* process: `index` asks every peer in
    /// `from` for its base entry; each reply is a registration message
    /// (all traffic counted). Returns how many entries were pulled.
    pub fn pull_registrations(&mut self, index: NodeId, from: &[NodeId]) -> usize {
        let mut pulled = 0;
        for &node in from {
            let entry = self.peers[node].base_entry();
            if entry.area.is_empty() {
                continue;
            }
            // The probe doubles as an introduction: the index server
            // announces it indexes the base server's area (so the base
            // peer learns a route), and the base server replies with
            // its entry.
            let intro = CatalogEntry::index(self.peers[index].id().clone(), entry.area.clone());
            self.send_registration(index, node, intro);
            self.send_registration(node, index, entry);
            pulled += 1;
        }
        pulled
    }

    /// Submits a query plan at `client`. If the plan is not already
    /// wrapped in `Display`, it is wrapped with a target addressing the
    /// client. Returns the query id.
    pub fn submit(&mut self, client: NodeId, plan: mqp_algebra::plan::Plan) -> u64 {
        let qid = self.next_qid;
        self.next_qid += 1;
        let target = format!("{}#{}", self.peers[client].id(), qid);
        let plan = match plan {
            mqp_algebra::plan::Plan::Display { input, .. } => {
                mqp_algebra::plan::Plan::display(target, *input)
            }
            other => mqp_algebra::plan::Plan::display(target, other),
        };
        // Track the query's interest area for cache learning.
        let area = plan.urns().iter().find_map(|u| u.urn.as_area().cloned());
        let mqp = Mqp::new(plan);
        let wire = mqp.to_wire();
        let bytes = wire.len();
        self.pending.insert(
            qid,
            QueryStats {
                client,
                submitted_at: self.net.now(),
                hops: 0,
                mqp_bytes: bytes as u64,
                area,
                bound_by: None,
            },
        );
        // Self-delivery starts processing at the client peer itself.
        self.net.send(client, client, bytes, PeerMsg::Mqp(wire));
        qid
    }

    /// Runs the network until quiescent (or `max_deliveries`). Returns
    /// the number of deliveries handled.
    pub fn run(&mut self, max_deliveries: usize) -> usize {
        let mut handled = 0;
        while handled < max_deliveries {
            let Some(delivery) = self.net.step() else {
                break;
            };
            handled += 1;
            let at = delivery.at;
            match delivery.payload {
                PeerMsg::Register(entry) => {
                    self.peers[delivery.to].catalog_mut().register(entry);
                }
                PeerMsg::Result { qid, items } => {
                    self.finish_result(qid, &items, at);
                }
                PeerMsg::Mqp(wire) => {
                    self.handle_mqp(delivery.to, &wire, at);
                }
            }
        }
        handled
    }

    fn handle_mqp(&mut self, node: NodeId, wire: &str, at: u64) {
        let mut mqp = match Mqp::from_wire(wire) {
            Ok(m) => m,
            Err(e) => {
                // A malformed envelope is a protocol bug; surface loudly.
                panic!("malformed MQP envelope delivered to node {node}: {e}");
            }
        };
        let qid = mqp
            .plan
            .target()
            .and_then(|t| t.rsplit_once('#'))
            .and_then(|(_, q)| q.parse::<u64>().ok());
        let peer = &self.peers[node];
        peer.set_clock(at);
        let outcome = peer.process(&mut mqp);
        match outcome {
            Outcome::Complete { target, items } => {
                // §3.4 cache learning: remember the server that *bound*
                // the URN (an index/meta server that knows the area),
                // not whoever happened to finish the reduction.
                let binder = mqp
                    .provenance
                    .iter()
                    .find(|v| v.action == mqp_core::Action::Bound)
                    .map(|v| v.server.clone());
                if let Some(qid) = qid {
                    if let Some(stats) = self.pending.get_mut(&qid) {
                        stats.bound_by = binder;
                    }
                }
                let (client_node, _) = match target.as_deref().and_then(|t| t.rsplit_once('#')) {
                    Some((client, _)) => {
                        let cid = ServerId::new(client);
                        (self.index_of.get(&cid).copied(), ())
                    }
                    None => (None, ()),
                };
                let items_xml: String = items.iter().map(mqp_xml::serialize).collect::<String>();
                match (client_node, qid) {
                    (Some(client), Some(qid)) => {
                        let msg = PeerMsg::Result {
                            qid,
                            items: items_xml,
                        };
                        let bytes = msg.wire_bytes();
                        if let Some(stats) = self.pending.get_mut(&qid) {
                            stats.hops += 1;
                        }
                        self.net.send(node, client, bytes, msg);
                    }
                    _ => {
                        // No routable target: record completion in place.
                        if let Some(qid) = qid {
                            self.complete(qid, items, None, at);
                        }
                    }
                }
            }
            Outcome::Forward { to } => {
                let Some(&next) = self.index_of.get(&to) else {
                    if let Some(qid) = qid {
                        self.complete(
                            qid,
                            Vec::new(),
                            Some(format!("route to unknown server {to}")),
                            at,
                        );
                    }
                    return;
                };
                let wire = mqp.to_wire();
                let bytes = wire.len();
                if let Some(qid) = qid {
                    if let Some(stats) = self.pending.get_mut(&qid) {
                        stats.hops += 1;
                        stats.mqp_bytes += bytes as u64;
                    }
                }
                self.net.send(node, next, bytes, PeerMsg::Mqp(wire));
            }
            Outcome::Stuck { reason } => {
                if let Some(qid) = qid {
                    self.complete(qid, Vec::new(), Some(reason), at);
                }
            }
        }
    }

    fn finish_result(&mut self, qid: u64, items_xml: &str, at: u64) {
        // Reparse the concatenated items.
        let wrapped = format!("<results>{items_xml}</results>");
        let items: Vec<Element> = mqp_xml::parse(&wrapped)
            .map(|r| r.child_elements().cloned().collect())
            .unwrap_or_default();
        self.complete(qid, items, None, at);
    }

    fn complete(&mut self, qid: u64, items: Vec<Element>, failure: Option<String>, at: u64) {
        let Some(stats) = self.pending.remove(&qid) else {
            return;
        };
        if self.cache_learning && failure.is_none() {
            // §3.4: "peers maintain caches of index and meta-index
            // servers for interest areas" — the client learns which
            // server completed its query for this area and will route
            // straight there next time.
            if let (Some(area), Some(by)) = (&stats.area, &stats.bound_by) {
                if self.peers[stats.client].id() != by {
                    self.peers[stats.client]
                        .catalog_mut()
                        .record_route(area, by.clone());
                }
            }
        }
        self.completed.push(QueryOutcome {
            qid,
            items,
            failure,
            latency_us: at.saturating_sub(stats.submitted_at),
            hops: stats.hops,
            mqp_bytes: stats.mqp_bytes,
        });
    }

    /// Completed queries so far.
    pub fn completed(&self) -> &[QueryOutcome] {
        &self.completed
    }

    /// Takes the completed-query list, clearing it.
    pub fn take_completed(&mut self) -> Vec<QueryOutcome> {
        std::mem::take(&mut self.completed)
    }

    /// Queries still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::Plan;
    use mqp_namespace::{Hierarchy, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
            Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    /// A 4-peer world: client, meta-index, and two sellers.
    fn world() -> SimHarness {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        // The meta-index knows both sellers.
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        SimHarness::new(
            Topology::clustered(4, 2, 1_000, 50_000),
            vec![client, meta, s1, s2],
        )
    }

    #[test]
    fn end_to_end_interest_area_query() {
        let mut h = world();
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qid = h.submit(0, plan);
        h.run(1000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        // Cheap CDs from both sellers.
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        // Path: client → meta (bind) → seller → seller → client result.
        assert!(q.hops >= 3, "hops = {}", q.hops);
        assert!(q.latency_us > 0);
        assert!(q.mqp_bytes > 0);
    }

    #[test]
    fn unknown_area_gets_stuck() {
        let mut h = world();
        let nowhere = InterestArea::parse(&[&["France", "Cheese"]]);
        let plan = Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(nowhere)));
        h.submit(0, plan);
        h.run(1000);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].failure.is_some());
        assert!(done[0].items.is_empty());
    }

    #[test]
    fn cache_learning_shortens_second_query() {
        let mut h = world();
        h.cache_learning = true;
        let q = || {
            Plan::select(
                "price < 10",
                Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
            )
        };
        h.submit(0, q());
        h.run(1000);
        let first = h.take_completed().pop().unwrap();
        h.submit(0, q());
        h.run(1000);
        let second = h.take_completed().pop().unwrap();
        assert!(first.failure.is_none() && second.failure.is_none());
        // The client learned the completing server; the second query
        // skips ahead (strictly fewer or equal hops, and must not grow).
        assert!(
            second.hops <= first.hops,
            "{} > {}",
            second.hops,
            first.hops
        );
    }

    #[test]
    fn registration_messages_populate_catalogs() {
        let client = Peer::new("client", ns());
        let idx = Peer::new("idx", ns());
        let mut seller = Peer::new("seller", ns());
        seller.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><price>1</price></item>").unwrap()],
        );
        let entry = seller.base_entry();
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![client, idx, seller]);
        assert_eq!(h.peer(1).catalog().entries().len(), 0);
        h.send_registration(2, 1, entry);
        h.run(10);
        assert_eq!(h.peer(1).catalog().entries().len(), 1);
        assert!(h.net.stats().messages_delivered >= 1);
    }

    #[test]
    fn failed_server_leads_to_partial_or_stuck() {
        let mut h = world();
        // Kill seller-1 (node 2).
        h.net.fail(2);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(1000);
        // The MQP died at the failed node: nothing completes, the
        // query stays pending (a timeout policy is the client's job).
        assert_eq!(h.completed().len(), 0);
        assert_eq!(h.pending_count(), 1);
        assert!(h.net.stats().messages_dropped >= 1);
    }
}

#[cfg(test)]
mod pull_tests {
    use super::*;
    use crate::peer::Peer;
    use mqp_namespace::{Hierarchy, Namespace};
    use mqp_xml::parse;

    #[test]
    fn pull_registrations_harvests_base_entries() {
        let ns = Namespace::new([Hierarchy::new("L").with(["A/B"])]);
        let idx = Peer::new("idx", ns.clone());
        let mut s1 = Peer::new("s1", ns.clone());
        s1.add_collection(
            "c",
            mqp_namespace::InterestArea::parse(&[&["A/B"]]),
            [parse("<i/>").unwrap()],
        );
        let s2 = Peer::new("s2", ns.clone()); // empty: skipped
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![idx, s1, s2]);
        let pulled = h.pull_registrations(0, &[1, 2]);
        assert_eq!(pulled, 1);
        h.run(100);
        // The index learned the base entry; the base learned the index.
        assert_eq!(h.peer(0).catalog().entries().len(), 1);
        assert!(h
            .peer(1)
            .catalog()
            .entries()
            .iter()
            .any(|e| e.server.as_str() == "idx"));
        assert!(h.net.stats().messages_delivered >= 2);
    }
}
